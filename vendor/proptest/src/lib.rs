//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, [`strategy::Strategy`] with `prop_map` and
//! `boxed`, [`arbitrary::any`], range and string-pattern strategies, tuple
//! strategies, and [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted for an offline build:
//!
//! * **No shrinking.** A failing case reports its case index and seed (and
//!   the generated inputs when `Debug`) instead of a minimal counterexample.
//! * **Deterministic seeds.** Cases derive from a fixed base seed so CI runs
//!   are reproducible; set `PROPTEST_SEED` to explore a different stream.
//! * **Case-count gate.** `PROPTEST_CASES` overrides every configured case
//!   count, so slow property suites can be dialed up locally or in nightly
//!   CI without code changes.
//! * String strategies support the pattern subset actually used in tests:
//!   concatenations of `.`, `[class]`, and literal atoms, each optionally
//!   repeated with `{m,n}` — not full regex.

pub mod test_runner {
    //! Configuration and the case-execution loop.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The generator handed to strategies, one per test case.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        pub(crate) fn from_seed(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single test case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Knobs for a property-test block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the offline shim defaults lower so
            // heavyweight pipeline properties stay fast under tier-1 CI.
            // PROPTEST_CASES raises (or lowers) it globally.
            ProptestConfig { cases: 32 }
        }
    }

    /// Runs the case loop for one property.
    pub struct TestRunner {
        cases: u32,
        base_seed: u64,
    }

    impl TestRunner {
        /// Builds a runner, honouring `PROPTEST_CASES` and `PROPTEST_SEED`.
        pub fn new(config: ProptestConfig) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            let base_seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5eed_cafe_f00d_u64);
            TestRunner { cases, base_seed }
        }

        /// Runs `f` once per case with a per-case deterministic RNG,
        /// panicking on the first failure.
        pub fn run_cases(&mut self, mut f: impl FnMut(&mut TestRng) -> TestCaseResult) {
            for case in 0..self.cases {
                let seed = self
                    .base_seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(case));
                let mut rng = TestRng::from_seed(seed);
                if let Err(e) = f(&mut rng) {
                    panic!(
                        "property failed at case {case}/{} (seed {seed}): {e}\n\
                         (re-run with PROPTEST_SEED={} to reproduce this stream)",
                        self.cases, self.base_seed
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (**self).gen_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            use rand::Rng;
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            super::string::generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            super::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy generating any value of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates `None` half the time and `Some` of the inner strategy
    /// otherwise (upstream's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.gen::<bool>() {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

mod string {
    //! The string-pattern generator backing `&str` strategies.
    //!
    //! Supports concatenations of atoms — `.` (any char except newline),
    //! `[class]` with ranges and `\n`/`\t`/`\\`-style escapes, or a literal
    //! char — each optionally repeated `{m,n}`. This covers every pattern in
    //! the workspace's tests; anything else panics loudly rather than
    //! silently generating the wrong language.

    use super::test_runner::TestRng;
    use rand::Rng;

    enum Atom {
        AnyChar,
        Class(Vec<(char, char)>),
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other, // \\ \" \] \- etc: the char itself
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::AnyChar,
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                        if c == ']' {
                            break;
                        }
                        let lo = if c == '\\' {
                            unescape(chars.next().expect("dangling escape"))
                        } else {
                            c
                        };
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = match chars.next() {
                                Some('\\') => unescape(chars.next().expect("dangling escape")),
                                Some(h) if h != ']' => h,
                                _ => panic!("bad range in class in {pattern:?}"),
                            };
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(unescape(chars.next().expect("dangling escape"))),
                other => Atom::Literal(other),
            };
            // Optional {min,max} repetition.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                // `{m,n}` range or `{n}` exact count.
                let (lo, hi) = spec.split_once(',').unwrap_or((&spec, &spec));
                (
                    lo.trim().parse().expect("bad repetition min"),
                    hi.trim().parse().expect("bad repetition max"),
                )
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in {pattern:?}");
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn gen_any_char(rng: &mut TestRng) -> char {
        // Mix of ASCII printables (common case), broader BMP text, and
        // arbitrary scalars, mirroring what regex `.` admits (no newline).
        loop {
            let c = match rng.gen_range(0u32..10) {
                0..=6 => char::from_u32(rng.gen_range(0x20u32..0x7f)),
                7 => char::from_u32(rng.gen_range(0xa0u32..0x2000)),
                8 => char::from_u32(rng.gen_range(0u32..0xd800)),
                _ => char::from_u32(rng.gen_range(0xe000u32..0x11_0000)),
            };
            match c {
                Some('\n') | None => continue,
                Some(c) => return c,
            }
        }
    }

    fn gen_class_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u32 = ranges
            .iter()
            .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
            .sum();
        let mut pick = rng.gen_range(0..total);
        for &(lo, hi) in ranges {
            let span = hi as u32 - lo as u32 + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick).expect("class range holds scalars");
            }
            pick -= span;
        }
        unreachable!("pick is within total")
    }

    pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = rng.gen_range(piece.min..=piece.max);
            for _ in 0..n {
                match &piece.atom {
                    Atom::AnyChar => out.push(gen_any_char(rng)),
                    Atom::Class(ranges) => out.push(gen_class_char(ranges, rng)),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run_cases(|__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::gen_value(&($strat), __proptest_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking) so
/// the runner can report which case failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_eq failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "prop_assert_ne failed: both sides are `{:?}`",
                left
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_their_language() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(64));
        runner.run_cases(|rng| {
            let s = Strategy::gen_value(&".{0,100}", rng);
            prop_assert!(s.chars().count() <= 100, "{s:?}");
            prop_assert!(!s.contains('\n'), "{s:?}");

            let c = Strategy::gen_value(&"[a-cx]{2,5}", rng);
            prop_assert!((2..=5).contains(&c.len()), "{c:?}");
            prop_assert!(c.chars().all(|ch| matches!(ch, 'a'..='c' | 'x')), "{c:?}");

            let e = Strategy::gen_value(&"[a-z \"\\\\\n\t]{0,20}", rng);
            prop_assert!(
                e.chars()
                    .all(|ch| ch.is_ascii_lowercase() || " \"\\\n\t".contains(ch)),
                "{e:?}"
            );
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(a in 1usize..8, f in 0.5f64..2.5, b in 0u8..6) {
            prop_assert!((1..8).contains(&a));
            prop_assert!((0.5..2.5).contains(&f));
            prop_assert!(b < 6);
        }

        /// Tuples, vec, prop_map, and prop_oneof compose.
        #[test]
        fn combinators_compose(
            v in crate::collection::vec((any::<u8>(), 0u8..6), 0..50),
            x in prop_oneof![
                (1usize..10).prop_map(|n| n * 2),
                (20usize..30).prop_map(|n| n + 1),
            ],
        ) {
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&(_, p)| p < 6));
            prop_assert!((x % 2 == 0 && x < 20) || (21..=30).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_report_case_and_seed() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(10));
        runner.run_cases(|rng| {
            let v = Strategy::gen_value(&(0u64..100), rng);
            prop_assert!(v > 1000, "generated {v}");
            Ok(())
        });
    }
}
