//! Offline shim for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no registry access, so this vendors the subset
//! of the rand 0.8 API the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`seq::SliceRandom`] (`choose`, `choose_multiple`,
//! `shuffle`).
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — statistically solid
//! and fully deterministic for a given seed, which is all the synthetic
//! generators and experiments need. It intentionally does not reproduce the
//! exact stream of upstream `StdRng` (ChaCha12).

/// Low-level uniform word generator.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

mod distributions {
    //! Value-level sampling from uniform bits.

    use super::RngCore;

    /// Types producible uniformly from an RNG (the `Standard` distribution).
    pub trait Standard: Sized {
        fn sample(rng: &mut impl RngCore) -> Self;
    }

    impl Standard for f64 {
        fn sample(rng: &mut impl RngCore) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample(rng: &mut impl RngCore) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for bool {
        fn sample(rng: &mut impl RngCore) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Standard for $t {
                fn sample(rng: &mut impl RngCore) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Ranges supporting `Rng::gen_range`.
    pub trait SampleRange {
        type Output;
        fn sample_from(self, rng: &mut impl RngCore) -> Self::Output;
    }

    /// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
    pub(crate) fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange for std::ops::Range<$t> {
                type Output = $t;
                fn sample_from(self, rng: &mut impl RngCore) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + uniform_below(rng, span) as $t
                }
            }

            impl SampleRange for std::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from(self, rng: &mut impl RngCore) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_below(rng, span) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize);

    impl SampleRange for std::ops::Range<f64> {
        type Output = f64;
        fn sample_from(self, rng: &mut impl RngCore) -> f64 {
            assert!(self.start < self.end, "gen_range on empty range");
            let u = f64::sample(rng);
            self.start + u * (self.end - self.start)
        }
    }
}

pub use distributions::{SampleRange, Standard};

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::distributions::uniform_below;
    use super::RngCore;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements, uniformly without replacement.
        /// Yields fewer if the slice is shorter than `amount`.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let r = rng.gen_range(3usize..10);
            assert!((3..10).contains(&r));
            let i = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&i));
            let x = rng.gen_range(2.0..7.0);
            assert!((2.0..7.0).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [10, 20, 30, 40];
        assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let picked: Vec<i32> = xs.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "no replacement: {picked:?}");

        // Asking for more than available yields everything.
        assert_eq!(xs.choose_multiple(&mut rng, 9).count(), 4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
