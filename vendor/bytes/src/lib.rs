//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small subset of the `bytes` API that `remi-kb` actually uses:
//! [`Buf`], [`BufMut`], [`Bytes`], and [`BytesMut`]. The semantics match
//! upstream for that subset; cheap zero-copy cloning is approximated with
//! an `Arc<[u8]>` backing store.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access to a buffer of bytes with an internal cursor.
pub trait Buf {
    /// Number of bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The bytes left to read, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Fills `dst` from the buffer and advances by `dst.len()`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice past end of buffer"
        );
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            off += n;
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write access to an append-only byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable, contiguous, immutable buffer of bytes.
///
/// Reading through [`Buf`] advances the view's start; [`Bytes::slice`]
/// produces sub-views sharing the same backing allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer; indices are relative to this view.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// A growable byte buffer; freeze it into an immutable [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_views() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_slice(&[2, 3, 4]);
        b.put_u64_le(0x0807_0605_0403_0201);
        assert_eq!(b.len(), 12);
        let bytes = b.freeze();
        assert_eq!(&bytes[..4], &[1, 2, 3, 4]);

        let mut view = bytes.slice(1..4);
        assert_eq!(view.remaining(), 3);
        assert_eq!(view.get_u8(), 2);
        let mut rest = [0u8; 2];
        view.copy_to_slice(&mut rest);
        assert_eq!(rest, [3, 4]);
        assert!(!view.has_remaining());
    }

    #[test]
    fn slice_buf_impl() {
        let data = [9u8, 8, 7];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 9);
        s.advance(1);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.chunk(), &[7]);
    }
}
