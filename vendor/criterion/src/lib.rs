//! Offline shim for the [`criterion`](https://docs.rs/criterion) benchmark
//! harness.
//!
//! Supports the subset used by `remi-bench`: [`criterion_group!`] /
//! [`criterion_main!`], [`Criterion::benchmark_group`], `sample_size`,
//! `measurement_time`, `bench_function`, [`Bencher::iter`], and
//! [`black_box`]. Instead of criterion's full statistical machinery it
//! reports the median, mean, and sample standard deviation of
//! `sample_size` wall-clock samples, each sample sized by a short
//! calibration run — enough to compare hot paths between commits without
//! any registry dependency.
//!
//! Harness flags: `--test` (run each benchmark body exactly once, used by
//! `cargo test --benches`) is honoured; other flags and name filters are
//! accepted and name filters are applied as substring matches.
//!
//! Machine-readable output: when `CRITERION_JSON` names a file, every
//! measurement appends one JSON object per line —
//! `{"id","median_ns","mean_ns","stddev_ns","samples","iters_per_sample"}`
//! — which CI's `bench-smoke` job uploads as the per-commit `BENCH_*.json`
//! perf-trajectory artifact.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Measure and report timings.
    Bench,
    /// Run each body once (cargo test --benches).
    Test,
}

/// Top-level harness state.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Match upstream: measure only under `cargo bench` (which passes
        // `--bench`); anything else — notably `cargo test --benches`, which
        // passes no mode flag — runs each body once as a smoke test.
        let mut mode = Mode::Test;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Bench,
                "--test" => {
                    mode = Mode::Test;
                    break; // --test wins regardless of flag order
                }
                a if a.starts_with("--") => {} // accept and ignore harness flags
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            mode,
            filter,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        self.run_one(name, sample_size, measurement_time, f);
        self
    }

    /// Prints the trailing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}

    fn run_one(
        &mut self,
        id: &str,
        sample_size: usize,
        measurement_time: Duration,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            sample_size,
            measurement_time,
            report: None,
        };
        f(&mut b);
        match (self.mode, b.report) {
            (Mode::Test, _) => println!("{id}: ok (test mode)"),
            (Mode::Bench, Some(m)) => {
                println!(
                    "{id:<40} time: {:<14} mean: {} ± {}",
                    format_ns(m.median_ns),
                    format_ns(m.mean_ns),
                    format_ns(m.stddev_ns)
                );
                if let Ok(path) = std::env::var("CRITERION_JSON") {
                    if let Err(e) = append_json(&path, id, &m) {
                        eprintln!("criterion shim: cannot append to {path}: {e}");
                    }
                }
            }
            (Mode::Bench, None) => println!("{id}: no measurement recorded"),
        }
    }
}

/// One benchmark's measurement summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median ns/iteration across samples.
    pub median_ns: f64,
    /// Mean ns/iteration across samples.
    pub mean_ns: f64,
    /// Sample standard deviation (n−1) of ns/iteration, 0 for n < 2.
    pub stddev_ns: f64,
    /// Number of timing samples taken.
    pub samples: usize,
    /// Iterations per sample (from calibration).
    pub iters_per_sample: u64,
}

/// Median / mean / sample-stddev of raw per-iteration samples (ns).
/// `samples` must be non-empty and is sorted in place.
fn summarize(samples: &mut [f64]) -> (f64, f64, f64) {
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let stddev = if samples.len() < 2 {
        0.0
    } else {
        let var =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        var.sqrt()
    };
    (median, mean, stddev)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The JSON-lines record for one measurement.
fn json_record(id: &str, m: &Measurement) -> String {
    format!(
        "{{\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\
         \"samples\":{},\"iters_per_sample\":{}}}",
        json_escape(id),
        m.median_ns,
        m.mean_ns,
        m.stddev_ns,
        m.samples,
        m.iters_per_sample
    )
}

fn append_json(path: &str, id: &str, m: &Measurement) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", json_record(id, m))
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let measurement_time = self
            .measurement_time
            .unwrap_or(self.criterion.measurement_time);
        self.criterion
            .run_one(&id, sample_size, measurement_time, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    report: Option<Measurement>,
}

impl Bencher {
    /// Times `f`, storing median/mean/stddev ns/iteration across samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit one sample's time budget?
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((per_sample / once).ceil() as u64).clamp(1, 1_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        let (median_ns, mean_ns, stddev_ns) = summarize(&mut samples);
        self.report = Some(Measurement {
            median_ns,
            mean_ns,
            stddev_ns,
            samples: samples.len(),
            iters_per_sample: iters,
        });
    }
}

/// Bundles benchmark functions into a named group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_bodies() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: None,
            sample_size: 10,
            measurement_time: Duration::from_millis(10),
        };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).measurement_time(Duration::from_millis(5));
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn bench_mode_measures() {
        let mut c = Criterion {
            mode: Mode::Bench,
            filter: None,
            sample_size: 3,
            measurement_time: Duration::from_millis(3),
        };
        c.bench_function("spin", |b| b.iter(|| black_box(2u64.pow(10))));
    }

    #[test]
    fn summarize_reports_median_mean_stddev() {
        let mut samples = vec![4.0, 1.0, 2.0, 3.0, 10.0];
        let (median, mean, stddev) = summarize(&mut samples);
        assert_eq!(median, 3.0);
        assert!((mean - 4.0).abs() < 1e-12);
        // Sample stddev of {1,2,3,4,10}: var = (9+4+1+0+36)/4 = 12.5.
        assert!((stddev - 12.5f64.sqrt()).abs() < 1e-12, "{stddev}");
    }

    #[test]
    fn summarize_single_sample_has_zero_stddev() {
        let mut samples = vec![7.0];
        let (median, mean, stddev) = summarize(&mut samples);
        assert_eq!((median, mean, stddev), (7.0, 7.0, 0.0));
    }

    #[test]
    fn json_record_is_well_formed_and_escaped() {
        let m = Measurement {
            median_ns: 1234.56,
            mean_ns: 1300.0,
            stddev_ns: 42.0,
            samples: 10,
            iters_per_sample: 1000,
        };
        let line = json_record("group/\"quoted\"\\name", &m);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"median_ns\":1234.6"));
        assert!(line.contains("\"samples\":10"));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.contains("\\\\name"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn append_json_writes_one_line_per_measurement() {
        let path = std::env::temp_dir().join(format!(
            "criterion_shim_test_{}_{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let path_str = path.to_str().unwrap();
        let m = Measurement {
            median_ns: 1.0,
            mean_ns: 2.0,
            stddev_ns: 0.5,
            samples: 3,
            iters_per_sample: 9,
        };
        append_json(path_str, "a", &m).unwrap();
        append_json(path_str, "b", &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"id\":\"")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("match".into()),
            sample_size: 10,
            measurement_time: Duration::from_millis(5),
        };
        let mut runs = 0u32;
        c.bench_function("no_hit", |b| b.iter(|| runs += 1));
        c.bench_function("does_match", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
