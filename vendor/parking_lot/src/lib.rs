//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot) crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and a poisoned lock (a panic while
//! held) is transparently recovered instead of surfacing an error — which
//! matches parking_lot's behaviour of not tracking poisoning at all.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
