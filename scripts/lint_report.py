#!/usr/bin/env python3
"""Validate and summarise `remi-lint --json` output.

Reads the JSON report from stdin (or a file argument), checks the schema
round-trips, and prints a per-rule violation count. With --expect-clean,
exits 1 when the report carries any violation — the CI gate.

Usage:
    remi-lint --json . | scripts/lint_report.py --expect-clean
    scripts/lint_report.py report.json
"""

import json
import sys

REQUIRED_TOP = {"tool", "rules", "files", "suppressed", "ok", "violations"}
REQUIRED_VIOLATION = {"rule", "path", "line", "message"}


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.8-friendly annotation
    print(f"lint_report: {message}", file=sys.stderr)
    sys.exit(2)


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--expect-clean"]
    expect_clean = "--expect-clean" in sys.argv[1:]
    if len(args) > 1:
        fail("at most one input file")
    try:
        raw = open(args[0]).read() if args else sys.stdin.read()
    except OSError as e:
        fail(f"cannot read input: {e}")
    try:
        report = json.loads(raw)
    except json.JSONDecodeError as e:
        fail(f"malformed JSON: {e}")

    missing = REQUIRED_TOP - set(report)
    if missing:
        fail(f"missing top-level fields: {sorted(missing)}")
    if report["tool"] != "remi-lint":
        fail(f"unexpected tool {report['tool']!r}")
    violations = report["violations"]
    if not isinstance(violations, list):
        fail("violations is not a list")
    for v in violations:
        missing = REQUIRED_VIOLATION - set(v)
        if missing:
            fail(f"violation missing fields {sorted(missing)}: {v}")
    if report["ok"] != (len(violations) == 0):
        fail("`ok` flag contradicts the violation list")

    per_rule = {}
    for v in violations:
        per_rule[v["rule"]] = per_rule.get(v["rule"], 0) + 1
    print(
        f"remi-lint: {report['files']} file(s), {len(violations)} violation(s), "
        f"{report['suppressed']} suppressed"
    )
    for rule in sorted(per_rule):
        print(f"  {rule}: {per_rule[rule]}")
    for v in violations:
        print(f"  {v['path']}:{v['line']}: [{v['rule']}] {v['message']}")

    if expect_clean and violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
