#!/usr/bin/env python3
"""Validates a `GET /v1/debug/events` flight-recorder dump.

Usage: events_check.py <events.json>

Run in CI against the dump from `remi-serve-load --dump-events`: after a
mixed read/ingest/query run, the body must be well-formed JSON with the
documented envelope (head, capacity, count, events), sequence numbers
must be strictly increasing (the ring never reorders or duplicates), the
event count must respect the ring bound, and every event must carry the
typed shape the serve layer renders (seq, ts_ns, channel, severity,
event, fields). A recorder regression — a torn read surviving to the
API, an unbounded response, a channel the vocabulary forgot — fails here
even when the server itself still answers 200s.
"""

import json
import sys

CHANNELS = {"query", "kb", "pool", "http"}
SEVERITIES = {"debug", "info", "warn", "error"}


def check(doc, errors):
    for key in ("head", "capacity", "count", "events"):
        if key not in doc:
            errors.append(f"envelope is missing {key!r}")
    if errors:
        return
    head, capacity, count = doc["head"], doc["capacity"], doc["count"]
    events = doc["events"]
    if not isinstance(events, list):
        errors.append("events is not an array")
        return
    if count != len(events):
        errors.append(f"count {count} != {len(events)} events in the body")
    if capacity < 1 or (capacity & (capacity - 1)) != 0:
        errors.append(f"capacity {capacity} is not a power of two")
    if len(events) > capacity:
        errors.append(
            f"{len(events)} events exceed the ring capacity {capacity} — "
            "the response is supposed to be bounded by the ring"
        )
    prev_seq = -1
    for i, e in enumerate(events):
        where = f"events[{i}]"
        for key in ("seq", "ts_ns", "channel", "severity", "event", "fields"):
            if key not in e:
                errors.append(f"{where}: missing {key!r}")
        if any(k not in e for k in ("seq", "channel", "severity", "fields")):
            continue
        if e["seq"] <= prev_seq:
            errors.append(
                f"{where}: seq {e['seq']} not strictly greater than {prev_seq} — "
                "the ring reordered or duplicated an event"
            )
        prev_seq = e["seq"]
        if e["seq"] >= head:
            errors.append(f"{where}: seq {e['seq']} is at or past head {head}")
        if e["channel"] not in CHANNELS:
            errors.append(f"{where}: unknown channel {e['channel']!r}")
        if e["severity"] not in SEVERITIES:
            errors.append(f"{where}: unknown severity {e['severity']!r}")
        if not isinstance(e["fields"], dict):
            errors.append(f"{where}: fields is not an object")
        else:
            for k, v in e["fields"].items():
                if not isinstance(v, (int, bool, str)):
                    errors.append(
                        f"{where}: field {k!r} has untyped value {v!r} "
                        "(expected u64, bool, or enum string)"
                    )
    if not events:
        errors.append(
            "dump holds no events at all — a loadgen run with queries must "
            "leave query_plan events in the ring"
        )


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        text = fh.read()
    errors = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        errors.append(f"body is not valid JSON: {exc}")
        doc = None
    if doc is not None:
        check(doc, errors)
    if errors:
        for e in errors:
            print(f"events-check: {e}", file=sys.stderr)
        print(f"events-check: FAILED with {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(
        f"events-check: ok — {doc['count']} events in a {doc['capacity']}-slot ring, "
        f"head {doc['head']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
