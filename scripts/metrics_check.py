#!/usr/bin/env python3
"""Validates a /v1/metrics Prometheus text exposition.

Usage: metrics_check.py <metrics.txt>

Run in CI against the dump from `remi-serve-load --dump-metrics`: after a
mixed read/ingest/query run, the exposition must be well-formed (every
line parses, one `# TYPE` per family, cumulative histogram buckets
monotone and capped by `+Inf` == `_count`) and the families the serve,
pool, and kb layers register must actually be present with traffic in
them. A wiring regression — a renamed series, a histogram that stops
recording, a dropped registration — fails here even when the server
itself still answers 200s.
"""

import re
import sys

# Families that must exist and have recorded activity after a mixed
# loadgen run (reads + ingests + queries).
REQUIRED_ACTIVE = [
    "remi_http_requests_total",
    "remi_http_request_duration_ns_count",
    "remi_connections_total",
    "remi_kb_ingests_total",
]

# Families that must at least be exposed (activity depends on scheduling).
REQUIRED_PRESENT = [
    "remi_http_inflight",
    "remi_connections_open",
    "remi_pool_queue_depth",
    "remi_pool_steals_total",
    "remi_kb_publish_duration_ns_count",
    "remi_kb_epoch",
    "remi_cache_hits_total",
]

# The serve layer pre-registers every route x status latency family at
# boot so dashboards see a stable series set before (and regardless of)
# traffic. Keep both lists in sync with `router::TABLE` and
# `PREREGISTERED_STATUSES` in crates/serve/src/lib.rs.
PREREGISTERED_ROUTES = [
    "healthz",
    "stats",
    "metrics",
    "describe",
    "describe_batch",
    "summarize",
    "ingest",
    "query",
    "debug_events",
]
PREREGISTERED_STATUSES = ["200", "400", "500", "503"]


def check_preregistered(samples, errors):
    """Every route x status latency series exists even with zero traffic."""
    seen = set()
    for (name, labels), _ in samples.items():
        if name != "remi_http_request_duration_ns_count":
            continue
        route = re.search(r'route="([^"]*)"', labels)
        status = re.search(r'status="([^"]*)"', labels)
        if route and status:
            seen.add((route.group(1), status.group(1)))
    for route in PREREGISTERED_ROUTES:
        for status in PREREGISTERED_STATUSES:
            if (route, status) not in seen:
                errors.append(
                    f"pre-registered latency family missing: "
                    f'remi_http_request_duration_ns{{route="{route}",status="{status}"}}'
                )

SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (-?[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?)$")


def parse(text):
    """Returns (samples, types, errors): samples is {(name, labels): float}."""
    samples, types, errors = {}, {}, []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            fam, kind = parts[2], parts[3]
            if fam in types:
                errors.append(f"line {lineno}: duplicate TYPE for family {fam}")
            types[fam] = kind
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", float(m.group(3))
        key = (name, labels)
        if key in samples:
            errors.append(f"line {lineno}: duplicate sample {name}{labels}")
        samples[key] = value
    return samples, types, errors


def le_value(labels):
    m = re.search(r'le="([^"]*)"', labels)
    if m is None:
        return None
    return float("inf") if m.group(1) == "+Inf" else float(m.group(1))


def strip_le(labels):
    inner = re.sub(r',?le="[^"]*"', "", labels.strip("{}")).strip(",")
    return inner


def check_histograms(samples, errors):
    """Cumulative buckets monotone; +Inf bucket present and == _count."""
    series = {}
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        le = le_value(labels)
        if le is None:
            errors.append(f"{name}{labels}: _bucket sample without le label")
            continue
        fam = name[: -len("_bucket")]
        series.setdefault((fam, strip_le(labels)), []).append((le, value))
    for (fam, base), buckets in series.items():
        buckets.sort()
        prev = 0.0
        for le, cum in buckets:
            if cum < prev:
                errors.append(
                    f"{fam}{{{base}}}: cumulative bucket le={le} fell from {prev} to {cum}"
                )
            prev = cum
        if not buckets or buckets[-1][0] != float("inf"):
            errors.append(f"{fam}{{{base}}}: no +Inf bucket")
            continue
        count_labels = "{" + base + "}" if base else ""
        count = samples.get((fam + "_count", count_labels))
        if count is None:
            errors.append(f"{fam}{{{base}}}: _bucket series without _count")
        elif count != buckets[-1][1]:
            errors.append(
                f"{fam}{{{base}}}: +Inf bucket {buckets[-1][1]} != _count {count}"
            )
        if (fam + "_sum", count_labels) not in samples:
            errors.append(f"{fam}{{{base}}}: _bucket series without _sum")
    return len(series)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        text = fh.read()
    samples, types, errors = parse(text)
    if not samples:
        errors.append("exposition holds no samples at all")
    histo_series = check_histograms(samples, errors)
    check_preregistered(samples, errors)

    by_name = {}
    for (name, _), value in samples.items():
        by_name[name] = by_name.get(name, 0.0) + value

    for fam in REQUIRED_ACTIVE:
        total = by_name.get(fam)
        if total is None:
            errors.append(f"required family {fam} is missing")
        elif total <= 0:
            errors.append(f"required family {fam} recorded no activity (sum 0)")
    for fam in REQUIRED_PRESENT:
        if fam not in by_name:
            errors.append(f"required family {fam} is missing")

    open_conns = by_name.get("remi_connections_open", 0)
    total_conns = by_name.get("remi_connections_total", 0)
    if open_conns > total_conns:
        errors.append(
            f"remi_connections_open ({open_conns}) exceeds remi_connections_total ({total_conns})"
        )

    if errors:
        for e in errors:
            print(f"metrics-check: {e}", file=sys.stderr)
        print(f"metrics-check: FAILED with {len(errors)} error(s)", file=sys.stderr)
        return 1
    print(
        f"metrics-check: ok — {len(samples)} samples, {len(types)} typed families, "
        f"{histo_series} histogram series"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
