#!/usr/bin/env python3
"""Diff two criterion-shim JSON-line files and fail on median regressions.

The vendored criterion shim emits one JSON object per benchmark when
CRITERION_JSON is set:

    {"id": "...", "median_ns": 1.0, "mean_ns": 1.0, "stddev_ns": 0.0, ...}

Usage:
    check_bench_trend.py BASELINE.json CURRENT.json [--threshold 0.25]

Exit status is 1 when any benchmark present in both files regressed by
more than its threshold (current median > baseline median * (1 + t)).
Benchmarks appearing in only one file are reported but never fail the
check, so adding or retiring benchmarks stays cheap.

Noisy benchmarks carry their own regression budget via THRESHOLD_OVERRIDES
below; everything else uses the --threshold default (0.25).
"""

import argparse
import json
import sys

# Per-benchmark regression budgets for benchmarks whose medians are too
# small or too scheduler-dependent for the default +25% gate. Keys match a
# bench id exactly, or act as a prefix when they end with "/". The most
# specific (longest) match wins.
THRESHOLD_OVERRIDES = {
    # Sub-µs binding lookups: a few ns of cache/ASLR jitter is >25%.
    "backend_bindings/csr_contains": 0.60,
    "backend_bindings/csr_objects_lookup": 0.60,
    "backend_bindings/csr_subjects_lookup": 0.60,
    "backend_bindings/succinct_contains": 0.60,
    "backend_bindings/succinct_objects_lookup": 0.60,
    "backend_bindings/succinct_subjects_lookup": 0.60,
    # Sub-µs substrate microbenchmarks.
    "kb_micro/": 0.50,
    # Raw pool fan-out latency is dominated by wakeup jitter on shared CI
    # runners.
    "pool_overhead/": 0.50,
    # TCP round-trips on loopback inherit kernel-scheduler noise.
    "serve_http/healthz": 0.60,
    "serve_http/warm_describe": 0.60,
    "serve_http/warm_query": 0.60,
    # Query-engine medians are µs-scale scans whose cost tracks cache
    # residency of the seed-fixed KB.
    "query_engine/": 0.60,
    # Live-ingestion: loopback POSTs plus epoch publishes. Since the
    # segmented dictionaries made publish O(batch), the publish benches no
    # longer drift with KB growth; the remaining noise is allocator and
    # calibration jitter, so they share the group budget. The fixed-size
    # fork variant is the tightest signal we have for publish latency and
    # gets a deliberately strict gate.
    "delta_ingest/": 0.60,
    "delta_ingest/append_publish_fixed100": 0.40,
    "delta_ingest/http_ingest": 1.00,
    # Single-digit-ns atomic bumps, ~100ns span lifecycles, and the
    # flight-recorder event_record emit: cache and frequency-scaling
    # jitter dwarfs the default gate at this scale.
    "obs_overhead/": 0.55,
}


def threshold_for(bench_id, default):
    """The regression budget for one benchmark id (see THRESHOLD_OVERRIDES)."""
    best = None
    for key, value in THRESHOLD_OVERRIDES.items():
        matches = bench_id == key or (key.endswith("/") and bench_id.startswith(key))
        if matches and (best is None or len(key) > len(best[0])):
            best = (key, value)
    return best[1] if best else default


def load(path):
    """Parses a JSON-lines bench file into {id: median_ns}."""
    out = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                sys.exit(f"{path}: malformed JSON line: {exc}\n  {line[:120]}")
            if "id" in rec and "median_ns" in rec:
                out[rec["id"]] = float(rec["median_ns"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional median regression (default 0.25 = +25%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base:
        print(f"baseline {args.baseline} holds no benchmarks; nothing to compare")
        return 0

    regressions = []
    width = max((len(k) for k in sorted(set(base) | set(cur))), default=10)
    for bench_id in sorted(set(base) | set(cur)):
        if bench_id not in base:
            print(f"  NEW      {bench_id:<{width}}  {cur[bench_id]:>12.1f} ns")
            continue
        if bench_id not in cur:
            print(f"  RETIRED  {bench_id:<{width}}")
            continue
        b, c = base[bench_id], cur[bench_id]
        ratio = c / b if b > 0 else float("inf")
        budget = threshold_for(bench_id, args.threshold)
        marker = "ok"
        if ratio > 1.0 + budget:
            marker = "REGRESSED"
            regressions.append((bench_id, b, c, ratio, budget))
        elif ratio < 1.0 - budget:
            marker = "improved"
        print(
            f"  {marker:<9}{bench_id:<{width}}  "
            f"{b:>12.1f} -> {c:>12.1f} ns  ({ratio:.2f}x, budget +{budget:.0%})"
        )

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond budget:",
            file=sys.stderr,
        )
        for bench_id, b, c, ratio, budget in regressions:
            print(
                f"  {bench_id}: {b:.1f} -> {c:.1f} ns "
                f"({ratio:.2f}x, budget +{budget:.0%})",
                file=sys.stderr,
            )
        return 1
    print("\nno median regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
