#!/usr/bin/env python3
"""Diff two criterion-shim JSON-line files and fail on median regressions.

The vendored criterion shim emits one JSON object per benchmark when
CRITERION_JSON is set:

    {"id": "...", "median_ns": 1.0, "mean_ns": 1.0, "stddev_ns": 0.0, ...}

Usage:
    check_bench_trend.py BASELINE.json CURRENT.json [--threshold 0.25]

Exit status is 1 when any benchmark present in both files regressed by
more than the threshold (current median > baseline median * (1 + t)).
Benchmarks appearing in only one file are reported but never fail the
check, so adding or retiring benchmarks stays cheap.
"""

import argparse
import json
import sys


def load(path):
    """Parses a JSON-lines bench file into {id: median_ns}."""
    out = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                sys.exit(f"{path}: malformed JSON line: {exc}\n  {line[:120]}")
            if "id" in rec and "median_ns" in rec:
                out[rec["id"]] = float(rec["median_ns"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional median regression (default 0.25 = +25%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    if not base:
        print(f"baseline {args.baseline} holds no benchmarks; nothing to compare")
        return 0

    regressions = []
    width = max((len(k) for k in sorted(set(base) | set(cur))), default=10)
    for bench_id in sorted(set(base) | set(cur)):
        if bench_id not in base:
            print(f"  NEW      {bench_id:<{width}}  {cur[bench_id]:>12.1f} ns")
            continue
        if bench_id not in cur:
            print(f"  RETIRED  {bench_id:<{width}}")
            continue
        b, c = base[bench_id], cur[bench_id]
        ratio = c / b if b > 0 else float("inf")
        marker = "ok"
        if ratio > 1.0 + args.threshold:
            marker = "REGRESSED"
            regressions.append((bench_id, b, c, ratio))
        elif ratio < 1.0 - args.threshold:
            marker = "improved"
        print(
            f"  {marker:<9}{bench_id:<{width}}  "
            f"{b:>12.1f} -> {c:>12.1f} ns  ({ratio:.2f}x)"
        )

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"+{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for bench_id, b, c, ratio in regressions:
            print(f"  {bench_id}: {b:.1f} -> {c:.1f} ns ({ratio:.2f}x)", file=sys.stderr)
        return 1
    print("\nno median regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
