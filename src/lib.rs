//! `remi-suite` — umbrella crate hosting the workspace-level integration
//! tests and runnable examples for the REMI reproduction.
//!
//! The actual functionality lives in the member crates:
//! [`remi_kb`], [`remi_synth`], [`remi_core`], [`remi_amie`],
//! [`remi_essum`], and [`remi_eval`].

#![forbid(unsafe_code)]

pub use remi_amie as amie;
pub use remi_core as core;
pub use remi_essum as essum;
pub use remi_eval as eval;
pub use remi_kb as kb;
pub use remi_synth as synth;
