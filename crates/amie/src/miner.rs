//! The AMIE+-style breadth-first rule miner (§4.2.1).
//!
//! The system explores the space of rules level by level, applying the
//! classic AMIE refinement operators — add an *instantiated* atom, add a
//! *dangling* atom, add a *closing* atom — and keeps rules whose support
//! is at least |T| (every target matched). A rule with confidence 1.0 is a
//! referring expression. There is no RE-specific pruning and no
//! intuitiveness-driven ordering: that asymmetry versus REMI is exactly
//! what Table 4 measures. Output REs are ranked by `Ĉfr` afterwards, as
//! the paper does for AMIE's output.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use remi_core::bits::Bits;
use remi_core::complexity::CostModel;
use remi_kb::fx::FxHashSet;
use remi_kb::term::TermKind;
use remi_kb::{KnowledgeBase, NodeId, PredId};

use crate::query::{evaluate_rule, root_bindings};
use crate::rule::{Arg, Rule, RuleAtom, ROOT_VAR};

/// Language restriction for the baseline (mirrors §4.2.2's two settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmieLanguage {
    /// Bodies of instantiated atoms on the root variable only — the
    /// state-of-the-art RE language.
    Standard,
    /// Full AMIE refinement: dangling, closing, and instantiated atoms on
    /// any variable (covers REMI's language and more).
    Extended,
}

/// Configuration of the miner.
#[derive(Debug, Clone)]
pub struct AmieConfig {
    /// Language restriction.
    pub language: AmieLanguage,
    /// Maximum body atoms. The paper sets rule length `l = 4` counting the
    /// head, i.e. 3 body atoms.
    pub max_body_atoms: usize,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Worker threads for level evaluation (AMIE+ is a parallel system).
    pub threads: usize,
    /// Cap on candidate rules evaluated (safety valve; hitting it flags a
    /// timeout-equivalent).
    pub max_rules_evaluated: u64,
    /// Exclude `rdfs:label` from bodies (kept in sync with REMI's default).
    pub exclude_label: bool,
}

impl Default for AmieConfig {
    fn default() -> Self {
        AmieConfig {
            language: AmieLanguage::Extended,
            max_body_atoms: 3,
            timeout: None,
            threads: 1,
            max_rules_evaluated: 2_000_000,
            exclude_label: true,
        }
    }
}

/// Outcome of a mining call.
#[derive(Debug, Clone)]
pub struct AmieOutcome {
    /// All REs found (confidence 1.0, support |T|), unranked.
    pub rules: Vec<Rule>,
    /// The least complex RE under `Ĉfr`, with its cost.
    pub best: Option<(Rule, Bits)>,
    /// The search hit the timeout or the evaluation cap.
    pub timed_out: bool,
    /// Candidate rules evaluated.
    pub rules_evaluated: u64,
}

/// Approximate `Ĉfr` of a rule body: predicates coded by global rank,
/// constants coded conditionally on their atom's predicate. This matches
/// REMI's `Ĉ` on shapes REMI can express and extends it naturally to the
/// rest, which is all the ranking of AMIE's output needs.
pub fn rule_cost(model: &CostModel<'_>, rule: &Rule) -> Bits {
    if rule.body.is_empty() {
        return Bits::INFINITY;
    }
    rule.body
        .iter()
        .map(|a| {
            let mut bits = model.pred_bits(a.p);
            if let Arg::Const(c) = a.o {
                bits = bits + model.entity_bits(c, a.p);
            }
            if let Arg::Const(c) = a.s {
                bits = bits + model.entity_bits(c, a.p);
            }
            bits
        })
        .sum()
}

struct SearchCtx<'kb> {
    kb: &'kb KnowledgeBase,
    targets_sorted: Vec<u32>,
    config: AmieConfig,
    deadline: Option<Instant>,
    evaluated: AtomicU64,
    over_budget: AtomicBool,
}

impl SearchCtx<'_> {
    fn out_of_budget(&self) -> bool {
        if self.over_budget.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects rule scores
            if Instant::now() >= d {
                self.over_budget.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if self.evaluated.load(Ordering::Relaxed) >= self.config.max_rules_evaluated {
            self.over_budget.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    fn pred_usable(&self, p: PredId) -> bool {
        !(self.config.exclude_label && Some(p) == self.kb.label_pred())
    }
}

/// Generates the refinements of `rule` (AMIE's three operators), using the
/// first target's neighbourhood to propose constants and predicates — the
/// same fact-driven candidate generation AMIE uses.
fn refinements(ctx: &SearchCtx<'_>, rule: &Rule) -> Vec<Rule> {
    let kb = ctx.kb;
    let mut out = Vec::new();
    let t0 = NodeId(ctx.targets_sorted[0]);

    // Representative bindings for each variable when x = t0 — used to
    // propose constants/predicates for atoms on non-root variables.
    let var_reps: Vec<(u8, Vec<NodeId>)> = {
        let mut reps = Vec::new();
        // The root variable is always present via the implicit head
        // ψ(x, True), even when the body is still empty.
        let mut vars = rule.variables();
        if !vars.contains(&ROOT_VAR) {
            vars.insert(0, ROOT_VAR);
        }
        for v in vars {
            if v == ROOT_VAR {
                reps.push((v, vec![t0]));
            } else {
                // Entities reachable as bindings of v with x = t0: rather
                // than full enumeration, sample via the atoms that mention
                // v with a bound other side.
                let mut vals: Vec<NodeId> = Vec::new();
                for a in &rule.body {
                    match (a.s, a.o) {
                        (Arg::Var(ROOT_VAR), Arg::Var(vv)) if vv == v => {
                            vals.extend(kb.objects(a.p, t0).iter().map(NodeId));
                        }
                        (Arg::Var(vv), Arg::Var(ROOT_VAR)) if vv == v => {
                            vals.extend(kb.subjects(a.p, t0).iter().map(NodeId));
                        }
                        (Arg::Var(vv), Arg::Const(c)) if vv == v => {
                            vals.extend(kb.subjects(a.p, c).iter().map(NodeId));
                        }
                        (Arg::Const(c), Arg::Var(vv)) if vv == v => {
                            vals.extend(kb.objects(a.p, c).iter().map(NodeId));
                        }
                        _ => {}
                    }
                }
                vals.truncate(16);
                reps.push((v, vals));
            }
        }
        reps
    };

    // Operator 1: add an instantiated atom p(v, C).
    for (v, reps) in &var_reps {
        if ctx.config.language == AmieLanguage::Standard && *v != ROOT_VAR {
            continue;
        }
        for &rep in reps {
            for p in kb.preds_of_subject(rep) {
                let p = PredId(p);
                if !ctx.pred_usable(p) {
                    continue;
                }
                for o in kb.objects(p, rep) {
                    let o = NodeId(o);
                    if kb.node_kind(o) == TermKind::Blank {
                        continue;
                    }
                    let atom = RuleAtom {
                        p,
                        s: Arg::Var(*v),
                        o: Arg::Const(o),
                    };
                    if rule.body.contains(&atom) {
                        continue;
                    }
                    let mut body = rule.body.clone();
                    body.push(atom);
                    out.push(Rule { body });
                }
            }
        }
    }

    if ctx.config.language == AmieLanguage::Standard {
        return out;
    }

    let next_var = rule.max_var().map(|v| v + 1).unwrap_or(1);
    // Operator 2: add a dangling atom p(v, fresh) — proposes predicates
    // observed on representative bindings. Only when the body can still be
    // closed (need one more atom available to bind the fresh variable).
    if rule.len() + 2 <= ctx.config.max_body_atoms && next_var < 15 {
        for (v, reps) in &var_reps {
            for &rep in reps {
                for p in kb.preds_of_subject(rep) {
                    let p = PredId(p);
                    if !ctx.pred_usable(p) {
                        continue;
                    }
                    let atom = RuleAtom {
                        p,
                        s: Arg::Var(*v),
                        o: Arg::Var(next_var),
                    };
                    if rule.body.contains(&atom) {
                        continue;
                    }
                    let mut body = rule.body.clone();
                    body.push(atom);
                    out.push(Rule { body });
                }
            }
        }
    }

    // Operator 3: add a closing atom p(v1, v2) over existing variables.
    let vars = rule.variables();
    for &v1 in &vars {
        for &v2 in &vars {
            if v1 == v2 {
                continue;
            }
            // Propose predicates from representative bindings of v1.
            let reps = var_reps
                .iter()
                .find(|(v, _)| *v == v1)
                .map(|(_, r)| r.as_slice())
                .unwrap_or(&[]);
            let mut preds: Vec<PredId> = Vec::new();
            for &rep in reps {
                preds.extend(kb.preds_of_subject(rep).iter().map(PredId));
            }
            preds.sort_unstable();
            preds.dedup();
            for p in preds {
                if !ctx.pred_usable(p) {
                    continue;
                }
                let atom = RuleAtom {
                    p,
                    s: Arg::Var(v1),
                    o: Arg::Var(v2),
                };
                if rule.body.contains(&atom) {
                    continue;
                }
                let mut body = rule.body.clone();
                body.push(atom);
                out.push(Rule { body });
            }
        }
    }

    out
}

/// Mines referring-expression rules for `targets`.
pub fn mine_re(
    kb: &KnowledgeBase,
    targets: &[NodeId],
    config: AmieConfig,
    model: Option<&CostModel<'_>>,
) -> AmieOutcome {
    assert!(!targets.is_empty(), "need at least one target");
    let mut targets_sorted: Vec<u32> = targets.iter().map(|t| t.0).collect();
    targets_sorted.sort_unstable();
    targets_sorted.dedup();

    // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects rule scores
    let deadline = config.timeout.map(|t| Instant::now() + t);
    let threads = config.threads.max(1);
    let ctx = SearchCtx {
        kb,
        targets_sorted: targets_sorted.clone(),
        config,
        deadline,
        evaluated: AtomicU64::new(0),
        over_budget: AtomicBool::new(false),
    };

    let mut seen: FxHashSet<Rule> = FxHashSet::default();
    let mut frontier: Vec<Rule> = vec![Rule::empty()];
    let accepted: Mutex<Vec<Rule>> = Mutex::new(Vec::new());

    while !frontier.is_empty() && !ctx.out_of_budget() {
        // Expand the frontier.
        let mut candidates: Vec<Rule> = Vec::new();
        for rule in &frontier {
            if rule.len() >= ctx.config.max_body_atoms {
                continue;
            }
            if ctx.out_of_budget() {
                break;
            }
            for refined in refinements(&ctx, rule) {
                let canon = refined.canonical();
                if seen.insert(canon) {
                    candidates.push(refined);
                }
            }
        }

        // Evaluate candidates (in parallel if configured, on the shared
        // process-wide pool) and classify.
        let survivors: Mutex<Vec<Rule>> = Mutex::new(Vec::new());
        let (ctx_ref, survivors_ref, accepted_ref) = (&ctx, &survivors, &accepted);
        remi_pool::broadcast_chunks(remi_pool::global(), candidates.len(), threads, &|range| {
            let chunk_rules = &candidates[range];
            let mut local_survivors = Vec::new();
            let mut local_accepted = Vec::new();
            for rule in chunk_rules {
                if ctx_ref.out_of_budget() {
                    break;
                }
                ctx_ref.evaluated.fetch_add(1, Ordering::Relaxed);
                if !rule.is_connected() {
                    continue;
                }
                let q = evaluate_rule(ctx_ref.kb, rule, &ctx_ref.targets_sorted);
                // Support threshold |T|: every target must match.
                if q.support < ctx_ref.targets_sorted.len() {
                    continue;
                }
                if q.confidence >= 1.0 && rule.is_closed() {
                    local_accepted.push(rule.clone());
                    // REs need no further refinement: extensions
                    // stay REs but grow longer.
                    continue;
                }
                local_survivors.push(rule.clone());
            }
            survivors_ref.lock().extend(local_survivors);
            accepted_ref.lock().extend(local_accepted);
        });

        frontier = survivors.into_inner();
    }

    let rules = accepted.into_inner();
    let best = model.and_then(|m| {
        rules
            .iter()
            .map(|r| (r.clone(), rule_cost(m, r)))
            .min_by(|a, b| a.1.cmp(&b.1))
    });

    AmieOutcome {
        timed_out: ctx.over_budget.load(Ordering::Relaxed),
        rules_evaluated: ctx.evaluated.load(Ordering::Relaxed),
        rules,
        best,
    }
}

/// Verifies that a rule is a genuine RE for the targets (exact bindings).
pub fn is_re(kb: &KnowledgeBase, rule: &Rule, targets: &[NodeId]) -> bool {
    let mut sorted: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let mut bindings = root_bindings(kb, rule);
    bindings.sort_unstable();
    bindings == sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_core::complexity::{EntityCodeMode, Prominence};
    use remi_kb::KbBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for city in ["Rennes", "Nantes"] {
            b.add_iri(&format!("e:{city}"), "p:in", "e:Brittany");
            b.add_iri(&format!("e:{city}"), "p:mayor", &format!("e:mayor{city}"));
            b.add_iri(&format!("e:mayor{city}"), "p:party", "e:Socialist");
        }
        b.add_iri("e:Vannes", "p:in", "e:Brittany");
        b.add_iri("e:Vannes", "p:mayor", "e:mayorVannes");
        b.add_iri("e:mayorVannes", "p:party", "e:Green");
        b.add_iri("e:Lille", "p:mayor", "e:mayorLille");
        b.add_iri("e:mayorLille", "p:party", "e:Socialist");
        b.build().unwrap()
    }

    #[test]
    fn finds_res_for_pair() {
        let kb = kb();
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let outcome = mine_re(&kb, &targets, AmieConfig::default(), Some(&model));
        assert!(!outcome.timed_out);
        assert!(!outcome.rules.is_empty(), "at least one RE exists");
        for rule in &outcome.rules {
            assert!(is_re(&kb, rule, &targets), "{rule:?} is not an RE");
        }
        let (best, cost) = outcome.best.expect("model provided");
        assert!(is_re(&kb, &best, &targets));
        assert!(!cost.is_infinite());
    }

    #[test]
    fn standard_language_finds_atom_res() {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:in", "e:France");
        b.add_iri("e:Lyon", "p:in", "e:France");
        let kb = b.build().unwrap();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let cfg = AmieConfig {
            language: AmieLanguage::Standard,
            ..Default::default()
        };
        let outcome = mine_re(&kb, &[paris], cfg, None);
        assert!(!outcome.rules.is_empty());
        for rule in &outcome.rules {
            assert!(is_re(&kb, rule, &[paris]));
            // Standard language: all atoms instantiated on x.
            for a in &rule.body {
                assert_eq!(a.s, Arg::Var(ROOT_VAR));
                assert!(matches!(a.o, Arg::Const(_)));
            }
        }
    }

    #[test]
    fn no_solution_when_targets_indistinguishable() {
        let mut b = KbBuilder::new();
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        let kb = b.build().unwrap();
        let t1 = kb.node_id_by_iri("e:twin1").unwrap();
        let outcome = mine_re(&kb, &[t1], AmieConfig::default(), None);
        assert!(outcome.rules.is_empty());
        assert!(!outcome.timed_out);
    }

    #[test]
    fn timeout_flags_and_stops() {
        let kb = kb();
        let targets = [kb.node_id_by_iri("e:Rennes").unwrap()];
        let cfg = AmieConfig {
            timeout: Some(Duration::from_nanos(1)),
            ..Default::default()
        };
        let outcome = mine_re(&kb, &targets, cfg, None);
        assert!(outcome.timed_out);
    }

    #[test]
    fn evaluation_cap_flags() {
        let kb = kb();
        let targets = [kb.node_id_by_iri("e:Rennes").unwrap()];
        let cfg = AmieConfig {
            max_rules_evaluated: 3,
            ..Default::default()
        };
        let outcome = mine_re(&kb, &targets, cfg, None);
        assert!(outcome.timed_out);
        assert!(outcome.rules_evaluated >= 3);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let kb = kb();
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let seq = mine_re(&kb, &targets, AmieConfig::default(), None);
        let par = mine_re(
            &kb,
            &targets,
            AmieConfig {
                threads: 4,
                ..Default::default()
            },
            None,
        );
        let canon = |rules: &[Rule]| {
            let mut v: Vec<Rule> = rules.iter().map(Rule::canonical).collect();
            v.sort_by_key(|r| format!("{r:?}"));
            v
        };
        assert_eq!(canon(&seq.rules), canon(&par.rules));
    }

    #[test]
    fn rule_cost_ranks_prominent_constants_cheaper() {
        let mut b = KbBuilder::new();
        for i in 0..9 {
            b.add_iri(&format!("e:c{i}"), "p:in", "e:Big");
        }
        b.add_iri("e:c9", "p:in", "e:Small");
        let kb = b.build().unwrap();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let p = kb.pred_id("p:in").unwrap();
        let big = Rule {
            body: vec![RuleAtom {
                p,
                s: Arg::Var(ROOT_VAR),
                o: Arg::Const(kb.node_id_by_iri("e:Big").unwrap()),
            }],
        };
        let small = Rule {
            body: vec![RuleAtom {
                p,
                s: Arg::Var(ROOT_VAR),
                o: Arg::Const(kb.node_id_by_iri("e:Small").unwrap()),
            }],
        };
        assert!(rule_cost(&model, &big) < rule_cost(&model, &small));
        assert!(rule_cost(&model, &Rule::empty()).is_infinite());
    }
}
