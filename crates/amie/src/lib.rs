//! `remi-amie` — an AMIE+-style ILP baseline for referring-expression
//! mining, reimplemented from scratch for the runtime comparison of
//! Table 4 (§4.2).
//!
//! AMIE+ mines closed Horn rules breadth-first with support/confidence
//! thresholds. RE mining is encoded with a surrogate head `ψ(x, True)`
//! holding for every target entity: a rule with support |T| and
//! confidence 1.0 has a body that matches exactly the target set, i.e. a
//! referring expression. The miner here preserves AMIE's algorithmic
//! profile — breadth-first refinement, generic join evaluation, no
//! RE-specific pruning — which is what makes it orders of magnitude
//! slower than REMI on this task.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod miner;
pub mod query;
pub mod rule;

pub use miner::{is_re, mine_re, rule_cost, AmieConfig, AmieLanguage, AmieOutcome};
pub use query::{evaluate_rule, root_bindings, RuleQuality};
pub use rule::{Arg, Rule, RuleAtom, ROOT_VAR};
