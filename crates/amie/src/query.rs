//! Conjunctive-query evaluation of rule bodies.
//!
//! AMIE evaluates candidate rules by counting bindings — no RE-specific
//! pruning, no binding-set caching. That difference is precisely what the
//! paper's runtime comparison (Table 4) measures, so this evaluator is a
//! faithful generic backtracking join, deliberately *without* REMI's
//! shortcuts.

use remi_kb::{KnowledgeBase, NodeId};

use crate::rule::{Arg, Rule, RuleAtom, ROOT_VAR};

/// Backtracking state: variable assignments (index = variable id).
#[derive(Debug, Clone)]
struct Assignment {
    vals: [Option<NodeId>; 16],
}

impl Assignment {
    fn new() -> Self {
        Assignment { vals: [None; 16] }
    }

    fn get(&self, a: Arg) -> Option<NodeId> {
        match a {
            Arg::Const(c) => Some(c),
            Arg::Var(v) => self.vals[v as usize],
        }
    }

    fn set(&mut self, v: u8, n: NodeId) {
        self.vals[v as usize] = Some(n);
    }

    fn unset(&mut self, v: u8) {
        self.vals[v as usize] = None;
    }
}

/// How many candidate matches an atom has under the current assignment —
/// the selectivity heuristic for atom ordering.
fn atom_selectivity(kb: &KnowledgeBase, atom: &RuleAtom, asg: &Assignment) -> usize {
    match (asg.get(atom.s), asg.get(atom.o)) {
        (Some(s), Some(o)) => usize::from(!kb.contains(s, atom.p, o)) * usize::MAX / 2 + 1,
        (Some(s), None) => kb.objects(atom.p, s).len(),
        (None, Some(o)) => kb.subjects(atom.p, o).len(),
        (None, None) => kb.index(atom.p).num_facts(),
    }
}

/// Recursively checks whether the remaining atoms are satisfiable under
/// `asg`, enumerating matches for the most selective atom first.
fn satisfiable(kb: &KnowledgeBase, remaining: &mut Vec<RuleAtom>, asg: &mut Assignment) -> bool {
    if remaining.is_empty() {
        return true;
    }
    // Pick the most selective atom.
    let (pos, _) = remaining
        .iter()
        .enumerate()
        .map(|(i, a)| (i, atom_selectivity(kb, a, asg)))
        .min_by_key(|&(_, sel)| sel)
        .expect("remaining is non-empty");
    let atom = remaining.swap_remove(pos);

    let result = match (asg.get(atom.s), asg.get(atom.o)) {
        (Some(s), Some(o)) => kb.contains(s, atom.p, o) && satisfiable(kb, remaining, asg),
        (Some(s), None) => {
            let v = atom.o.var().expect("unbound object is a variable");
            let mut ok = false;
            // Clone the candidate list: `remaining` is mutated recursively.
            let objs: Vec<u32> = kb.objects(atom.p, s).to_vec();
            for o in objs {
                asg.set(v, NodeId(o));
                if satisfiable(kb, remaining, asg) {
                    ok = true;
                    break;
                }
            }
            asg.unset(v);
            ok
        }
        (None, Some(o)) => {
            let v = atom.s.var().expect("unbound subject is a variable");
            let mut ok = false;
            let subs: Vec<u32> = kb.subjects(atom.p, o).to_vec();
            for s in subs {
                asg.set(v, NodeId(s));
                if satisfiable(kb, remaining, asg) {
                    ok = true;
                    break;
                }
            }
            asg.unset(v);
            ok
        }
        (None, None) => {
            let sv = atom.s.var().expect("unbound subject is a variable");
            let ov = atom.o.var().expect("unbound object is a variable");
            let mut ok = false;
            let groups: Vec<(NodeId, Vec<u32>)> = kb
                .index(atom.p)
                .iter_subjects()
                .map(|(s, objs)| (s, objs.to_vec()))
                .collect();
            'outer: for (s, objs) in groups {
                asg.set(sv, s);
                for o in objs {
                    asg.set(ov, NodeId(o));
                    if satisfiable(kb, remaining, asg) {
                        ok = true;
                        break 'outer;
                    }
                }
            }
            // The trial bindings are scratch state either way.
            asg.unset(sv);
            asg.unset(ov);
            ok
        }
    };
    remaining.push(atom);
    result
}

/// Candidate values for the root variable: the matches of the most
/// selective body atom that mentions `x` directly.
fn root_candidates(kb: &KnowledgeBase, rule: &Rule) -> Vec<u32> {
    let mut best: Option<Vec<u32>> = None;
    let empty = Assignment::new();
    for atom in &rule.body {
        let touches_root = atom.vars().any(|v| v == ROOT_VAR);
        if !touches_root {
            continue;
        }
        // Enumerate the x-projections of this atom's matches.
        let candidates: Vec<u32> = match (atom.s, atom.o) {
            (Arg::Var(ROOT_VAR), Arg::Const(o)) => kb.subjects(atom.p, o).to_vec(),
            (Arg::Const(s), Arg::Var(ROOT_VAR)) => kb.objects(atom.p, s).to_vec(),
            (Arg::Var(ROOT_VAR), _) => kb.index(atom.p).iter_subjects().map(|(s, _)| s.0).collect(),
            (_, Arg::Var(ROOT_VAR)) => kb.index(atom.p).iter_objects().map(|o| o.0).collect(),
            _ => continue,
        };
        let _ = &empty;
        match &best {
            Some(b) if b.len() <= candidates.len() => {}
            _ => best = Some(candidates),
        }
    }
    let mut out = best.unwrap_or_default();
    out.sort_unstable();
    out.dedup();
    out
}

/// The distinct bindings of the root variable `x` satisfying the body.
/// This is the denominator of AMIE's confidence for surrogate-head rules.
pub fn root_bindings(kb: &KnowledgeBase, rule: &Rule) -> Vec<u32> {
    if rule.body.is_empty() || !rule.mentions_root() {
        return Vec::new();
    }
    let candidates = root_candidates(kb, rule);
    let mut out = Vec::new();
    for x in candidates {
        let mut asg = Assignment::new();
        asg.set(ROOT_VAR, NodeId(x));
        let mut remaining = rule.body.clone();
        if satisfiable(kb, &mut remaining, &mut asg) {
            out.push(x);
        }
    }
    out
}

/// Support and confidence of a surrogate-head rule for the target set
/// (§4.2.1): support = #targets matched; confidence = support / #bindings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleQuality {
    /// Number of targets the body matches.
    pub support: usize,
    /// support / total bindings of `x` (0 when the body has no bindings).
    pub confidence: f64,
    /// Total distinct bindings of `x`.
    pub bindings: usize,
}

/// Evaluates a rule against the targets.
pub fn evaluate_rule(kb: &KnowledgeBase, rule: &Rule, sorted_targets: &[u32]) -> RuleQuality {
    let bindings = root_bindings(kb, rule);
    let support = bindings
        .iter()
        .filter(|x| sorted_targets.binary_search(x).is_ok())
        .count();
    let confidence = if bindings.is_empty() {
        0.0
    } else {
        support as f64 / bindings.len() as f64
    };
    RuleQuality {
        support,
        confidence,
        bindings: bindings.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::{KbBuilder, PredId};

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("e:Rennes", "p:in", "e:Brittany");
        b.add_iri("e:Nantes", "p:in", "e:Brittany");
        b.add_iri("e:Lyon", "p:in", "e:Rhone");
        b.add_iri("e:Rennes", "p:mayor", "e:a");
        b.add_iri("e:Nantes", "p:mayor", "e:b");
        b.add_iri("e:Lyon", "p:mayor", "e:c");
        b.add_iri("e:a", "p:party", "e:Soc");
        b.add_iri("e:b", "p:party", "e:Soc");
        b.add_iri("e:c", "p:party", "e:Green");
        b.build().unwrap()
    }

    fn pid(kb: &KnowledgeBase, iri: &str) -> PredId {
        kb.pred_id(iri).unwrap()
    }

    fn nid(kb: &KnowledgeBase, iri: &str) -> NodeId {
        kb.node_id_by_iri(iri).unwrap()
    }

    #[test]
    fn instantiated_atom_bindings() {
        let kb = kb();
        let rule = Rule {
            body: vec![RuleAtom {
                p: pid(&kb, "p:in"),
                s: Arg::Var(ROOT_VAR),
                o: Arg::Const(nid(&kb, "e:Brittany")),
            }],
        };
        let mut xs = root_bindings(&kb, &rule);
        xs.sort_unstable();
        let mut expect = vec![nid(&kb, "e:Rennes").0, nid(&kb, "e:Nantes").0];
        expect.sort_unstable();
        assert_eq!(xs, expect);
    }

    #[test]
    fn chain_rule_bindings() {
        let kb = kb();
        // mayor(x, y) ∧ party(y, Soc)
        let rule = Rule {
            body: vec![
                RuleAtom {
                    p: pid(&kb, "p:mayor"),
                    s: Arg::Var(ROOT_VAR),
                    o: Arg::Var(1),
                },
                RuleAtom {
                    p: pid(&kb, "p:party"),
                    s: Arg::Var(1),
                    o: Arg::Const(nid(&kb, "e:Soc")),
                },
            ],
        };
        let mut xs = root_bindings(&kb, &rule);
        xs.sort_unstable();
        let mut expect = vec![nid(&kb, "e:Rennes").0, nid(&kb, "e:Nantes").0];
        expect.sort_unstable();
        assert_eq!(xs, expect);
    }

    #[test]
    fn support_and_confidence() {
        let kb = kb();
        let rule = Rule {
            body: vec![RuleAtom {
                p: pid(&kb, "p:in"),
                s: Arg::Var(ROOT_VAR),
                o: Arg::Const(nid(&kb, "e:Brittany")),
            }],
        };
        let mut targets = vec![nid(&kb, "e:Rennes").0, nid(&kb, "e:Nantes").0];
        targets.sort_unstable();
        let q = evaluate_rule(&kb, &rule, &targets);
        assert_eq!(q.support, 2);
        assert_eq!(q.bindings, 2);
        assert!((q.confidence - 1.0).abs() < 1e-12);

        // For just Rennes the same rule has confidence 0.5.
        let q = evaluate_rule(&kb, &rule, &[nid(&kb, "e:Rennes").0]);
        assert_eq!(q.support, 1);
        assert!((q.confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_rootless_bodies_have_no_bindings() {
        let kb = kb();
        assert!(root_bindings(&kb, &Rule::empty()).is_empty());
        let rootless = Rule {
            body: vec![RuleAtom {
                p: pid(&kb, "p:party"),
                s: Arg::Var(1),
                o: Arg::Var(2),
            }],
        };
        assert!(root_bindings(&kb, &rootless).is_empty());
    }

    #[test]
    fn unsatisfiable_body() {
        let kb = kb();
        // in(x, Brittany) ∧ in(x, Rhone): nobody is in both.
        let rule = Rule {
            body: vec![
                RuleAtom {
                    p: pid(&kb, "p:in"),
                    s: Arg::Var(ROOT_VAR),
                    o: Arg::Const(nid(&kb, "e:Brittany")),
                },
                RuleAtom {
                    p: pid(&kb, "p:in"),
                    s: Arg::Var(ROOT_VAR),
                    o: Arg::Const(nid(&kb, "e:Rhone")),
                },
            ],
        };
        assert!(root_bindings(&kb, &rule).is_empty());
    }

    #[test]
    fn closed_two_variable_rule() {
        let mut b = KbBuilder::new();
        b.add_iri("e:p1", "p:bornIn", "e:Paris");
        b.add_iri("e:p1", "p:diedIn", "e:Paris");
        b.add_iri("e:p2", "p:bornIn", "e:Paris");
        b.add_iri("e:p2", "p:diedIn", "e:Lyon");
        let kb = b.build().unwrap();
        let rule = Rule {
            body: vec![
                RuleAtom {
                    p: kb.pred_id("p:bornIn").unwrap(),
                    s: Arg::Var(ROOT_VAR),
                    o: Arg::Var(1),
                },
                RuleAtom {
                    p: kb.pred_id("p:diedIn").unwrap(),
                    s: Arg::Var(ROOT_VAR),
                    o: Arg::Var(1),
                },
            ],
        };
        let xs = root_bindings(&kb, &rule);
        assert_eq!(xs, vec![kb.node_id_by_iri("e:p1").unwrap().0]);
    }
}
