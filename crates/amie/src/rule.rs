//! Horn rules for the AMIE+-style baseline (§4.2.1).
//!
//! RE mining is formulated as rule mining: rules have the surrogate head
//! `ψ(x, True)` where `ψ(t, True)` holds for every target `t`, and bodies
//! are conjunctions of atoms over variables and constants. The body of an
//! accepted rule (support ≥ |T|, confidence = 1.0) *is* the referring
//! expression.

use std::fmt;

use remi_kb::{KnowledgeBase, NodeId, PredId};

/// The root variable `x` — always variable 0.
pub const ROOT_VAR: u8 = 0;

/// An argument of a rule atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arg {
    /// A variable, identified by a small index (0 is the head variable).
    Var(u8),
    /// A constant entity/literal.
    Const(NodeId),
}

impl Arg {
    /// The variable index, if this is a variable.
    pub fn var(self) -> Option<u8> {
        match self {
            Arg::Var(v) => Some(v),
            Arg::Const(_) => None,
        }
    }
}

/// One body atom `p(s, o)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleAtom {
    /// Predicate.
    pub p: PredId,
    /// Subject argument.
    pub s: Arg,
    /// Object argument.
    pub o: Arg,
}

impl RuleAtom {
    /// Variables appearing in this atom.
    pub fn vars(&self) -> impl Iterator<Item = u8> {
        self.s.var().into_iter().chain(self.o.var())
    }
}

/// A rule `ψ(x, True) ⇐ body`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Rule {
    /// The body atoms.
    pub body: Vec<RuleAtom>,
}

impl Rule {
    /// The empty rule (body ⊤).
    pub fn empty() -> Rule {
        Rule::default()
    }

    /// Number of body atoms. The paper's length bound `l = 4` counts the
    /// head, so bodies have at most 3 atoms.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// The highest variable index used, if any.
    pub fn max_var(&self) -> Option<u8> {
        self.body.iter().flat_map(|a| a.vars()).max()
    }

    /// Variables in use.
    pub fn variables(&self) -> Vec<u8> {
        let mut vs: Vec<u8> = self.body.iter().flat_map(|a| a.vars()).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// A rule is *closed* (AMIE's output condition) when every variable
    /// appears in at least two atom positions, counting the implicit head
    /// occurrence of `x`.
    pub fn is_closed(&self) -> bool {
        let mut counts = [0u8; 16];
        for a in &self.body {
            for v in a.vars() {
                counts[v as usize] = counts[v as usize].saturating_add(1);
            }
        }
        counts[ROOT_VAR as usize] = counts[ROOT_VAR as usize].saturating_add(1); // head ψ(x, True)
        self.variables()
            .into_iter()
            .all(|v| counts[v as usize] >= 2)
    }

    /// True when the body mentions the root variable (a requirement for
    /// the rule to describe anything).
    pub fn mentions_root(&self) -> bool {
        self.body.iter().any(|a| a.vars().any(|v| v == ROOT_VAR))
    }

    /// True when the body is connected: every atom reachable from the root
    /// variable through shared variables.
    pub fn is_connected(&self) -> bool {
        if self.body.is_empty() {
            return true;
        }
        if !self.mentions_root() {
            return false;
        }
        let mut reached_vars = vec![ROOT_VAR];
        let mut reached_atoms = vec![false; self.body.len()];
        loop {
            let mut progress = false;
            for (i, a) in self.body.iter().enumerate() {
                if reached_atoms[i] {
                    continue;
                }
                if a.vars().any(|v| reached_vars.contains(&v)) {
                    reached_atoms[i] = true;
                    progress = true;
                    for v in a.vars() {
                        if !reached_vars.contains(&v) {
                            reached_vars.push(v);
                        }
                    }
                }
            }
            if !progress {
                break;
            }
        }
        reached_atoms.into_iter().all(|r| r)
    }

    /// A canonical form for duplicate elimination: atoms sorted after
    /// renaming variables in first-appearance order (the root keeps 0).
    pub fn canonical(&self) -> Rule {
        // Try the identity ordering first, then settle on the
        // lexicographically smallest atom ordering after renaming. Bodies
        // have ≤ 3 atoms, so trying all permutations is cheap.
        let n = self.body.len();
        let mut best: Option<Vec<RuleAtom>> = None;
        let mut index_perm: Vec<usize> = (0..n).collect();
        permute(&mut index_perm, 0, &mut |perm| {
            let mut mapping: Vec<Option<u8>> = vec![None; 16];
            mapping[ROOT_VAR as usize] = Some(ROOT_VAR);
            let mut next = 1u8;
            let renamed: Vec<RuleAtom> = perm
                .iter()
                .map(|&i| {
                    let a = self.body[i];
                    let mut rename = |arg: Arg| match arg {
                        Arg::Const(c) => Arg::Const(c),
                        Arg::Var(v) => {
                            let slot = &mut mapping[v as usize];
                            if slot.is_none() {
                                *slot = Some(next);
                                next += 1;
                            }
                            Arg::Var(slot.expect("just set"))
                        }
                    };
                    RuleAtom {
                        p: a.p,
                        s: rename(a.s),
                        o: rename(a.o),
                    }
                })
                .collect();
            let mut sorted = renamed;
            // Keep the permutation order for renaming but compare sorted.
            sorted.sort_unstable();
            match &best {
                Some(b) if *b <= sorted => {}
                _ => best = Some(sorted),
            }
        });
        Rule {
            body: best.unwrap_or_default(),
        }
    }

    /// Renders the rule with KB names.
    pub fn display<'a>(&'a self, kb: &'a KnowledgeBase) -> DisplayRule<'a> {
        DisplayRule { rule: self, kb }
    }
}

fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

/// Display adaptor.
pub struct DisplayRule<'a> {
    rule: &'a Rule,
    kb: &'a KnowledgeBase,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ψ(x, True) ⇐ ")?;
        if self.rule.body.is_empty() {
            return write!(f, "⊤");
        }
        for (i, a) in self.rule.body.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let arg = |arg: Arg| match arg {
                Arg::Var(0) => "x".to_string(),
                Arg::Var(v) => format!("y{v}"),
                Arg::Const(c) => self.kb.node_name(c),
            };
            write!(f, "{}({}, {})", self.kb.pred_name(a.p), arg(a.s), arg(a.o))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: u32, s: Arg, o: Arg) -> RuleAtom {
        RuleAtom { p: PredId(p), s, o }
    }

    #[test]
    fn closedness() {
        // ψ(x) ⇐ p0(x, C) — x appears in head + body: closed.
        let r = Rule {
            body: vec![atom(0, Arg::Var(0), Arg::Const(NodeId(5)))],
        };
        assert!(r.is_closed());

        // ψ(x) ⇐ p0(x, y) — y appears once: open.
        let r = Rule {
            body: vec![atom(0, Arg::Var(0), Arg::Var(1))],
        };
        assert!(!r.is_closed());

        // ψ(x) ⇐ p0(x, y) ∧ p1(y, C) — closed.
        let r = Rule {
            body: vec![
                atom(0, Arg::Var(0), Arg::Var(1)),
                atom(1, Arg::Var(1), Arg::Const(NodeId(5))),
            ],
        };
        assert!(r.is_closed());
    }

    #[test]
    fn connectivity() {
        // p0(x, y) ∧ p1(z, w): second atom unreachable.
        let r = Rule {
            body: vec![
                atom(0, Arg::Var(0), Arg::Var(1)),
                atom(1, Arg::Var(2), Arg::Var(3)),
            ],
        };
        assert!(!r.is_connected());

        // p0(x, y) ∧ p1(y, z): chain is connected.
        let r = Rule {
            body: vec![
                atom(0, Arg::Var(0), Arg::Var(1)),
                atom(1, Arg::Var(1), Arg::Var(2)),
            ],
        };
        assert!(r.is_connected());

        // Body without the root variable at all.
        let r = Rule {
            body: vec![atom(0, Arg::Var(1), Arg::Var(2))],
        };
        assert!(!r.is_connected());
        assert!(Rule::empty().is_connected());
    }

    #[test]
    fn canonicalisation_merges_variants() {
        // Same rule with different variable numbering and atom order.
        let a = Rule {
            body: vec![
                atom(0, Arg::Var(0), Arg::Var(1)),
                atom(1, Arg::Var(1), Arg::Const(NodeId(9))),
            ],
        };
        let b = Rule {
            body: vec![
                atom(1, Arg::Var(3), Arg::Const(NodeId(9))),
                atom(0, Arg::Var(0), Arg::Var(3)),
            ],
        };
        assert_eq!(a.canonical(), b.canonical());

        // Genuinely different rules stay different.
        let c = Rule {
            body: vec![
                atom(0, Arg::Var(0), Arg::Var(1)),
                atom(1, Arg::Const(NodeId(9)), Arg::Var(1)),
            ],
        };
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn variables_and_max_var() {
        let r = Rule {
            body: vec![
                atom(0, Arg::Var(0), Arg::Var(2)),
                atom(1, Arg::Var(2), Arg::Const(NodeId(1))),
            ],
        };
        assert_eq!(r.variables(), vec![0, 2]);
        assert_eq!(r.max_var(), Some(2));
        assert!(Rule::empty().max_var().is_none());
    }
}
