//! `remi-eval` — experiment drivers reproducing every table and figure of
//! the REMI paper on the synthetic KBs of `remi-synth`.
//!
//! | artifact | module |
//! |---|---|
//! | Table 2 (p@k of Ĉ vs users)           | [`experiments::table2`] |
//! | Table 3 (entity-summarisation quality) | [`experiments::table3`] |
//! | Table 4 (runtimes: AMIE+/REMI/P-REMI)  | [`experiments::table4`] |
//! | Eq. 1 fit (R² of the power law)        | [`experiments::fit`]    |
//! | §3.2 search-space growth               | [`experiments::space`]  |
//! | §4.1.2 MAP study                       | [`experiments::map_study`] |
//! | §4.1.3 perceived interestingness       | [`experiments::perceived`] |
//!
//! Human raters are simulated by [`user_model`] (see DESIGN.md §2 for the
//! substitution argument); all drivers are seed-deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod user_model;

pub use experiments::{dbpedia_kb, wikidata_kb};
