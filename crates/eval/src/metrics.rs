//! Agreement metrics used by the qualitative evaluation.

/// `precision@k` between two rankings given as index sequences (best
/// first): the fraction of the reference's top-k that appears in the
/// candidate's top-k. This is the Table 2 statistic.
pub fn precision_at_k(candidate: &[usize], reference: &[usize], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let k = k.min(candidate.len()).min(reference.len());
    if k == 0 {
        return 0.0;
    }
    let cand_top: &[usize] = &candidate[..k];
    let ref_top: &[usize] = &reference[..k];
    let hits = cand_top.iter().filter(|i| ref_top.contains(i)).count();
    hits as f64 / k as f64
}

/// Average precision when exactly one item (`relevant`) is relevant: the
/// reciprocal of its 1-based rank in the user ordering. Averaging this
/// over responses gives the MAP the paper reports in §4.1.2.
pub fn average_precision_single(ranking: &[usize], relevant: usize) -> f64 {
    match ranking.iter().position(|&i| i == relevant) {
        Some(pos) => 1.0 / (pos + 1) as f64,
        None => 0.0,
    }
}

/// Mean and population standard deviation.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_at_k_basics() {
        let cand = vec![0, 1, 2, 3, 4];
        let user = vec![1, 0, 3, 2, 4];
        // top-1: {0} vs {1} → 0; top-2: {0,1} vs {1,0} → 1.
        assert_eq!(precision_at_k(&cand, &user, 1), 0.0);
        assert_eq!(precision_at_k(&cand, &user, 2), 1.0);
        // top-3: {0,1,2} vs {1,0,3} → 2/3.
        assert!((precision_at_k(&cand, &user, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&cand, &user, 5), 1.0);
    }

    #[test]
    fn precision_handles_degenerate_inputs() {
        assert_eq!(precision_at_k(&[], &[], 3), 0.0);
        assert_eq!(precision_at_k(&[0], &[0], 0), 0.0);
        // k larger than the lists: clamps.
        assert_eq!(precision_at_k(&[0], &[0], 5), 1.0);
    }

    #[test]
    fn ap_single_is_reciprocal_rank() {
        assert_eq!(average_precision_single(&[2, 0, 1], 2), 1.0);
        assert_eq!(average_precision_single(&[2, 0, 1], 0), 0.5);
        assert!((average_precision_single(&[2, 0, 1], 1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_precision_single(&[2, 0, 1], 9), 0.0);
    }

    #[test]
    fn mean_std_works() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
