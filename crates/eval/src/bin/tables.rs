//! `remi-tables` — regenerates every table and figure of the paper on the
//! synthetic evaluation KBs and prints paper-vs-measured values.
//!
//! ```text
//! remi-tables [--table all|2|3|4|fit|space|map|perceived|ablation]
//!             [--scale F] [--seed N] [--sets N] [--timeout-ms N] [--threads N]
//!             [--backend csr|succinct]
//! ```

#![forbid(unsafe_code)]

use std::time::Duration;

use remi_core::LanguageBias;
use remi_eval::experiments::{
    self, ablation, fit, map_study, perceived, space, table2, table3, table4,
};

#[derive(Debug, Clone)]
struct Args {
    table: String,
    scale: f64,
    seed: u64,
    sets: usize,
    timeout_ms: u64,
    threads: usize,
    backend: Option<remi_kb::Backend>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            table: "all".into(),
            scale: experiments::DEFAULT_DBPEDIA_SCALE,
            seed: 42,
            sets: 100,
            timeout_ms: 500,
            // REMI_THREADS (the knob shared by every parallel path) wins
            // over the paper's 8-thread default; --threads beats both.
            threads: remi_pool::env_threads().unwrap_or(8),
            backend: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut take = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--table" => args.table = take("--table"),
            "--scale" => args.scale = take("--scale").parse().expect("--scale takes a float"),
            "--seed" => args.seed = take("--seed").parse().expect("--seed takes an integer"),
            "--sets" => args.sets = take("--sets").parse().expect("--sets takes an integer"),
            "--timeout-ms" => {
                args.timeout_ms = take("--timeout-ms")
                    .parse()
                    .expect("--timeout-ms takes an integer")
            }
            "--threads" => {
                args.threads = take("--threads")
                    .parse()
                    .expect("--threads takes an integer")
            }
            "--backend" => {
                args.backend = Some(
                    remi_kb::Backend::parse(&take("--backend"))
                        .expect("--backend takes csr or succinct"),
                )
            }
            "--help" | "-h" => {
                println!(
                    "remi-tables [--table all|2|3|4|fit|space|map|perceived|ablation] \
                     [--scale F] [--seed N] [--sets N] [--timeout-ms N] [--threads N] \
                     [--backend csr|succinct]\n\
                     (REMI_THREADS sizes the shared pool and is the --threads default)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

const DBPEDIA_CLASSES: [&str; 5] = ["Person", "Settlement", "Album", "Film", "Organization"];
const WIKIDATA_CLASSES: [&str; 4] = ["Company", "City", "Film", "Human"];

fn main() {
    let args = parse_args();
    let want = |t: &str| args.table == "all" || args.table == t;

    eprintln!(
        "# generating KBs (dbpedia & wikidata profiles, scale {}, seed {})…",
        args.scale, args.seed
    );
    let mut db = experiments::dbpedia_kb(args.scale, args.seed);
    let mut wd = experiments::wikidata_kb(args.scale, args.seed);
    if let Some(backend) = args.backend {
        // Re-house both KBs on the requested backend; every driver below
        // sees identical bindings either way.
        for synth in [&mut db, &mut wd] {
            let mut owned = (**synth).clone();
            owned.kb = owned.kb.with_backend(backend);
            *synth = std::sync::Arc::new(owned);
        }
        eprintln!("# storage backend: {backend}");
    }
    eprintln!(
        "# dbpedia-like:  {} facts ({} with inverses), {} predicates",
        db.kb.num_triples(),
        db.kb.num_triples_with_inverses(),
        db.kb.num_preds()
    );
    eprintln!(
        "# wikidata-like: {} facts ({} with inverses), {} predicates",
        wd.kb.num_triples(),
        wd.kb.num_triples_with_inverses(),
        wd.kb.num_preds()
    );
    println!();

    if want("2") {
        let r = table2::run(&db, &DBPEDIA_CLASSES, 24, 2, args.seed);
        println!("{r}");
    }
    if want("3") {
        let r = table3::run(
            &db,
            &["Person", "Settlement", "Film", "Organization"],
            80,
            args.seed,
        );
        println!("{r}");
    }
    if want("4") {
        let cfg = table4::Table4Config {
            n_sets: args.sets,
            timeout: Duration::from_millis(args.timeout_ms),
            threads: args.threads,
            seed: args.seed,
            include_amie: true,
        };
        for (synth, classes) in [(&db, &DBPEDIA_CLASSES[..]), (&wd, &WIKIDATA_CLASSES[..])] {
            for language in [LanguageBias::Standard, LanguageBias::Remi] {
                let r = table4::run_block(synth, classes, language, &cfg);
                println!("{r}");
            }
        }
    }
    if want("fit") {
        println!("{}", fit::run(&db, 10));
        println!("{}", fit::run(&wd, 10));
    }
    if want("space") {
        let r = space::run(
            &db,
            &["Person", "Settlement", "Organization"],
            20,
            500_000,
            args.seed,
        );
        println!("{r}");
    }
    if want("map") {
        let r = map_study::run(&db, &DBPEDIA_CLASSES, 20, 3, args.seed);
        println!("{r}");
    }
    if want("perceived") {
        let r = perceived::run(&wd, &WIKIDATA_CLASSES, 35, 3, args.seed);
        println!("{r}");
    }
    if want("ablation") {
        let r = ablation::run(&db, &DBPEDIA_CLASSES, 40, args.seed);
        println!("{r}");
    }
}
