//! Simulated study participants.
//!
//! The paper's §4.1 user studies measure how well `Ĉ` agrees with human
//! rankings of expression simplicity. Humans are unavailable to this
//! reproduction, so we model them (DESIGN.md §2): a participant perceives
//! the complexity of an expression as the frequency-grounded `Ĉfr` value
//! distorted by (a) multiplicative lognormal-ish noise and (b) a strong
//! *preference for the `rdf:type` predicate* — the paper's key observed
//! discrepancy ("people usually deem the predicate type the simplest
//! whereas REMI often ranks it second or third", §4.1.1). The model also
//! penalises extra existential variables slightly, reflecting the §4.1.3
//! comments that multi-hop expressions are harder to read.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remi_core::complexity::CostModel;
use remi_core::expr::{Expression, SubgraphExpr};
use remi_kb::KnowledgeBase;

/// Parameters of the simulated population.
#[derive(Debug, Clone)]
pub struct UserModelConfig {
    /// Relative noise amplitude on perceived complexity (0.0 = ideal
    /// Ĉ-aligned raters, larger = noisier crowd).
    pub noise: f64,
    /// Bits subtracted when an expression uses `rdf:type` (the human
    /// type-first preference).
    pub type_bonus: f64,
    /// Bits added per additional existential variable (reading effort).
    pub var_penalty: f64,
}

impl Default for UserModelConfig {
    fn default() -> Self {
        UserModelConfig {
            noise: 0.35,
            type_bonus: 6.0,
            var_penalty: 1.5,
        }
    }
}

/// A population of simulated raters with a shared perception model and
/// per-draw randomness.
pub struct UserPopulation<'m, 'kb> {
    kb: &'kb KnowledgeBase,
    model: &'m CostModel<'kb>,
    config: UserModelConfig,
    rng: StdRng,
}

impl<'m, 'kb> UserPopulation<'m, 'kb> {
    /// Creates a population grounded in the given (frequency-based) cost
    /// model.
    pub fn new(
        kb: &'kb KnowledgeBase,
        model: &'m CostModel<'kb>,
        config: UserModelConfig,
        seed: u64,
    ) -> Self {
        UserPopulation {
            kb,
            model,
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One rater's perceived complexity of a subgraph expression (lower =
    /// simpler).
    pub fn perceived_subgraph(&mut self, e: &SubgraphExpr) -> f64 {
        let base = self.model.subgraph_cost(e).value();
        let mut v = base;
        if let Some(tp) = self.kb.type_pred() {
            if e.predicates().contains(&tp) {
                v -= self.config.type_bonus;
            }
        }
        v += self.config.var_penalty * e.num_extra_vars() as f64;
        let factor = 1.0 + (self.rng.gen::<f64>() * 2.0 - 1.0) * self.config.noise;
        v * factor
    }

    /// One rater's perceived complexity of a full expression.
    pub fn perceived_expression(&mut self, e: &Expression) -> f64 {
        if e.is_top() {
            return f64::INFINITY;
        }
        e.parts.iter().map(|p| self.perceived_subgraph(p)).sum()
    }

    /// A rater ranks candidate subgraph expressions by perceived
    /// simplicity; returns indices into `candidates`, simplest first.
    pub fn rank_subgraphs(&mut self, candidates: &[SubgraphExpr]) -> Vec<usize> {
        let scores: Vec<f64> = candidates
            .iter()
            .map(|e| self.perceived_subgraph(e))
            .collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("perceived scores are finite")
        });
        order
    }

    /// A rater ranks candidate expressions; returns indices, simplest
    /// first.
    pub fn rank_expressions(&mut self, candidates: &[Expression]) -> Vec<usize> {
        let scores: Vec<f64> = candidates
            .iter()
            .map(|e| self.perceived_expression(e))
            .collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .expect("perceived scores are finite")
        });
        order
    }

    /// A rater grades the *interestingness* of an RE on the paper's 1–5
    /// scale (§4.1.3). Short prominent descriptions score high; long or
    /// obscure ones low. The mapping is an explicit model, not data.
    pub fn grade_interestingness(&mut self, e: &Expression) -> f64 {
        let perceived = self.perceived_expression(e);
        // Map perceived bits into 1..5. The slope is a calibration
        // constant of the simulated grader (documented in EXPERIMENTS.md):
        // ~4 bits (one crisp prominent fact) grades near 4, ~16 bits near
        // the paper's observed 2.65 average, 25+ bits bottoms out.
        let raw = 5.0 - perceived / 4.0;
        let noise = (self.rng.gen::<f64>() * 2.0 - 1.0) * 0.8;
        (raw + noise).clamp(1.0, 5.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_core::complexity::{EntityCodeMode, Prominence};
    use remi_kb::{KbBuilder, NodeId, PredId};

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for i in 0..10 {
            b.add_iri(&format!("e:c{i}"), "p:in", "e:Hub");
            b.add_iri(&format!("e:c{i}"), remi_kb::store::RDF_TYPE, "e:City");
        }
        b.add_iri("e:c0", "p:rare", "e:Obscure");
        b.build().unwrap()
    }

    #[test]
    fn noiseless_users_follow_the_model() {
        let kb = kb();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let cfg = UserModelConfig {
            noise: 0.0,
            type_bonus: 0.0,
            var_penalty: 0.0,
        };
        let mut pop = UserPopulation::new(&kb, &model, cfg, 1);
        let in_p = kb.pred_id("p:in").unwrap();
        let rare = kb.pred_id("p:rare").unwrap();
        let hub = kb.node_id_by_iri("e:Hub").unwrap();
        let obscure = kb.node_id_by_iri("e:Obscure").unwrap();
        let cheap = SubgraphExpr::Atom { p: in_p, o: hub };
        let costly = SubgraphExpr::Atom {
            p: rare,
            o: obscure,
        };
        assert!(pop.perceived_subgraph(&cheap) < pop.perceived_subgraph(&costly));
        let order = pop.rank_subgraphs(&[costly, cheap]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn type_preference_promotes_type_atoms() {
        let kb = kb();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let cfg = UserModelConfig {
            noise: 0.0,
            type_bonus: 100.0, // extreme preference for the test
            var_penalty: 0.0,
        };
        let mut pop = UserPopulation::new(&kb, &model, cfg, 1);
        let tp = kb.type_pred().unwrap();
        let city = kb.node_id_by_iri("e:City").unwrap();
        let in_p = kb.pred_id("p:in").unwrap();
        let hub = kb.node_id_by_iri("e:Hub").unwrap();
        let type_atom = SubgraphExpr::Atom { p: tp, o: city };
        let other = SubgraphExpr::Atom { p: in_p, o: hub };
        let order = pop.rank_subgraphs(&[other, type_atom]);
        assert_eq!(order[0], 1, "type atom must come first for type-lovers");
    }

    #[test]
    fn noise_varies_between_draws_but_is_seed_deterministic() {
        let kb = kb();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        // Use an expression with non-zero Ĉ: multiplicative noise on a
        // zero-cost expression is invisible.
        let e = SubgraphExpr::Atom {
            p: kb.pred_id("p:rare").unwrap(),
            o: kb.node_id_by_iri("e:Obscure").unwrap(),
        };
        let draws = |seed: u64| -> Vec<f64> {
            let mut pop = UserPopulation::new(&kb, &model, UserModelConfig::default(), seed);
            (0..5).map(|_| pop.perceived_subgraph(&e)).collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn grades_stay_in_range() {
        let kb = kb();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let mut pop = UserPopulation::new(&kb, &model, UserModelConfig::default(), 3);
        let e = Expression::single(SubgraphExpr::Atom {
            p: kb.pred_id("p:rare").unwrap(),
            o: kb.node_id_by_iri("e:Obscure").unwrap(),
        });
        for _ in 0..50 {
            let g = pop.grade_interestingness(&e);
            assert!((1.0..=5.0).contains(&g));
        }
        assert!(pop.perceived_expression(&Expression::top()).is_infinite());
    }

    #[test]
    fn extra_variables_are_penalised() {
        let kb = kb();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let cfg = UserModelConfig {
            noise: 0.0,
            type_bonus: 0.0,
            var_penalty: 50.0,
        };
        let mut pop = UserPopulation::new(&kb, &model, cfg, 1);
        let in_p = kb.pred_id("p:in").unwrap();
        let hub = kb.node_id_by_iri("e:Hub").unwrap();
        let atom = SubgraphExpr::Atom { p: in_p, o: hub };
        let path = SubgraphExpr::Path {
            p0: in_p,
            p1: in_p,
            o: hub,
        };
        assert!(pop.perceived_subgraph(&atom) < pop.perceived_subgraph(&path));
        let _ = (PredId(0), NodeId(0));
    }
}
