//! Table 4 — runtime comparison: AMIE+ vs REMI vs P-REMI (§4.2).
//!
//! Protocol: target sets of sizes 1/2/3 in proportions 50/30/20 from the
//! evaluation classes, mined under (i) the standard language of bound
//! atoms and (ii) REMI's extended language, with a per-set timeout.
//! Reported per system: total runtime, number of timeouts, number of sets
//! with a solution, and the average speed-up of P-REMI over AMIE+ and
//! over sequential REMI.

use std::fmt;
use std::time::{Duration, Instant};

use remi_amie::{mine_re, AmieConfig, AmieLanguage};
use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_core::{LanguageBias, Remi, RemiConfig, SearchStatus};
use remi_synth::{sample_target_sets, SynthKb, TargetSpec};

/// Per-system measurements.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// System name (`amie+`, `remi`, `p-remi`).
    pub name: String,
    /// Sum of wall-clock time over all sets.
    pub total_time: Duration,
    /// Number of sets that hit the timeout.
    pub timeouts: usize,
    /// Number of sets with at least one RE found.
    pub solutions: usize,
    /// Per-set durations (for speed-up computation).
    pub per_set: Vec<Duration>,
}

/// Result for one (dataset, language) cell block of Table 4.
#[derive(Debug, Clone)]
pub struct Table4Block {
    /// Dataset label.
    pub dataset: String,
    /// Language label (`standard` / `remi`).
    pub language: String,
    /// Rows for AMIE+, REMI, P-REMI.
    pub rows: Vec<SystemRow>,
    /// Average per-set speed-up of P-REMI over AMIE+.
    pub speedup_vs_amie: f64,
    /// Average per-set speed-up of P-REMI over REMI.
    pub speedup_vs_remi: f64,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Table4Config {
    /// Number of target sets (paper: 100).
    pub n_sets: usize,
    /// Per-set timeout (paper: 2 h; default here is experiment-sized).
    pub timeout: Duration,
    /// P-REMI worker threads.
    pub threads: usize,
    /// Random seed.
    pub seed: u64,
    /// Run the AMIE+ baseline row. Tests that only compare REMI against
    /// P-REMI turn this off — the ILP baseline burns the whole per-set
    /// timeout on hard sets and dominates suite wall-clock.
    pub include_amie: bool,
}

impl Default for Table4Config {
    fn default() -> Self {
        Table4Config {
            n_sets: 100,
            timeout: Duration::from_millis(500),
            threads: 8,
            seed: 4,
            include_amie: true,
        }
    }
}

fn geo_mean_ratio(num: &[Duration], den: &[Duration]) -> f64 {
    // Speed-ups are ratios; the geometric mean avoids a single huge ratio
    // dominating (the paper reports averages over wide ranges).
    let mut sum_log = 0.0;
    let mut n = 0usize;
    for (a, b) in num.iter().zip(den.iter()) {
        let x = a.as_secs_f64().max(1e-9);
        let y = b.as_secs_f64().max(1e-9);
        sum_log += (x / y).ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (sum_log / n as f64).exp()
}

/// Runs one (dataset, language) block.
pub fn run_block(
    synth: &SynthKb,
    classes: &[&str],
    language: LanguageBias,
    config: &Table4Config,
) -> Table4Block {
    let kb = &synth.kb;
    let spec = TargetSpec {
        count: config.n_sets,
        ..Default::default()
    };
    let sets = sample_target_sets(synth, classes, &spec, config.seed);
    let model = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::PowerLaw);

    // --- AMIE+ ---
    let amie_lang = match language {
        LanguageBias::Standard => AmieLanguage::Standard,
        LanguageBias::Remi => AmieLanguage::Extended,
    };
    let mut amie_row = SystemRow {
        name: "amie+".into(),
        total_time: Duration::ZERO,
        timeouts: 0,
        solutions: 0,
        per_set: Vec::new(),
    };
    if config.include_amie {
        for set in &sets {
            let cfg = AmieConfig {
                language: amie_lang,
                timeout: Some(config.timeout),
                threads: config.threads,
                ..Default::default()
            };
            let t = Instant::now();
            let outcome = mine_re(kb, &set.entities, cfg, Some(&model));
            let dt = t.elapsed();
            amie_row.total_time += dt;
            amie_row.per_set.push(dt);
            if outcome.timed_out {
                amie_row.timeouts += 1;
            }
            if !outcome.rules.is_empty() {
                amie_row.solutions += 1;
            }
        }
    }

    // --- REMI (sequential) and P-REMI ---
    let mut remi_rows = Vec::new();
    for (name, threads) in [("remi", 1usize), ("p-remi", config.threads)] {
        let remi_cfg = RemiConfig {
            enumeration: remi_core::EnumerationConfig {
                language,
                ..Default::default()
            },
            timeout: Some(config.timeout),
            threads,
            ..Default::default()
        };
        let remi = Remi::new(kb, remi_cfg);
        let mut row = SystemRow {
            name: name.into(),
            total_time: Duration::ZERO,
            timeouts: 0,
            solutions: 0,
            per_set: Vec::new(),
        };
        for set in &sets {
            let t = Instant::now();
            let outcome = remi.describe(&set.entities);
            let dt = t.elapsed();
            row.total_time += dt;
            row.per_set.push(dt);
            if outcome.status == SearchStatus::TimedOut {
                row.timeouts += 1;
            }
            if outcome.best.is_some() {
                row.solutions += 1;
            }
        }
        remi_rows.push(row);
    }

    let premi = remi_rows.pop().expect("p-remi row");
    let remi = remi_rows.pop().expect("remi row");
    let speedup_vs_amie = geo_mean_ratio(&amie_row.per_set, &premi.per_set);
    let speedup_vs_remi = geo_mean_ratio(&remi.per_set, &premi.per_set);

    Table4Block {
        dataset: synth.profile.clone(),
        language: match language {
            LanguageBias::Standard => "standard".into(),
            LanguageBias::Remi => "remi".into(),
        },
        rows: vec![amie_row, remi, premi],
        speedup_vs_amie,
        speedup_vs_remi,
    }
}

impl fmt::Display for Table4Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4 [{} / {} language] — totals over {} sets",
            self.dataset,
            self.language,
            self.rows.first().map(|r| r.per_set.len()).unwrap_or(0)
        )?;
        writeln!(
            f,
            "{:<8} {:>14} {:>10} {:>11}",
            "system", "total time", "timeouts", "#solutions"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>14} {:>10} {:>11}",
                r.name,
                format!("{:.2?}", r.total_time),
                r.timeouts,
                r.solutions
            )?;
        }
        writeln!(
            f,
            "speed-up of p-remi: {:.1}x vs amie+, {:.2}x vs remi (geometric mean)",
            self.speedup_vs_amie, self.speedup_vs_remi
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    fn small_config() -> Table4Config {
        Table4Config {
            n_sets: 12,
            timeout: Duration::from_millis(300),
            threads: 4,
            seed: 21,
            include_amie: true,
        }
    }

    #[test]
    fn remi_beats_amie_by_orders_of_magnitude_standard_language() {
        let synth = test_worlds::dbpedia();
        let block = run_block(
            &synth,
            &["Person", "Settlement", "Album", "Film", "Organization"],
            LanguageBias::Standard,
            &small_config(),
        );
        let amie = &block.rows[0];
        let remi = &block.rows[1];
        // The headline: REMI is much faster than the ILP baseline.
        assert!(
            amie.total_time > remi.total_time * 5,
            "amie {:?} vs remi {:?}",
            amie.total_time,
            remi.total_time
        );
        assert!(block.speedup_vs_amie > 1.0);
    }

    #[test]
    fn extended_language_finds_at_least_as_many_solutions() {
        let synth = test_worlds::dbpedia();
        let cfg = small_config();
        let classes = ["Person", "Settlement", "Album", "Film", "Organization"];
        let std_block = run_block(&synth, &classes, LanguageBias::Standard, &cfg);
        let ext_block = run_block(&synth, &classes, LanguageBias::Remi, &cfg);
        let sols = |b: &Table4Block, name: &str| {
            b.rows
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.solutions)
                .unwrap_or(0)
        };
        // §4.2.2: "the extended language bias slightly increases the
        // chances of finding a solution".
        assert!(sols(&ext_block, "remi") >= sols(&std_block, "remi"));
    }

    #[test]
    fn remi_and_premi_agree_on_solution_count() {
        let synth = test_worlds::dbpedia();
        let block = run_block(
            &synth,
            &["Person", "Settlement"],
            LanguageBias::Remi,
            &Table4Config {
                n_sets: 10,
                timeout: Duration::from_secs(5), // generous: no timeouts
                threads: 4,
                seed: 5,
                include_amie: false, // only REMI vs P-REMI is asserted
            },
        );
        let remi = &block.rows[1];
        let premi = &block.rows[2];
        assert_eq!(remi.timeouts, 0);
        assert_eq!(premi.timeouts, 0);
        assert_eq!(remi.solutions, premi.solutions);
    }
}
