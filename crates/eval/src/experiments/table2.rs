//! Table 2 — do users' simplicity rankings agree with `Ĉ`? (§4.1.1)
//!
//! Protocol: entity sets (sizes 1–3) sampled from the 5 % most frequent
//! entities of the evaluation classes. For each set, the common subgraph
//! expressions are ranked by `Ĉ` (Alg. 1 line 2); participants rank five
//! of them — the `Ĉ` top 3, the worst ranked, and a random one — by
//! simplicity. The statistic is precision@k between `Ĉ`'s top-k and the
//! participant's top-k, for k ∈ {1, 2, 3}, reported for `Ĉfr` and `Ĉpr`.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remi_core::complexity::Prominence;
use remi_core::{Remi, RemiConfig};
use remi_synth::{sample_target_sets, SynthKb, TargetSpec};

use crate::metrics::{mean_std, precision_at_k};
use crate::user_model::{UserModelConfig, UserPopulation};

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// `Ĉfr` or `Ĉpr`.
    pub metric: String,
    /// Number of simulated responses aggregated.
    pub responses: usize,
    /// precision@1 (mean, std).
    pub p1: (f64, f64),
    /// precision@2 (mean, std).
    pub p2: (f64, f64),
    /// precision@3 (mean, std).
    pub p3: (f64, f64),
}

/// Full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// One row per `Ĉ` variant.
    pub rows: Vec<Table2Row>,
    /// Sets that had at least five candidate expressions.
    pub usable_sets: usize,
}

/// Paper reference values for the caption.
pub const PAPER_FR: (f64, f64, f64) = (0.38, 0.66, 0.88);
/// Paper reference values for `Ĉpr`.
pub const PAPER_PR: (f64, f64, f64) = (0.43, 0.53, 0.72);

/// Runs the Table 2 experiment.
pub fn run(
    synth: &SynthKb,
    classes: &[&str],
    n_sets: usize,
    responses_per_set: usize,
    seed: u64,
) -> Table2Result {
    let kb = &synth.kb;
    // The paper's sets were chosen so that the entities "have enough
    // subgraph expressions to rank"; we oversample and keep the first
    // `n_sets` sets that produce ≥5 candidates.
    let spec = TargetSpec {
        count: n_sets * 6,
        size_proportions: [0.5, 0.3, 0.2],
        top_fraction: 0.05, // §4.1.1: top of the frequency ranking
    };
    let sets = sample_target_sets(synth, classes, &spec, seed);

    // The perception ground truth is always frequency-based Ĉ plus the
    // type preference; both Ĉ variants are evaluated against it.
    let fr_config = RemiConfig::default();
    let remi_fr = Remi::new(kb, fr_config);
    let pr_config = RemiConfig::default().with_prominence(Prominence::PageRank);
    let remi_pr = Remi::new(kb, pr_config);

    let mut rows = Vec::new();
    let mut usable_sets = 0;
    for (metric_name, remi) in [("Ĉfr", &remi_fr), ("Ĉpr", &remi_pr)] {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let mut pop = UserPopulation::new(
            kb,
            remi_fr.model(),
            UserModelConfig::default(),
            seed ^ 0xca11,
        );
        let mut p1s = Vec::new();
        let mut p2s = Vec::new();
        let mut p3s = Vec::new();
        let mut usable = 0usize;

        for set in &sets {
            if usable >= n_sets {
                break;
            }
            let (queue, _) = remi.ranked_common_expressions(&set.entities);
            if queue.len() < 5 {
                continue;
            }
            usable += 1;
            // Candidates: top 3 by Ĉ, the worst ranked, and a random
            // middle expression (§4.1.1's baseline).
            let worst = queue.len() - 1;
            let mid = if queue.len() > 5 {
                3 + rng.gen_range(0..(queue.len() - 4))
            } else {
                3
            };
            let mut chosen: Vec<usize> = vec![0, 1, 2, worst, mid];
            chosen.dedup();
            let candidates: Vec<_> = chosen.iter().map(|&i| queue[i].expr).collect();
            // Ĉ's ranking of the candidates is just 0,1,2,… because
            // `chosen` preserves queue (cost) order except the final two,
            // which we re-sort by cost.
            let mut reference: Vec<usize> = (0..candidates.len()).collect();
            reference.sort_by(|&a, &b| {
                queue[chosen[a]]
                    .cost
                    .cmp(&queue[chosen[b]].cost)
                    .then(a.cmp(&b))
            });

            for _ in 0..responses_per_set {
                let user_rank = pop.rank_subgraphs(&candidates);
                p1s.push(precision_at_k(&reference, &user_rank, 1));
                p2s.push(precision_at_k(&reference, &user_rank, 2));
                p3s.push(precision_at_k(&reference, &user_rank, 3));
            }
        }
        if metric_name == "Ĉfr" {
            usable_sets = usable;
        }
        rows.push(Table2Row {
            metric: metric_name.to_string(),
            responses: p1s.len(),
            p1: mean_std(&p1s),
            p2: mean_std(&p2s),
            p3: mean_std(&p3s),
        });
    }

    Table2Result { rows, usable_sets }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2 — precision@k of Ĉ rankings vs simulated users ({} usable sets)",
            self.usable_sets
        )?;
        writeln!(
            f,
            "{:<6} {:>10} {:>12} {:>12} {:>12}   (paper fr: {:.2}/{:.2}/{:.2}, pr: {:.2}/{:.2}/{:.2})",
            "metric", "#resp", "p@1", "p@2", "p@3",
            PAPER_FR.0, PAPER_FR.1, PAPER_FR.2, PAPER_PR.0, PAPER_PR.1, PAPER_PR.2
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>10} {:>12} {:>12} {:>12}",
                r.metric,
                r.responses,
                super::pm(r.p1.0, r.p1.1),
                super::pm(r.p2.0, r.p2.1),
                super::pm(r.p3.0, r.p3.1),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn runs_and_shows_positive_correlation() {
        let synth = test_worlds::dbpedia();
        let result = run(
            &synth,
            &["Person", "Settlement", "Album", "Film", "Organization"],
            24,
            2,
            5,
        );
        assert_eq!(result.rows.len(), 2);
        assert!(result.usable_sets > 0, "some sets must have ≥5 expressions");
        for row in &result.rows {
            assert!(row.responses > 0);
            // Positive correlation: p@3 should be well above chance (3/5
            // of the candidates are the reference top-3, so chance for a
            // random ranker is 0.6; an aligned ranker should beat it).
            assert!(
                row.p3.0 > 0.6,
                "{}: p@3 = {} not above chance",
                row.metric,
                row.p3.0
            );
            // Values are probabilities.
            for (m, _) in [row.p1, row.p2, row.p3] {
                assert!((0.0..=1.0).contains(&m));
            }
        }
        // Note: the paper's "p@1 is the weakest statistic" signature
        // depends on DBpedia's huge class vocabulary making type atoms
        // rank 2nd/3rd under Ĉ; our synthetic class vocabulary is small,
        // so users and Ĉ agree on type atoms more often (EXPERIMENTS.md
        // discusses this). We only require the rankings to be probability
        // valued and positively correlated, asserted above.
    }

    #[test]
    fn deterministic_under_seed() {
        let synth = test_worlds::dbpedia();
        let a = run(&synth, &["Person", "Settlement"], 10, 2, 9);
        let b = run(&synth, &["Person", "Settlement"], 10, 2, 9);
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}
