//! Table 3 — REMI versus entity summarisers on the expert gold standard
//! (§4.1.4).
//!
//! Protocol: prominent entities with per-expert reference summaries of 5
//! and 10 predicate–object pairs. REMI runs with the state-of-the-art
//! language bias, `rdf:type` and inverse predicates excluded. Quality is
//! the average overlap with the expert summaries, at predicate–object
//! (PO) and object (O) level, averaged over entities.

use std::fmt;

use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_essum::{faces_summary, linksum_summary, quality, remi_summary, Summary};
use remi_kb::pagerank::{pagerank, PageRankConfig};
use remi_synth::gold::{build_gold_standard, GoldStandard};
use remi_synth::SynthKb;

use crate::metrics::mean_std;

/// One summariser's row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Method name.
    pub method: String,
    /// top-5 PO quality (mean, std).
    pub top5_po: (f64, f64),
    /// top-5 O quality (mean, std).
    pub top5_o: (f64, f64),
    /// top-10 PO quality (mean, std).
    pub top10_po: (f64, f64),
    /// top-10 O quality (mean, std).
    pub top10_o: (f64, f64),
}

/// Full Table 3 result.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// One row per method (FACES, LinkSUM, REMI Ĉfr, REMI Ĉpr).
    pub rows: Vec<Table3Row>,
    /// Number of benchmark entities.
    pub entities: usize,
}

/// Paper reference rows (top-5 PO, top-5 O, top-10 PO, top-10 O).
pub const PAPER: [(&str, f64, f64, f64, f64); 4] = [
    ("FACES", 0.93, 1.66, 2.92, 4.33),
    ("LinkSUM", 1.20, 1.89, 3.20, 4.82),
    ("REMI Ĉfr", 0.68, 1.31, 2.26, 3.70),
    ("REMI Ĉpr", 0.73, 1.21, 2.24, 3.75),
];

fn evaluate_method(
    gold: &GoldStandard,
    mut summarise: impl FnMut(remi_kb::NodeId, usize) -> Summary,
) -> Table3Row {
    let mut t5po = Vec::new();
    let mut t5o = Vec::new();
    let mut t10po = Vec::new();
    let mut t10o = Vec::new();
    for entry in &gold.entries {
        let s5 = summarise(entry.entity, 5);
        let s10 = summarise(entry.entity, 10);
        t5po.push(quality::quality(&s5, &entry.top5, true));
        t5o.push(quality::quality(&s5, &entry.top5, false));
        t10po.push(quality::quality(&s10, &entry.top10, true));
        t10o.push(quality::quality(&s10, &entry.top10, false));
    }
    Table3Row {
        method: String::new(),
        top5_po: mean_std(&t5po),
        top5_o: mean_std(&t5o),
        top10_po: mean_std(&t10po),
        top10_o: mean_std(&t10o),
    }
}

/// Runs the Table 3 experiment over the `n_entities` most prominent
/// entities of `classes`.
pub fn run(synth: &SynthKb, classes: &[&str], n_entities: usize, seed: u64) -> Table3Result {
    let kb = &synth.kb;
    let gold = build_gold_standard(synth, classes, n_entities, 7, seed);
    let pr = pagerank(kb, PageRankConfig::default());
    let model_fr = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
    let model_pr = CostModel::with_pagerank(kb, EntityCodeMode::PowerLaw, &pr);

    let mut rows = Vec::new();
    let mut faces = evaluate_method(&gold, |e, k| faces_summary(kb, e, k));
    faces.method = "FACES".into();
    rows.push(faces);
    let mut linksum = evaluate_method(&gold, |e, k| linksum_summary(kb, &pr, e, k));
    linksum.method = "LinkSUM".into();
    rows.push(linksum);
    let mut rfr = evaluate_method(&gold, |e, k| remi_summary(kb, &model_fr, e, k));
    rfr.method = "REMI Ĉfr".into();
    rows.push(rfr);
    let mut rpr = evaluate_method(&gold, |e, k| remi_summary(kb, &model_pr, e, k));
    rpr.method = "REMI Ĉpr".into();
    rows.push(rpr);

    Table3Result {
        rows,
        entities: gold.entries.len(),
    }
}

impl fmt::Display for Table3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3 — summary quality vs gold standard ({} entities; paper values in parentheses)",
            self.entities
        )?;
        writeln!(
            f,
            "{:<10} {:>18} {:>18} {:>18} {:>18}",
            "method", "top5 PO", "top5 O", "top10 PO", "top10 O"
        )?;
        for (row, paper) in self.rows.iter().zip(PAPER.iter()) {
            writeln!(
                f,
                "{:<10} {:>11} ({:.2}) {:>11} ({:.2}) {:>11} ({:.2}) {:>11} ({:.2})",
                row.method,
                super::pm(row.top5_po.0, row.top5_po.1),
                paper.1,
                super::pm(row.top5_o.0, row.top5_o.1),
                paper.2,
                super::pm(row.top10_po.0, row.top10_po.1),
                paper.3,
                super::pm(row.top10_o.0, row.top10_o.1),
                paper.4,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn produces_all_rows_with_sane_values() {
        let synth = test_worlds::dbpedia();
        let result = run(
            &synth,
            &["Person", "Settlement", "Film", "Organization"],
            16,
            3,
        );
        assert_eq!(result.rows.len(), 4);
        assert_eq!(result.entities, 16);
        for row in &result.rows {
            // Overlaps are bounded by the summary sizes.
            assert!(row.top5_po.0 <= 5.0);
            assert!(row.top10_po.0 <= 10.0);
            assert!(row.top5_po.0 >= 0.0);
            // O-level overlap is at least PO-level overlap on average…
            // not strictly guaranteed per entity, but top10 ≥ top5 is.
            assert!(row.top10_po.0 >= row.top5_po.0 - 1e-9);
        }
    }

    #[test]
    fn summarisers_beat_nothing_and_experts_agree_with_someone() {
        let synth = test_worlds::dbpedia();
        let result = run(&synth, &["Person", "Settlement"], 12, 5);
        // At least one method achieves non-trivial overlap at top-10.
        assert!(result.rows.iter().any(|r| r.top10_o.0 > 0.5), "{result}");
    }

    #[test]
    fn ordering_matches_paper_direction() {
        // The dedicated summarisers optimise the gold standard's own
        // criteria, so they should not lose to REMI at top-10 PO (the
        // paper's headline observation).
        let synth = test_worlds::dbpedia();
        let result = run(
            &synth,
            &["Person", "Settlement", "Film", "Organization"],
            24,
            7,
        );
        let get = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.method == name)
                .expect("row exists")
                .top10_po
                .0
        };
        let best_summariser = get("FACES").max(get("LinkSUM"));
        let best_remi = get("REMI Ĉfr").max(get("REMI Ĉpr"));
        assert!(
            best_summariser >= best_remi * 0.8,
            "summarisers should be competitive: {result}"
        );
    }
}
