//! §4.1.2 — ranking REMI's answer against alternative REs.
//!
//! Protocol: sets of prominent entities with at least two reasonably
//! different REs. Participants rank REMI's solution together with other
//! REs encountered during the search-space traversal; MAP is computed
//! with REMI's solution as the only relevant answer (the paper reports
//! 0.64 ± 0.17). A follow-up question asks participants to choose between
//! the `Ĉfr` and `Ĉpr` solutions when they differ (paper: 59 % prefer
//! `Ĉfr`).

use std::fmt;

use remi_core::complexity::Prominence;
use remi_core::expr::Expression;
use remi_core::{Remi, RemiConfig};
use remi_synth::{sample_target_sets, SynthKb, TargetSpec};

use crate::metrics::{average_precision_single, mean_std};
use crate::user_model::{UserModelConfig, UserPopulation};

/// Result of the §4.1.2 study.
#[derive(Debug, Clone)]
pub struct MapStudyResult {
    /// Sets that produced ≥ 2 distinct REs.
    pub usable_sets: usize,
    /// Responses collected.
    pub responses: usize,
    /// MAP (mean, std) with REMI's answer as the only relevant item.
    pub map: (f64, f64),
    /// Fraction of users preferring the `Ĉfr` solution where the two
    /// variants disagree (None when they never disagreed).
    pub fr_preference: Option<f64>,
}

/// Paper reference values.
pub const PAPER_MAP: (f64, f64) = (0.64, 0.17);
/// Paper: 59 % of users preferred `Ĉfr`'s solution.
pub const PAPER_FR_PREFERENCE: f64 = 0.59;

/// Collects up to `k` distinct REs for a target set — REMI's answer plus
/// the "other REs encountered during search space traversal" of the
/// paper's protocol. Thin wrapper over [`remi_core::describe_top_k`].
pub fn alternative_res(remi: &Remi<'_>, targets: &[remi_kb::NodeId], k: usize) -> Vec<Expression> {
    remi_core::describe_top_k(remi, targets, k)
        .into_iter()
        .map(|r| r.expr)
        .collect()
}

/// Runs the study.
pub fn run(
    synth: &SynthKb,
    classes: &[&str],
    n_sets: usize,
    responses_per_set: usize,
    seed: u64,
) -> MapStudyResult {
    let kb = &synth.kb;
    let spec = TargetSpec {
        count: n_sets,
        size_proportions: [0.4, 0.4, 0.2],
        top_fraction: 0.05,
    };
    let sets = sample_target_sets(synth, classes, &spec, seed);

    let remi_fr = Remi::new(kb, RemiConfig::default());
    let remi_pr = Remi::new(
        kb,
        RemiConfig::default().with_prominence(Prominence::PageRank),
    );
    let mut pop = UserPopulation::new(
        kb,
        remi_fr.model(),
        UserModelConfig::default(),
        seed ^ 0xfeed,
    );

    let mut aps = Vec::new();
    let mut usable = 0usize;
    let mut fr_votes = 0usize;
    let mut pref_total = 0usize;

    for set in &sets {
        let candidates = alternative_res(&remi_fr, &set.entities, 5);
        if candidates.len() < 2 {
            continue;
        }
        usable += 1;
        // REMI's reported solution is the cheapest — index 0.
        for _ in 0..responses_per_set {
            let ranking = pop.rank_expressions(&candidates);
            aps.push(average_precision_single(&ranking, 0));
        }

        // Ĉfr vs Ĉpr head-to-head where the answers differ.
        let fr_answer = remi_fr.describe(&set.entities);
        let pr_answer = remi_pr.describe(&set.entities);
        if let (Some(fr_e), Some(pr_e)) = (fr_answer.expression(), pr_answer.expression()) {
            if fr_e != pr_e {
                for _ in 0..responses_per_set {
                    pref_total += 1;
                    let fr_score = pop.perceived_expression(fr_e);
                    let pr_score = pop.perceived_expression(pr_e);
                    if fr_score <= pr_score {
                        fr_votes += 1;
                    }
                }
            }
        }
    }

    MapStudyResult {
        usable_sets: usable,
        responses: aps.len(),
        map: mean_std(&aps),
        fr_preference: if pref_total > 0 {
            Some(fr_votes as f64 / pref_total as f64)
        } else {
            None
        },
    }
}

impl fmt::Display for MapStudyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4.1.2 RE ranking study — {} usable sets, {} responses",
            self.usable_sets, self.responses
        )?;
        writeln!(
            f,
            "  MAP: {}   (paper: {:.2}±{:.2})",
            super::pm(self.map.0, self.map.1),
            PAPER_MAP.0,
            PAPER_MAP.1
        )?;
        match self.fr_preference {
            Some(p) => writeln!(
                f,
                "  Ĉfr preferred in {:.0}% of head-to-heads (paper: {:.0}%)",
                p * 100.0,
                PAPER_FR_PREFERENCE * 100.0
            ),
            None => writeln!(f, "  Ĉfr vs Ĉpr: variants never disagreed on these sets"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn map_reflects_partial_agreement() {
        let synth = test_worlds::dbpedia();
        let result = run(
            &synth,
            &["Person", "Settlement", "Film", "Organization"],
            20,
            3,
            7,
        );
        assert!(result.usable_sets > 0, "need sets with ≥2 REs");
        assert!(result.responses > 0);
        // MAP of 1/|candidates| is the floor (solution ranked last among
        // ~5); noisy-but-aligned raters land well above it and below 1.
        assert!(result.map.0 > 0.3, "MAP = {}", result.map.0);
        assert!(result.map.0 <= 1.0);
    }

    #[test]
    fn alternatives_start_with_the_reported_solution() {
        let synth = test_worlds::dbpedia();
        let remi = Remi::new(&synth.kb, RemiConfig::default());
        let sets = sample_target_sets(
            &synth,
            &["Settlement"],
            &TargetSpec {
                count: 10,
                size_proportions: [1.0, 0.0, 0.0],
                top_fraction: 0.05,
            },
            2,
        );
        for set in &sets {
            let outcome = remi.describe(&set.entities);
            let alts = alternative_res(&remi, &set.entities, 5);
            if let Some((best, cost)) = outcome.best {
                assert!(!alts.is_empty());
                // The cheapest alternative has the same cost as REMI's
                // solution (possibly a tie between distinct expressions).
                let alt_cost = remi.model().expression_cost(&alts[0]);
                assert!(
                    alt_cost <= cost,
                    "alts[0] = {:?} vs best = {:?}",
                    alt_cost,
                    cost
                );
                let _ = best;
            }
        }
    }
}
