//! A1 — ablations of the §3.5 design choices, as an experiment driver
//! (the Criterion variants live in `remi-bench`; this driver prints a
//! compact table through `remi-tables --table ablation`).
//!
//! Knobs ablated:
//! * the §3.5.2 prominent-object pruning (on/off) — queue size and time;
//! * the LRU binding cache (on/off) — RE-test cache hit rate and time;
//! * the incumbent root cutoff (on/off) — roots explored;
//! * P-REMI threads (1/2/8) — wall time.

use std::fmt;
use std::time::{Duration, Instant};

use remi_core::{EnumerationConfig, Remi, RemiConfig};
use remi_synth::{sample_target_sets, SynthKb, TargetSpec};

/// One ablation variant's aggregate measurements.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Total mining wall time over all sets.
    pub total_time: Duration,
    /// Mean queue size.
    pub mean_queue: f64,
    /// Sets solved.
    pub solutions: usize,
    /// Total cache hits across sets.
    pub cache_hits: u64,
    /// Total RE tests across sets.
    pub re_tests: u64,
}

/// Full ablation result.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// One row per variant.
    pub rows: Vec<AblationRow>,
    /// Number of target sets.
    pub sets: usize,
}

fn variant(name: &str, cfg: RemiConfig) -> (String, RemiConfig) {
    (name.to_string(), cfg)
}

/// Runs the ablation grid over `n_sets` target sets.
pub fn run(synth: &SynthKb, classes: &[&str], n_sets: usize, seed: u64) -> AblationResult {
    let kb = &synth.kb;
    let sets = sample_target_sets(
        synth,
        classes,
        &TargetSpec {
            count: n_sets,
            ..Default::default()
        },
        seed,
    );

    // Every variant gets a per-set timeout: the `no_root_cutoff` variant
    // deliberately disables the optimisation that keeps the root loop
    // sub-quadratic, and unbounded it can take minutes on large queues.
    let base = || RemiConfig::default().with_timeout(Duration::from_millis(500));
    let variants: Vec<(String, RemiConfig)> = vec![
        variant("baseline", base()),
        variant(
            "no_prominent_pruning",
            RemiConfig {
                enumeration: EnumerationConfig {
                    prominent_cutoff: 0.0,
                    ..Default::default()
                },
                ..base()
            },
        ),
        variant(
            "cache_off",
            RemiConfig {
                cache_capacity: 1,
                ..base()
            },
        ),
        variant(
            "no_root_cutoff",
            RemiConfig {
                incumbent_root_cutoff: false,
                ..base()
            },
        ),
        variant("threads_2", base().with_threads(2)),
        variant("threads_8", base().with_threads(8)),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let remi = Remi::new(kb, cfg);
        let mut total_time = Duration::ZERO;
        let mut queue_sum = 0usize;
        let mut solutions = 0usize;
        let mut cache_hits = 0u64;
        let mut re_tests = 0u64;
        for set in &sets {
            let t = Instant::now();
            let outcome = remi.describe(&set.entities);
            total_time += t.elapsed();
            queue_sum += outcome.stats.queue_size;
            cache_hits += outcome.stats.cache_hits;
            re_tests += outcome.stats.re_tests;
            if outcome.best.is_some() {
                solutions += 1;
            }
        }
        rows.push(AblationRow {
            name,
            total_time,
            mean_queue: queue_sum as f64 / sets.len().max(1) as f64,
            solutions,
            cache_hits,
            re_tests,
        });
    }

    AblationResult {
        rows,
        sets: sets.len(),
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "A1 — §3.5 design ablations over {} sets", self.sets)?;
        writeln!(
            f,
            "{:<22} {:>12} {:>11} {:>6} {:>12} {:>10}",
            "variant", "total time", "mean queue", "#sol", "cache hits", "RE tests"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<22} {:>12} {:>11.1} {:>6} {:>12} {:>10}",
                r.name,
                format!("{:.2?}", r.total_time),
                r.mean_queue,
                r.solutions,
                r.cache_hits,
                r.re_tests
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn ablations_report_plausible_solution_counts() {
        let synth = test_worlds::dbpedia();
        let result = run(&synth, &["Person", "Settlement"], 15, 3);
        assert_eq!(result.rows.len(), 6);
        // Variants change speed, and under the per-set timeout a slower
        // variant may fail to finish some sets (that is the point of the
        // ablation — e.g. disabling the prominent-object pruning blows up
        // the queue ~20×). Solution counts must stay in a sane band and
        // never *exceed* what the search space admits by much.
        let baseline = result.rows[0].solutions as i64;
        for row in &result.rows {
            let d = row.solutions as i64 - baseline;
            assert!(
                (-baseline..=3).contains(&d),
                "variant {} solved {} vs baseline {}",
                row.name,
                row.solutions,
                baseline
            );
        }
        // The cheap variants (threads only change scheduling) agree with
        // the baseline exactly when nothing times out.
        let t8 = result.rows.iter().find(|r| r.name == "threads_8").unwrap();
        assert!((t8.solutions as i64 - baseline).abs() <= 2, "{t8:?}");
    }

    #[test]
    fn pruning_shrinks_the_queue() {
        let synth = test_worlds::dbpedia();
        let result = run(&synth, &["Person", "Settlement"], 15, 5);
        let get = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.name == name)
                .expect("row exists")
                .mean_queue
        };
        assert!(
            get("baseline") <= get("no_prominent_pruning"),
            "pruning must not grow the queue"
        );
    }
}
