//! Experiment drivers, one per table/figure of the paper.
//!
//! Every driver takes a seeded synthetic KB and returns a typed result
//! struct whose `Display` prints the measured numbers next to the paper's
//! reference values. EXPERIMENTS.md is generated from these.

pub mod ablation;
pub mod fit;
pub mod map_study;
pub mod perceived;
pub mod space;
pub mod table2;
pub mod table3;
pub mod table4;

use remi_synth::{generate, SynthKb};

/// The default experiment scale for the DBpedia-like profile (keeps the
/// full table run in CI-friendly time; raise for heavier runs).
pub const DEFAULT_DBPEDIA_SCALE: f64 = 4.0;
/// The default experiment scale for the Wikidata-like profile.
pub const DEFAULT_WIKIDATA_SCALE: f64 = 4.0;

/// Builds the DBpedia-like evaluation KB.
pub fn dbpedia_kb(scale: f64, seed: u64) -> SynthKb {
    generate(&remi_synth::dbpedia_like(), scale, seed)
}

/// Builds the Wikidata-like evaluation KB.
pub fn wikidata_kb(scale: f64, seed: u64) -> SynthKb {
    generate(&remi_synth::wikidata_like(), scale, seed)
}

/// Formats a `mean ± std` cell.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2}±{std:.2}")
}
