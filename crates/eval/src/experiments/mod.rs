//! Experiment drivers, one per table/figure of the paper.
//!
//! Every driver takes a seeded synthetic KB and returns a typed result
//! struct whose `Display` prints the measured numbers next to the paper's
//! reference values. EXPERIMENTS.md is generated from these.

pub mod ablation;
pub mod fit;
pub mod map_study;
pub mod perceived;
pub mod space;
pub mod table2;
pub mod table3;
pub mod table4;

use std::sync::Arc;

use remi_synth::SynthKb;

/// The default experiment scale for the DBpedia-like profile (keeps the
/// full table run in CI-friendly time; raise for heavier runs).
pub const DEFAULT_DBPEDIA_SCALE: f64 = 4.0;
/// The default experiment scale for the Wikidata-like profile.
pub const DEFAULT_WIKIDATA_SCALE: f64 = 4.0;

/// The DBpedia-like evaluation KB, built at most once per process and
/// (seed, scale) via the shared [`remi_synth::fixtures`] cache — the unit
/// tests of several drivers deliberately reuse one world.
pub fn dbpedia_kb(scale: f64, seed: u64) -> Arc<SynthKb> {
    remi_synth::fixtures::dbpedia(scale, seed)
}

/// The Wikidata-like evaluation KB (memoised like [`dbpedia_kb`]).
pub fn wikidata_kb(scale: f64, seed: u64) -> Arc<SynthKb> {
    remi_synth::fixtures::wikidata(scale, seed)
}

/// Formats a `mean ± std` cell.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2}±{std:.2}")
}

/// Shared unit-test worlds. Every driver's tests draw from these two
/// memoised fixtures (one per profile) so the debug suite builds two KBs
/// per process instead of one per test module, and at a deliberately
/// reduced scale — full-size runs belong to `remi-tables`, not `cargo
/// test`.
#[cfg(test)]
pub(crate) mod test_worlds {
    use super::*;

    /// The shared DBpedia-like test world.
    pub fn dbpedia() -> Arc<SynthKb> {
        dbpedia_kb(0.75, 17)
    }

    /// The shared Wikidata-like test world.
    pub fn wikidata() -> Arc<SynthKb> {
        wikidata_kb(0.5, 2)
    }
}
