//! §3.2 — search-space growth under language-bias extensions.
//!
//! The paper motivates the "≤ 3 atoms, ≤ 1 extra variable" bias with two
//! measurements on DBpedia: a second existential variable inflates the
//! number of subgraph expressions by more than 270 %, whereas going from
//! 2 to 3 atoms (one variable) adds about 40 %.

use std::fmt;

use remi_core::enumerate::{space_growth_counts, EnumContext, SpaceCounts};
use remi_core::EnumerationConfig;
use remi_synth::{sample_target_sets, SynthKb, TargetSpec};

/// Aggregated growth percentages.
#[derive(Debug, Clone)]
pub struct SpaceResult {
    /// Entities measured.
    pub entities: usize,
    /// Mean growth (%) from ≤2 atoms to ≤3 atoms at one extra variable.
    pub growth_atoms: f64,
    /// Mean growth (%) from one to two extra variables at ≤3 atoms.
    pub growth_vars: f64,
    /// Average counts per tier.
    pub avg: SpaceCounts,
}

/// Paper reference: (+40 % for 2→3 atoms, +270 % for the 2nd variable).
pub const PAPER: (f64, f64) = (40.0, 270.0);

/// Measures growth over `n` prominent entities of the given classes.
pub fn run(synth: &SynthKb, classes: &[&str], n: usize, cap: usize, seed: u64) -> SpaceResult {
    let kb = &synth.kb;
    let config = EnumerationConfig::default();
    let ctx = EnumContext::new(kb, &config);
    let spec = TargetSpec {
        count: n,
        size_proportions: [1.0, 0.0, 0.0],
        top_fraction: 0.05,
    };
    let sets = sample_target_sets(synth, classes, &spec, seed);

    let mut sums = SpaceCounts::default();
    let mut growth_atoms = Vec::new();
    let mut growth_vars = Vec::new();
    let mut measured = 0usize;
    for set in &sets {
        let t = set.entities[0];
        let c = space_growth_counts(kb, t, &config, &ctx, cap);
        if c.one_var_two_atoms == 0 {
            continue;
        }
        measured += 1;
        sums.one_var_two_atoms += c.one_var_two_atoms;
        sums.one_var_three_atoms += c.one_var_three_atoms;
        sums.two_var_three_atoms += c.two_var_three_atoms;
        growth_atoms.push(
            100.0 * (c.one_var_three_atoms as f64 - c.one_var_two_atoms as f64)
                / c.one_var_two_atoms as f64,
        );
        if c.one_var_three_atoms > 0 {
            growth_vars.push(
                100.0 * (c.two_var_three_atoms as f64 - c.one_var_three_atoms as f64)
                    / c.one_var_three_atoms as f64,
            );
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    SpaceResult {
        entities: measured,
        growth_atoms: avg(&growth_atoms),
        growth_vars: avg(&growth_vars),
        avg: SpaceCounts {
            one_var_two_atoms: sums.one_var_two_atoms / measured.max(1),
            one_var_three_atoms: sums.one_var_three_atoms / measured.max(1),
            two_var_three_atoms: sums.two_var_three_atoms / measured.max(1),
        },
    }
}

impl fmt::Display for SpaceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§3.2 search-space growth over {} entities (avg counts: ≤2 atoms {}, ≤3 atoms {}, +2nd var {})",
            self.entities,
            self.avg.one_var_two_atoms,
            self.avg.one_var_three_atoms,
            self.avg.two_var_three_atoms
        )?;
        writeln!(
            f,
            "  2→3 atoms (1 var): +{:.0}%   (paper: +{:.0}%)",
            self.growth_atoms, PAPER.0
        )?;
        writeln!(
            f,
            "  2nd variable (3 atoms): +{:.0}%   (paper: >+{:.0}%)",
            self.growth_vars, PAPER.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn second_variable_explodes_the_space() {
        let synth = test_worlds::dbpedia();
        let result = run(
            &synth,
            &["Person", "Settlement", "Organization"],
            15,
            500_000,
            3,
        );
        assert!(result.entities > 0);
        // Both growths are positive, and the variable growth dominates the
        // atom growth — the paper's qualitative claim.
        assert!(result.growth_vars > 0.0);
        assert!(
            result.growth_vars > result.growth_atoms,
            "vars +{:.0}% vs atoms +{:.0}%",
            result.growth_vars,
            result.growth_atoms
        );
        // And the explosion is of the right order (paper: >270 %).
        assert!(
            result.growth_vars > 100.0,
            "expected an explosion, got +{:.0}%",
            result.growth_vars
        );
    }
}
