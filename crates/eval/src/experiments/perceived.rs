//! §4.1.3 — perceived interestingness of REMI's descriptions.
//!
//! Protocol: REs mined for the most prominent entities of the Wikidata
//! evaluation classes are graded 1–5 by participants. The paper reports
//! an average of 2.65 ± 0.71 over 86 answers, with 11 of 35 descriptions
//! scoring at least 3 — i.e. mediocre-to-fair perceived quality, dragged
//! down by technically-correct-but-uninformative descriptions.

use std::fmt;

use remi_core::{Remi, RemiConfig};
use remi_synth::SynthKb;

use crate::metrics::mean_std;
use crate::user_model::{UserModelConfig, UserPopulation};

/// Result of the grading study.
#[derive(Debug, Clone)]
pub struct PerceivedResult {
    /// Number of REs graded.
    pub descriptions: usize,
    /// Total answers collected.
    pub answers: usize,
    /// Grade (mean, std) on the 1–5 scale.
    pub grade: (f64, f64),
    /// Descriptions whose average grade is at least 3.
    pub graded_at_least_3: usize,
}

/// Paper reference: average grade and spread.
pub const PAPER_GRADE: (f64, f64) = (2.65, 0.71);
/// Paper: 11 of 35 descriptions scored ≥ 3.
pub const PAPER_AT_LEAST_3: (usize, usize) = (11, 35);

/// Runs the grading study over the top entities of `classes`.
pub fn run(
    synth: &SynthKb,
    classes: &[&str],
    n_descriptions: usize,
    graders_per_description: usize,
    seed: u64,
) -> PerceivedResult {
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());
    let mut pop = UserPopulation::new(kb, remi.model(), UserModelConfig::default(), seed);

    // Entities: round-robin over the top of each class (§4.1.3 takes the
    // top 7 of each class's frequency ranking).
    let mut entities = Vec::new();
    let mut depth = 0usize;
    while entities.len() < n_descriptions * 2 {
        let mut advanced = false;
        for &class in classes {
            let members = synth.members(class);
            if depth < members.len() {
                entities.push(members[depth]);
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
        depth += 1;
    }

    let mut grades_all = Vec::new();
    let mut per_description = Vec::new();
    for &e in &entities {
        if per_description.len() >= n_descriptions {
            break;
        }
        let outcome = remi.describe(&[e]);
        let Some(expr) = outcome.expression() else {
            continue;
        };
        let mut grades = Vec::with_capacity(graders_per_description);
        for _ in 0..graders_per_description {
            grades.push(pop.grade_interestingness(expr));
        }
        grades_all.extend_from_slice(&grades);
        let avg = grades.iter().sum::<f64>() / grades.len() as f64;
        per_description.push(avg);
    }

    PerceivedResult {
        descriptions: per_description.len(),
        answers: grades_all.len(),
        grade: mean_std(&grades_all),
        graded_at_least_3: per_description.iter().filter(|&&g| g >= 3.0).count(),
    }
}

impl fmt::Display for PerceivedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4.1.3 perceived interestingness — {} descriptions, {} answers",
            self.descriptions, self.answers
        )?;
        writeln!(
            f,
            "  grade: {}   (paper: {:.2}±{:.2})",
            super::pm(self.grade.0, self.grade.1),
            PAPER_GRADE.0,
            PAPER_GRADE.1
        )?;
        writeln!(
            f,
            "  ≥3 average: {}/{}   (paper: {}/{})",
            self.graded_at_least_3, self.descriptions, PAPER_AT_LEAST_3.0, PAPER_AT_LEAST_3.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn grades_land_mid_scale() {
        let synth = test_worlds::wikidata();
        let result = run(&synth, &["Company", "City", "Film", "Human"], 20, 3, 9);
        assert!(result.descriptions > 0);
        assert!(result.answers >= result.descriptions);
        // The 1–5 scale: the mean must be interior (not all 1s or 5s).
        assert!(
            result.grade.0 > 1.2 && result.grade.0 < 4.8,
            "grade = {:?}",
            result.grade
        );
        assert!(result.graded_at_least_3 <= result.descriptions);
    }

    #[test]
    fn deterministic() {
        let synth = test_worlds::wikidata();
        let a = run(&synth, &["City", "Human"], 10, 2, 4);
        let b = run(&synth, &["City", "Human"], 10, 2, 4);
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}
