//! Eq. 1 — quality of the power-law compression of conditional rankings
//! (§3.5.3).
//!
//! The paper fits, per predicate, `log2(rank) ≈ −α·log2(freq) + β` and
//! reports average R² of 0.85 on DBpedia (`fr`), 0.88 on Wikidata (`fr`),
//! and 0.91 for the page-rank variant on DBpedia.

use std::fmt;

use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_synth::SynthKb;

/// R² figures for one KB.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Dataset label.
    pub dataset: String,
    /// Average R² of the `fr` fits (predicates with ≥ `min_points`).
    pub r2_fr: f64,
    /// Average R² of the `pr` fits.
    pub r2_pr: f64,
    /// Number of predicates that met the point threshold (fr).
    pub fitted_preds: usize,
}

/// Paper reference: (DBpedia fr, Wikidata fr, DBpedia pr).
pub const PAPER: (f64, f64, f64) = (0.85, 0.88, 0.91);

/// Runs the fit experiment on one synthetic KB.
pub fn run(synth: &SynthKb, min_points: usize) -> FitResult {
    let kb = &synth.kb;
    let fr = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
    let pr = CostModel::new(kb, Prominence::PageRank, EntityCodeMode::PowerLaw);
    let fitted_preds = fr.fits().iter().filter(|f| f.n >= min_points).count();
    FitResult {
        dataset: synth.profile.clone(),
        r2_fr: fr.average_r2(min_points),
        r2_pr: pr.average_r2(min_points),
        fitted_preds,
    }
}

impl fmt::Display for FitResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Eq. 1 power-law fit [{}] — avg R² over {} predicates",
            self.dataset, self.fitted_preds
        )?;
        writeln!(
            f,
            "  fr: {:.3}   pr: {:.3}   (paper: DBpedia-fr {:.2}, Wikidata-fr {:.2}, DBpedia-pr {:.2})",
            self.r2_fr, self.r2_pr, PAPER.0, PAPER.1, PAPER.2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_worlds;

    #[test]
    fn r2_is_high_on_zipf_generated_data() {
        let synth = test_worlds::dbpedia();
        let fit = run(&synth, 10);
        assert!(fit.fitted_preds > 5);
        // The generators draw objects from Zipf distributions, so the
        // log-log regression must fit well — the paper's 0.85–0.91 band.
        assert!(fit.r2_fr > 0.7, "fr R² = {}", fit.r2_fr);
        assert!(fit.r2_pr > 0.6, "pr R² = {}", fit.r2_pr);
        assert!(fit.r2_fr <= 1.0 && fit.r2_pr <= 1.0);
    }

    #[test]
    fn works_on_both_profiles() {
        let db = run(&test_worlds::dbpedia(), 10);
        let wd = run(&test_worlds::wikidata(), 10);
        assert_eq!(db.dataset, "dbpedia");
        assert_eq!(wd.dataset, "wikidata");
        assert!(wd.r2_fr > 0.7, "wikidata fr R² = {}", wd.r2_fr);
    }
}
