//! `remi-pool` — the reusable work-stealing executor shared by every
//! parallel path in the workspace (P-REMI, queue scoring, PageRank).
//!
//! The seed implementation spawned OS threads per call with
//! `std::thread::scope`; on small KBs the spawn cost dominates the work.
//! This crate keeps one set of worker threads alive for the whole process
//! and hands them *scoped* tasks:
//!
//! * [`ThreadPool`] — fixed worker set, one sharded job queue per worker,
//!   idle workers steal from their neighbours.
//! * [`ThreadPool::scope`] — structured concurrency: tasks may borrow from
//!   the caller's stack; the scope blocks until every task finished.
//! * [`Executor`] / [`ThreadPool::broadcast`] — the executor abstraction
//!   the search code is written against. [`SpawnExecutor`] is the
//!   spawn-per-call baseline, kept for benchmarks and differential tests.
//! * [`CancelToken`] / [`FloorToken`] — cooperative cancellation.
//!   `FloorToken` encodes P-REMI's §3.4 rule 2: a monotonically
//!   decreasing index floor; workers on indices at or beyond the floor
//!   stop.
//! * [`global`] — the process-wide pool, sized by `REMI_THREADS` (or the
//!   machine's available parallelism).
//!
//! # Safety
//!
//! Queued jobs must be `'static`, but scoped tasks borrow from the
//! caller's stack. [`Scope::spawn`] erases the task lifetime with one
//! `transmute` — sound because [`ThreadPool::scope`] never returns (not
//! even by unwinding) before every spawned task has run to completion, so
//! every erased borrow strictly outlives its use. This is the standard
//! scoped-pool technique of crossbeam and rayon, confined to one function.

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

use remi_obs::{
    Channel, Clock, Counter, EventId, EventSpec, FieldKind, FieldSpec, Gauge, Recorder, Severity,
};

/// Scheduling observability: relaxed counters bumped at job boundaries,
/// cheap enough to stay on permanently. Each field is an `Arc` so an
/// embedding layer (the HTTP server) can register the very same
/// instruments in its `remi_obs::Registry` and render them at
/// `/v1/metrics` without the pool knowing a registry exists.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    /// Jobs a worker popped from a *foreign* shard.
    pub steals: Arc<Counter>,
    /// Nested-scope claim stubs executed by a worker other than the
    /// spawner (the stub was stolen off the queue before the spawner's
    /// help-drain reached it).
    pub claims: Arc<Counter>,
    /// Times a worker went to sleep on the idle parking lot.
    pub parks: Arc<Counter>,
    /// Times a sleeping worker was woken back up.
    pub revives: Arc<Counter>,
    /// Jobs a worker ran from its *own* nested scope while waiting on it.
    pub help_drains: Arc<Counter>,
    /// Queue depth sampled after each inject/take transition.
    pub queue_depth: Arc<Gauge>,
}

/// Storm detection window: parks/revives are counted per rolling window
/// of this length, and a storm event fires when a window's count crosses
/// [`STORM_THRESHOLD`].
const STORM_WINDOW_NS: u64 = 100_000_000;
/// Parks (or revives) within one [`STORM_WINDOW_NS`] window that
/// constitute a storm — a pool oscillating between idle and busy this
/// fast is burning its time in the parking lot, not in jobs.
const STORM_THRESHOLD: u64 = 32;
/// A help-drain wait longer than this is flagged as a stall: the waiting
/// worker sat on a nested scope while siblings held its tasks.
const STALL_NS: u64 = 10_000_000;

/// Anomaly events for the flight recorder: park/revive storms and
/// help-drain stalls. Attached after construction (the pool itself has no
/// recorder), so every field lives behind a [`OnceLock`] in [`PoolState`]
/// and the hot paths pay one `get()` when no recorder is attached.
struct PoolEvents {
    recorder: Arc<Recorder>,
    clock: Arc<dyn Clock>,
    park_storm: EventId,
    revive_storm: EventId,
    stall: EventId,
    /// Start of the current storm window (ns from the attached clock).
    window_start: AtomicU64,
    window_parks: AtomicU64,
    window_revives: AtomicU64,
}

impl PoolEvents {
    fn new(recorder: Arc<Recorder>, clock: Arc<dyn Clock>) -> PoolEvents {
        const COUNT_WINDOW: &[FieldSpec] = &[
            FieldSpec {
                key: "count",
                kind: FieldKind::U64,
            },
            FieldSpec {
                key: "window_ms",
                kind: FieldKind::U64,
            },
        ];
        let park_storm = recorder.define(EventSpec {
            name: "pool_park_storm",
            channel: Channel::Pool,
            severity: Severity::Warn,
            fields: COUNT_WINDOW,
        });
        let revive_storm = recorder.define(EventSpec {
            name: "pool_revive_storm",
            channel: Channel::Pool,
            severity: Severity::Warn,
            fields: COUNT_WINDOW,
        });
        let stall = recorder.define(EventSpec {
            name: "pool_help_drain_stall",
            channel: Channel::Pool,
            severity: Severity::Warn,
            fields: &[FieldSpec {
                key: "waited_us",
                kind: FieldKind::U64,
            }],
        });
        let now = clock.now_ns();
        PoolEvents {
            recorder,
            clock,
            park_storm,
            revive_storm,
            stall,
            window_start: AtomicU64::new(now),
            window_parks: AtomicU64::new(0),
            window_revives: AtomicU64::new(0),
        }
    }

    /// Counts one park/revive into the rolling window, emitting the storm
    /// event exactly once per window — when the count *reaches* the
    /// threshold, not on every bump past it.
    fn note(&self, counter: &AtomicU64, storm: EventId) {
        let now = self.clock.now_ns();
        let start = self.window_start.load(Ordering::Relaxed);
        if now.saturating_sub(start) > STORM_WINDOW_NS
            && self
                .window_start
                .compare_exchange(start, now, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            // One thread rolls the window; racing bumps land in whichever
            // window they observe — storm detection is a heuristic, and an
            // off-by-a-few count is fine.
            self.window_parks.store(0, Ordering::Relaxed);
            self.window_revives.store(0, Ordering::Relaxed);
        }
        let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
        if n == STORM_THRESHOLD {
            self.recorder
                .emit(storm, now, &[n, STORM_WINDOW_NS / 1_000_000]);
        }
    }

    fn note_park(&self) {
        self.note(&self.window_parks, self.park_storm);
    }

    fn note_revive(&self) {
        self.note(&self.window_revives, self.revive_storm);
    }

    /// Flags a help-drain wait that exceeded [`STALL_NS`].
    fn note_stall(&self, waited_ns: u64) {
        if waited_ns >= STALL_NS {
            self.recorder
                .emit(self.stall, self.clock.now_ns(), &[waited_ns / 1_000]);
        }
    }
}

/// Acquires a std mutex, recovering from poisoning (a panicked task must
/// not wedge the pool — parking_lot semantics).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Cooperative cancellation

/// A shared yes/no stop signal, checked cooperatively by tasks.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Signals cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`cancel`](Self::cancel) been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// An index floor that only ever moves down — the shape of P-REMI's §3.4
/// rule 2 ("no-solution floor"): once the subtree at root `i` is proven
/// solution-free, all work on indices `j ≥ i` is superfluous.
#[derive(Debug)]
pub struct FloorToken {
    floor: AtomicUsize,
}

impl Default for FloorToken {
    fn default() -> Self {
        FloorToken {
            floor: AtomicUsize::new(usize::MAX),
        }
    }
}

impl FloorToken {
    /// A fresh token with the floor at `usize::MAX` (nothing cancelled).
    pub fn new() -> Self {
        FloorToken::default()
    }

    /// Lowers the floor to `index` (no-op if already lower).
    pub fn lower(&self, index: usize) {
        self.floor.fetch_min(index, Ordering::AcqRel);
    }

    /// The current floor.
    pub fn get(&self) -> usize {
        self.floor.load(Ordering::Acquire)
    }

    /// Is work at `index` cancelled (i.e. `index ≥ floor`)?
    pub fn is_cancelled(&self, index: usize) -> bool {
        index >= self.get()
    }
}

// ---------------------------------------------------------------------------
// The executor abstraction

/// Runs a batch of identical tasks to completion, possibly in parallel.
///
/// The search algorithms are written against this trait so the pooled
/// executor and the spawn-per-call baseline stay interchangeable
/// (benchmarks and differential tests exercise both).
pub trait Executor: Sync {
    /// Runs `task(0) .. task(tasks - 1)`, returning once **all** of them
    /// have completed. Tasks may run concurrently in any order.
    fn broadcast(&self, tasks: usize, task: &(dyn Fn(usize) + Sync));
}

/// The seed behaviour: one `std::thread::scope` + `tasks` fresh OS
/// threads per call. Kept as the baseline the pool is measured against.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpawnExecutor;

impl Executor for SpawnExecutor {
    fn broadcast(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        match tasks {
            0 => {}
            1 => task(0),
            _ => {
                std::thread::scope(|scope| {
                    for i in 0..tasks {
                        scope.spawn(move || task(i));
                    }
                });
            }
        }
    }
}

impl Executor for ThreadPool {
    fn broadcast(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        match tasks {
            0 => {}
            1 => task(0),
            _ => self.scope(|s| {
                for i in 0..tasks {
                    s.spawn(move || task(i));
                }
            }),
        }
    }
}

/// Splits `len` items into at most `tasks` contiguous chunks and runs
/// `work(lo..hi)` for each on `executor` — the shared index arithmetic for
/// data-parallel loops (queue scoring, AMIE level evaluation), so callers
/// don't each re-derive the chunk/bounds math.
pub fn broadcast_chunks(
    executor: &dyn Executor,
    len: usize,
    tasks: usize,
    work: &(dyn Fn(std::ops::Range<usize>) + Sync),
) {
    let chunk = len.div_ceil(tasks.max(1)).max(1);
    executor.broadcast(len.div_ceil(chunk), &|task| {
        let lo = task * chunk;
        work(lo..((lo + chunk).min(len)));
    });
}

// ---------------------------------------------------------------------------
// The pool

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One worker's job shard. Owners pop the front; thieves steal from the
/// back, so a worker and its thieves rarely contend on the same end.
#[derive(Default)]
struct Shard {
    jobs: Mutex<VecDeque<Job>>,
}

struct PoolState {
    shards: Vec<Shard>,
    /// Jobs queued but not yet taken; lets sleeping workers distinguish
    /// "nothing to do" from "a push is in flight".
    queued: AtomicUsize,
    /// Round-robin injection cursor.
    next_shard: AtomicUsize,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    /// Workers currently asleep in the parking lot (see
    /// [`ThreadPool::idle_workers`]).
    idlers: AtomicUsize,
    wake: Condvar,
    shutdown: AtomicBool,
    metrics: PoolMetrics,
    /// Flight-recorder hookup; empty until
    /// [`ThreadPool::attach_events`] is called.
    events: OnceLock<PoolEvents>,
}

impl PoolState {
    /// Pops a job: own shard first (FIFO), then steal from the others
    /// (LIFO end) in ring order.
    fn take(&self, home: usize) -> Option<Job> {
        let n = self.shards.len();
        for k in 0..n {
            let idx = (home + k) % n;
            let job = if k == 0 {
                lock(&self.shards[idx].jobs).pop_front()
            } else {
                lock(&self.shards[idx].jobs).pop_back()
            };
            if let Some(job) = job {
                let before = self.queued.fetch_sub(1, Ordering::AcqRel);
                self.metrics
                    .queue_depth
                    .set(before.saturating_sub(1) as u64);
                if k != 0 {
                    self.metrics.steals.inc();
                }
                return Some(job);
            }
        }
        None
    }

    fn inject(&self, job: Job) {
        let before = self.queued.fetch_add(1, Ordering::AcqRel);
        self.metrics.queue_depth.set(before as u64 + 1);
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        lock(&self.shards[shard].jobs).push_back(job);
        // One job, one wakeup: waking the whole pool per injected job is a
        // thundering herd on the hot path. No wakeup is ever lost — a
        // worker about to sleep holds the idle lock and re-checks `queued`
        // (incremented above) before waiting, and busy workers rescan all
        // shards after every job.
        let _guard = lock(&self.idle);
        self.wake.notify_one();
    }
}

thread_local! {
    /// Set on pool worker threads, so a nested `scope` publishes claimable
    /// jobs and help-drains them instead of deadlocking the pool on
    /// itself.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn worker_loop(state: Arc<PoolState>, home: usize) {
    IS_POOL_WORKER.with(|w| w.set(true));
    loop {
        if let Some(job) = state.take(home) {
            // Scope jobs catch their own panics; a panic reaching here
            // would only abort this worker, never poison the pool.
            job();
            continue;
        }
        let guard = lock(&state.idle);
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        if state.queued.load(Ordering::Acquire) > 0 {
            continue; // a push is in flight — rescan instead of sleeping
        }
        state.idlers.fetch_add(1, Ordering::AcqRel);
        state.metrics.parks.inc();
        if let Some(events) = state.events.get() {
            events.note_park();
        }
        let guard = state
            .wake
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner);
        state.idlers.fetch_sub(1, Ordering::AcqRel);
        state.metrics.revives.inc();
        if let Some(events) = state.events.get() {
            events.note_revive();
        }
        drop(guard);
    }
}

/// A fixed-size work-stealing thread pool with a scoped-task API.
pub struct ThreadPool {
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (floored at 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let state = Arc::new(PoolState {
            shards: (0..threads).map(|_| Shard::default()).collect(),
            queued: AtomicUsize::new(0),
            next_shard: AtomicUsize::new(0),
            idle: Mutex::new(()),
            idlers: AtomicUsize::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: PoolMetrics::default(),
            events: OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("remi-pool-{i}"))
                    .spawn(move || worker_loop(state, i))
                    .expect("spawning a pool worker")
            })
            .collect();
        ThreadPool {
            state,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs queued but not yet picked up by a worker. Long-running tasks
    /// can poll this to yield their worker when other work is waiting
    /// (the serve layer parks busy connections on this signal so e.g. a
    /// queued compaction is never starved by one chatty socket). The
    /// count may briefly include already-claimed stubs of nested scopes;
    /// combine with [`ThreadPool::idle_workers`] to decide whether
    /// yielding actually helps.
    pub fn queued(&self) -> usize {
        self.state.queued.load(Ordering::Acquire)
    }

    /// Workers currently parked with nothing to do. When this is
    /// non-zero, queued work will be picked up without anyone yielding.
    pub fn idle_workers(&self) -> usize {
        self.state.idlers.load(Ordering::Acquire)
    }

    /// This pool's scheduling instruments (see [`PoolMetrics`]).
    pub fn metrics(&self) -> &PoolMetrics {
        &self.state.metrics
    }

    /// Attaches a flight recorder: the pool starts emitting
    /// `pool_park_storm` / `pool_revive_storm` (≥ 32 parks or revives
    /// inside a 100 ms window) and `pool_help_drain_stall` (a nested
    /// scope wait exceeding 10 ms) events. The first attachment wins —
    /// later calls are ignored, which keeps the [`global`] pool's wiring
    /// stable when several servers share one process (tests).
    pub fn attach_events(&self, recorder: Arc<Recorder>, clock: Arc<dyn Clock>) {
        let _ = self.state.events.set(PoolEvents::new(recorder, clock));
    }

    /// Structured concurrency: `f` receives a [`Scope`] whose tasks may
    /// borrow anything that outlives the `scope` call. Returns after every
    /// spawned task has completed; the first task panic is propagated.
    ///
    /// Calling `scope` *from a pool worker* is allowed: tasks are
    /// published as claimable jobs that idle workers steal, while the
    /// waiting worker help-drains its own scope's tasks — real nested
    /// parallelism on a busy pool, inline execution on a saturated one,
    /// never a deadlock.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState::default()),
            env: PhantomData,
        };
        let result = {
            // Even if `f` panics, unwinding must not release the borrows
            // before the spawned tasks are done with them.
            let wait_guard = WaitGuard(&scope.state, &self.state);
            let result = f(&scope);
            drop(wait_guard);
            result
        };
        if let Some(payload) = lock(&scope.state.panic).take() {
            panic::resume_unwind(payload);
        }
        result
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        {
            let _guard = lock(&self.state.idle);
            self.state.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A job spawned from a pool worker, runnable by whoever takes it first:
/// an idle worker popping the queued stub, or the spawning worker's own
/// scope wait help-draining it. The `Mutex<Option<..>>` makes the claim
/// exactly-once.
type Claim = Arc<Mutex<Option<Job>>>;

/// Tracks one scope's outstanding tasks.
#[derive(Default)]
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Jobs spawned *from pool workers*: published to the queue as claim
    /// stubs (so idle workers still steal them) and help-drained by the
    /// scope's own wait, so a worker waiting on its nested scope runs its
    /// own tasks instead of deadlocking a saturated pool — and never picks
    /// up unrelated (possibly long-lived) jobs while it waits.
    claims: Mutex<VecDeque<Claim>>,
}

impl ScopeState {
    fn add_task(&self) {
        *lock(&self.pending) += 1;
    }

    fn finish_task(&self) {
        let mut pending = lock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Takes the next not-yet-claimed job of this scope, if any.
    fn claim_own_job(&self) -> Option<Job> {
        let mut claims = lock(&self.claims);
        while let Some(claim) = claims.pop_front() {
            if let Some(job) = lock(&claim).take() {
                return Some(job);
            }
        }
        None
    }

    fn wait(&self, pool: &PoolState) {
        if IS_POOL_WORKER.with(|w| w.get()) {
            // A worker waiting on its own nested scope is a stall risk —
            // time the whole drain and let the recorder flag outliers.
            let events = pool.events.get();
            let started = events.map(|ev| ev.clock.now_ns());
            self.help_drain(&pool.metrics);
            if let (Some(ev), Some(t0)) = (events, started) {
                ev.note_stall(ev.clock.now_ns().saturating_sub(t0));
            }
            return;
        }
        let mut pending = lock(&self.pending);
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Help-drain: run our own unclaimed tasks while other workers
    /// chew on the rest. The timed wait covers the race where a
    /// still-running sibling spawns more tasks onto this scope.
    fn help_drain(&self, metrics: &PoolMetrics) {
        loop {
            if *lock(&self.pending) == 0 {
                return;
            }
            if let Some(job) = self.claim_own_job() {
                metrics.help_drains.inc();
                job();
                continue;
            }
            let pending = lock(&self.pending);
            if *pending == 0 {
                return;
            }
            let _ = self
                .done
                .wait_timeout(pending, std::time::Duration::from_millis(1));
        }
    }
}

/// Blocks on drop until the scope's tasks are done — the linchpin of the
/// lifetime-erasure safety argument (runs on both normal exit and unwind).
struct WaitGuard<'a>(&'a ScopeState, &'a PoolState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait(self.1);
    }
}

/// Handle for spawning borrowed tasks inside [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`: prevents the
    /// borrow-carrying lifetime from being shortened behind our back.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queues `task` on the pool. The task may borrow any `'env` data;
    /// the enclosing [`ThreadPool::scope`] call joins it before returning.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let state = Arc::clone(&self.state);
        self.state.add_task();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let outcome = panic::catch_unwind(AssertUnwindSafe(task));
            if let Err(payload) = outcome {
                lock(&state.panic).get_or_insert(payload);
            }
            state.finish_task();
        });
        // SAFETY: `WaitGuard` guarantees the enclosing `scope` call cannot
        // return — by value or by unwind — until this job has finished
        // executing, so every `'env` borrow it carries is live for as long
        // as the job can observe it. The transmute only erases the
        // lifetime; the vtable and layout are unchanged. For the claim
        // path below the same argument holds: the wait drains `pending` to
        // zero, so every claimed job has *run* (and been consumed) before
        // the scope returns; stubs left in the queue hold only an empty
        // claim.
        #[allow(unsafe_code)]
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        if IS_POOL_WORKER.with(|w| w.get()) {
            // Nested scope on a worker: publish the job as a claimable
            // stub. Idle workers steal it off the queue like any other
            // job; if none gets there first, the spawning worker runs it
            // itself while waiting on the scope (`ScopeState::wait`), so a
            // saturated pool can never deadlock on its own nesting.
            let claim: Claim = Arc::new(Mutex::new(Some(job)));
            lock(&self.state.claims).push_back(Arc::clone(&claim));
            let claims_taken = Arc::clone(&self.pool.state.metrics.claims);
            self.pool.state.inject(Box::new(move || {
                if let Some(job) = lock(&claim).take() {
                    claims_taken.inc();
                    job();
                }
            }));
            return;
        }
        self.pool.state.inject(job);
    }
}

// ---------------------------------------------------------------------------
// Process-wide configuration

/// Parses a thread-count string: positive integers only.
pub fn parse_threads(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The `REMI_THREADS` override, if set and valid.
pub fn env_threads() -> Option<usize> {
    std::env::var("REMI_THREADS")
        .ok()
        .and_then(|v| parse_threads(&v))
}

/// The process-wide worker count: `REMI_THREADS` if set, otherwise the
/// machine's available parallelism.
pub fn configured_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The process-wide pool, built on first use with
/// [`configured_threads`] workers. Every parallel path in the workspace
/// shares it, so a process spawns its workers exactly once.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scoped_tasks_borrow_the_stack() {
        let pool = ThreadPool::new(2);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pool_is_reusable_across_many_scopes() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(5, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn task_panic_propagates_to_the_scope_caller() {
        let pool = ThreadPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                s.spawn(|| {}); // the healthy sibling still completes
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps executing work.
        let ran = AtomicBool::new(false);
        pool.broadcast(1, &|_| ran.store(true, Ordering::Relaxed));
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn nested_scope_on_a_saturated_pool_help_drains() {
        let pool = ThreadPool::new(1); // one worker: the nested tasks can
                                       // only run via the waiting worker's
                                       // own help-drain
        let count = AtomicUsize::new(0);
        pool.scope(|outer| {
            let count = &count;
            let pool = &pool;
            outer.spawn(move || {
                pool.broadcast(4, &|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_scope_tasks_run_concurrently_on_idle_workers() {
        // A worker waiting on its nested scope must not serialise the
        // world: idle workers steal the claim stubs, so three nested tasks
        // can rendezvous at a barrier (impossible if they ran inline one
        // after another on the spawning worker).
        let pool = ThreadPool::new(4);
        let barrier = std::sync::Barrier::new(3);
        pool.scope(|outer| {
            let barrier = &barrier;
            let pool = &pool;
            outer.spawn(move || {
                pool.broadcast(3, &|_| {
                    barrier.wait();
                });
            });
        });
    }

    #[test]
    fn deeply_nested_scopes_terminate() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        fn recurse(pool: &ThreadPool, depth: usize, count: &AtomicUsize) {
            count.fetch_add(1, Ordering::Relaxed);
            if depth == 0 {
                return;
            }
            pool.broadcast(2, &|_| recurse(pool, depth - 1, count));
        }
        pool.scope(|s| {
            let pool = &pool;
            let count = &count;
            s.spawn(move || recurse(pool, 4, count));
        });
        // 1 + 2 + 4 + 8 + 16 nodes of the binary spawn tree.
        assert_eq!(count.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn nested_task_panics_reach_the_inner_scope() {
        let pool = ThreadPool::new(2);
        let outer_ok = AtomicBool::new(false);
        pool.scope(|s| {
            let pool = &pool;
            let outer_ok = &outer_ok;
            s.spawn(move || {
                let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                    pool.scope(|inner| {
                        inner.spawn(|| panic!("nested boom"));
                    });
                }));
                assert!(caught.is_err(), "inner scope must propagate the panic");
                outer_ok.store(true, Ordering::Relaxed);
            });
        });
        assert!(outer_ok.load(Ordering::Relaxed));
    }

    /// Deterministic cancellation ordering: on a single-worker pool, tasks
    /// run strictly in FIFO spawn order, so a cancel issued by task 0 is
    /// observed by every later task.
    #[test]
    fn cancellation_order_is_deterministic_on_one_worker() {
        let pool = ThreadPool::new(1);
        let token = CancelToken::new();
        let observed: Mutex<Vec<(usize, bool)>> = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..6 {
                let token = &token;
                let observed = &observed;
                s.spawn(move || {
                    let cancelled = token.is_cancelled();
                    lock(observed).push((i, cancelled));
                    if i == 0 {
                        token.cancel();
                    }
                });
            }
        });
        let observed = observed.into_inner().unwrap();
        assert_eq!(
            observed,
            [
                (0, false),
                (1, true),
                (2, true),
                (3, true),
                (4, true),
                (5, true)
            ]
        );
    }

    #[test]
    fn floor_token_is_a_monotone_min() {
        let floor = FloorToken::new();
        assert!(!floor.is_cancelled(usize::MAX - 1));
        floor.lower(10);
        floor.lower(25); // raising is a no-op
        assert_eq!(floor.get(), 10);
        assert!(floor.is_cancelled(10));
        assert!(floor.is_cancelled(11));
        assert!(!floor.is_cancelled(9));
        floor.lower(3);
        assert_eq!(floor.get(), 3);
    }

    #[test]
    fn floor_token_under_concurrent_lowering_keeps_the_minimum() {
        let pool = ThreadPool::new(4);
        let floor = FloorToken::new();
        pool.broadcast(32, &|i| floor.lower(100 + i));
        assert_eq!(floor.get(), 100);
    }

    #[test]
    fn broadcast_chunks_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        for (len, tasks) in [(0usize, 4usize), (1, 4), (7, 3), (64, 4), (10, 64)] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            broadcast_chunks(&pool, len, tasks, &|range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "len={len} tasks={tasks}"
            );
        }
    }

    #[test]
    fn spawn_executor_matches_pool_executor() {
        let pool = ThreadPool::new(4);
        for tasks in [0usize, 1, 2, 7, 16] {
            let a = AtomicUsize::new(0);
            let b = AtomicUsize::new(0);
            pool.broadcast(tasks, &|i| {
                a.fetch_add(i + 1, Ordering::Relaxed);
            });
            SpawnExecutor.broadcast(tasks, &|i| {
                b.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("8"), Some(8));
        assert_eq!(parse_threads(" 2 "), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn scheduling_metrics_move_with_the_pool() {
        let pool = ThreadPool::new(2);
        pool.broadcast(64, &|_| {
            std::thread::yield_now();
        });
        // All queued work was taken, so the sampled depth ends at zero and
        // help-drains ran on the nested (worker-spawned) scope path.
        assert_eq!(pool.metrics().queue_depth.get(), 0);
        let single = ThreadPool::new(1);
        single.scope(|outer| {
            let single = &single;
            outer.spawn(move || {
                single.broadcast(4, &|_| {});
            });
        });
        assert!(
            single.metrics().help_drains.get() + single.metrics().claims.get() >= 4,
            "nested-scope jobs must be accounted as help-drains or claims"
        );
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn park_and_revive_storms_reach_the_recorder() {
        let pool = ThreadPool::new(1);
        let recorder = Recorder::shared(64);
        // A frozen clock never rolls the storm window, so every park and
        // revive accumulates into one window deterministically.
        let clock = Arc::new(remi_obs::FakeClock::new(0));
        pool.attach_events(Arc::clone(&recorder), clock);
        for _ in 0..(STORM_THRESHOLD + 8) {
            pool.scope(|s| s.spawn(|| {}));
            // Give the lone worker time to drain and park again.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Parks happen on the worker thread after `scope` returns; poll
        // with a bounded deadline instead of asserting immediately.
        let mut names = Vec::new();
        for _ in 0..500 {
            names = recorder
                .events_since(0)
                .into_iter()
                .map(|e| e.name)
                .collect::<Vec<_>>();
            if names.contains(&"pool_park_storm") && names.contains(&"pool_revive_storm") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            names.contains(&"pool_park_storm"),
            "expected a park storm event, got {names:?}"
        );
        assert!(
            names.contains(&"pool_revive_storm"),
            "expected a revive storm event, got {names:?}"
        );
        // Each storm fires exactly once per window — the frozen clock
        // means exactly once, full stop.
        assert_eq!(names.iter().filter(|n| **n == "pool_park_storm").count(), 1);
    }

    #[test]
    fn slow_help_drain_is_flagged_as_a_stall() {
        let pool = ThreadPool::new(1);
        let recorder = Recorder::shared(16);
        let clock = Arc::new(remi_obs::FakeClock::new(0));
        pool.attach_events(Arc::clone(&recorder), Arc::clone(&clock) as Arc<dyn Clock>);
        let pool_ref = &pool;
        let clock_ref = &clock;
        pool.scope(|outer| {
            outer.spawn(move || {
                // Runs on the worker: the nested scope waits via
                // help-drain, and the task advances the fake clock past
                // the stall threshold.
                pool_ref.scope(|inner| {
                    inner.spawn(move || clock_ref.advance(STALL_NS + 1));
                });
            });
        });
        let events = recorder.events_since(0);
        let stall = events
            .iter()
            .find(|e| e.name == "pool_help_drain_stall")
            .expect("help-drain stall event");
        assert_eq!(stall.severity, Severity::Warn);
        assert_eq!(stall.channel, Channel::Pool);
        let (key, value) = &stall.fields[0];
        assert_eq!(*key, "waited_us");
        assert_eq!(
            format!("{value}"),
            format!("{}", (STALL_NS + 1) / 1_000),
            "waited_us must reflect the fake-clock advance"
        );
    }

    #[test]
    fn quiet_help_drains_emit_no_stall() {
        let pool = ThreadPool::new(2);
        let recorder = Recorder::shared(16);
        let clock = Arc::new(remi_obs::FakeClock::new(0));
        pool.attach_events(Arc::clone(&recorder), clock);
        let pool_ref = &pool;
        pool.scope(|outer| {
            outer.spawn(move || {
                pool_ref.scope(|inner| {
                    inner.spawn(|| {});
                });
            });
        });
        assert!(
            recorder
                .events_since(0)
                .iter()
                .all(|e| e.name != "pool_help_drain_stall"),
            "a fast drain under a frozen clock must not be flagged"
        );
    }
}
