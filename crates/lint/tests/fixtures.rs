//! The fixture self-test as a regular integration test: every seeded
//! violation in `fixtures/` must flag, nothing else may, and every rule
//! in the catalog must be exercised by at least one fixture. CI also runs
//! this through `remi-lint --self-test`; the duplication is deliberate —
//! `cargo test` alone catches rule rot without the CI wiring.

use std::path::Path;

#[test]
fn every_seeded_fixture_violation_flags() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    match remi_lint::runner::self_test(&fixtures) {
        Ok(summary) => {
            assert!(summary.fixtures >= 10, "fixture files went missing");
            assert!(summary.seeded >= 22, "seeded violations went missing");
        }
        Err(failures) => panic!("fixture self-test failed:\n{}", failures.join("\n")),
    }
}

#[test]
fn workspace_sources_lint_clean() {
    // The same invariant CI enforces: the tree itself carries no
    // unsuppressed violations.
    let root = remi_lint::runner::workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let report = remi_lint::runner::run(&[root]).expect("workspace readable");
    let rendered = remi_lint::runner::to_text(&report);
    assert!(report.ok(), "workspace has lint violations:\n{rendered}");
}
