//! Property tests for the hand-rolled lexer: scanning arbitrary input —
//! valid UTF-8, code-shaped or garbage — must never panic, and the token
//! stream must be well-formed (spans monotonic, in bounds, on char
//! boundaries).

use proptest::prelude::*;

use remi_lint::lexer::lex;

/// Asserts the well-formedness invariants every token stream must hold.
fn assert_well_formed(src: &str) {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        assert!(t.start <= t.end, "inverted span {}..{}", t.start, t.end);
        assert!(t.end <= src.len(), "span {}..{} past EOF", t.start, t.end);
        assert!(
            t.start >= prev_end,
            "overlapping tokens at {}..{}",
            t.start,
            t.end
        );
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span {}..{} splits a char",
            t.start,
            t.end
        );
        prev_end = t.end;
    }
}

proptest! {
    #[test]
    fn lexing_arbitrary_utf8_never_panics(src in "\\PC*") {
        assert_well_formed(&src);
    }

    #[test]
    fn lexing_code_shaped_soup_never_panics(
        src in proptest::collection::vec(
            prop_oneof![
                Just("r#\"".to_string()),
                Just("\"#".to_string()),
                Just("/*".to_string()),
                Just("*/".to_string()),
                Just("//".to_string()),
                Just("'a".to_string()),
                Just("'a'".to_string()),
                Just("b'x'".to_string()),
                Just("\"".to_string()),
                Just("\\".to_string()),
                Just("\n".to_string()),
                Just("0x1f".to_string()),
                Just("1.5e3".to_string()),
                Just("1..=3".to_string()),
                Just("ident".to_string()),
                Just("r#raw_ident".to_string()),
                Just("é".to_string()),
            ],
            0..48,
        )
    ) {
        assert_well_formed(&src.concat());
    }

    #[test]
    fn every_nonspace_byte_is_covered_or_skipped_consistently(src in "[ a-z0-9+./\"'#*]{0,64}") {
        // Lexing twice is deterministic.
        let a = lex(&src);
        let b = lex(&src);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
        }
    }
}
