// lint:fixture-path crates/serve/src/fixture.rs
//
// Seeds: raw wall-clock reads in a library file that imports remi-obs.
// Importing the obs crate opts the file into injected time — reading
// `Instant::now` beside the injected `Clock` creates timing paths that
// `FakeClock` tests can never reach.

use remi_obs::{Clock, MonoClock}; // the import that puts this file in scope
use std::time::Instant;

pub fn blessed_elapsed(clock: &MonoClock, start_ns: u64) -> u64 {
    clock.now_ns().saturating_sub(start_ns)
}

pub fn raw_elapsed() -> u64 {
    let t = Instant::now(); // lint:expect(wallclock-in-mining)
    t.elapsed().as_nanos() as u64
}

pub fn spawn_stamp() -> u64 {
    // lint:allow(wallclock-in-mining): one-shot boot banner timestamp, never read again after startup
    Instant::now().elapsed().as_nanos() as u64
}
