// lint:fixture-path crates/kb/src/events.rs
//
// Seeds: flight-recorder event names built at runtime. The recorder
// interns specs by name once at boot so `emit` stays allocation-free;
// a `format!`-built or locally-bound name defeats the interning and
// puts an allocation on the emit hot path.

use remi_obs::{Channel, EventSpec, Recorder, Severity};

pub fn define_events(recorder: &Recorder, shard: usize) {
    recorder.define(EventSpec {
        name: &format!("kb_shard_{shard}_publish"), // lint:expect(dynamic-event-name)
        channel: Channel::Kb,
        severity: Severity::Info,
        fields: &[],
    });
    let runtime_name = "kb_publish";
    recorder.define(EventSpec {
        name: runtime_name, // lint:expect(dynamic-event-name)
        channel: Channel::Kb,
        severity: Severity::Info,
        fields: &[],
    });
    recorder.define(EventSpec {
        name: "kb_publish", // a static literal name interns cleanly
        channel: Channel::Kb,
        severity: Severity::Info,
        fields: &[],
    });
}
