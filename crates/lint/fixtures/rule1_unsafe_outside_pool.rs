// lint:fixture-path crates/kb/src/fixture.rs
//
// Seeds: `unsafe` outside crates/pool. Also proves the lexer is not
// fooled by code-looking text inside raw strings or comments, and that a
// justified allow suppresses the rule.

pub fn grow(v: &mut Vec<u32>, n: usize) {
    v.reserve(n);
    unsafe { v.set_len(n) } // lint:expect(unsafe-outside-pool)
}

pub fn not_code() -> &'static str {
    // unsafe { this is a comment, not code }
    r#"unsafe { this is a string, not code }"#
}

pub fn suppressed(v: &mut Vec<u32>, n: usize) {
    // lint:allow(unsafe-outside-pool): fixture demonstrating that a justified allow suppresses
    unsafe { v.set_len(n) }
}
