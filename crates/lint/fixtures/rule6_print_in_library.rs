// lint:fixture-path crates/essum/src/fixture.rs
//
// Seeds: printing from a library crate. Libraries return data; the CLI,
// examples and load generators own the terminal.

pub fn summarize(n: usize) -> String {
    println!("summarizing {n} entities"); // lint:expect(print-in-library)
    eprintln!("progress: 0/{n}"); // lint:expect(print-in-library)
    format!("{n} entities")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debug output in tests is fine"); // exempt: #[cfg(test)]
    }
}
