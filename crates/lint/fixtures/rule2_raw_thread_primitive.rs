// lint:fixture-path crates/kb/src/fixture.rs
//
// Seeds: raw thread / synchronisation primitives outside crates/pool.
// Parallel paths must run on remi_pool::global(); state locks use the
// vendored parking_lot shim.

pub fn spawn_worker() {
    std::thread::spawn(|| {}); // lint:expect(raw-thread-primitive)
}

pub fn scoped_work(items: &[u32]) {
    std::thread::scope(|s| { // lint:expect(raw-thread-primitive)
        for _ in items {
            s.spawn(|| {});
        }
    });
}

pub struct Shared {
    state: std::sync::Mutex<u32>, // lint:expect(raw-thread-primitive)
}

use std::sync::{Arc, Condvar}; // lint:expect(raw-thread-primitive)

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_hammer_threads() {
        std::thread::scope(|_| {}); // exempt: #[cfg(test)] region
    }
}
