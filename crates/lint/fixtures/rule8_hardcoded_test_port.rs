// lint:fixture-path tests/fixture_serve.rs
//
// Seeds: a test binding a fixed port. Parallel test runs (and CI
// machines running anything else) collide on fixed ports; tests must
// bind `:0` and read the assigned address back.

#[test]
fn spawns_a_server() {
    let listener = TcpListener::bind("127.0.0.1:8080").unwrap(); // lint:expect(hardcoded-test-port)
    drop(listener);
}

#[test]
fn ephemeral_port_is_fine() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    drop(listener);
}
