// lint:fixture-path crates/kb/src/fixture.rs
//
// Seeds: suppression comments that do not hold up. An allow must name
// known rules and carry a non-empty justification, or it is itself a
// violation — suppressions stay auditable.

// lint:expect(malformed-allow)
// lint:allow(unsafe-outside-pool)
pub fn allow_without_justification() {}

// lint:expect(malformed-allow)
// lint:allow(no-such-rule): the rule id does not exist
pub fn allow_with_unknown_rule() {}
