// lint:fixture-path crates/kb/src/binfmt.rs
//
// Seeds: a reader sizing an allocation from a raw file-derived count.
// Hostile counts must flow through checked_count (which bounds them by
// the bytes actually remaining) before reaching with_capacity.

pub fn read_block(buf: &mut Cursor) -> Result<Vec<u64>> {
    let n = read_u64(buf)? as usize;
    let mut words = Vec::with_capacity(n); // lint:expect(unchecked-binfmt-alloc)
    for _ in 0..n {
        words.push(read_u64(buf)?);
    }
    Ok(words)
}

pub fn read_block_checked(buf: &mut Cursor) -> Result<Vec<u64>> {
    let n_words = checked_count(read_u64(buf)?, buf.remaining(), 8)?;
    let mut words = Vec::with_capacity(n_words); // ok: validated count
    for _ in 0..n_words {
        words.push(read_u64(buf)?);
    }
    Ok(words)
}

pub fn write_block(out: &mut Vec<u8>, n_estimate: usize) {
    // Writers size buffers from in-memory data; the rule only governs
    // read_* / load* functions.
    out.reserve(n_estimate);
    let _scratch: Vec<u8> = Vec::with_capacity(n_estimate);
}
