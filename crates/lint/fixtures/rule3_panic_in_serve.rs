// lint:fixture-path crates/serve/src/http.rs
//
// Seeds: panics in a request-handling module. A panic inside a handler
// kills the pool worker serving live traffic; everything here must map
// failures to HTTP error responses instead.

pub fn handle(line: &str, buf: &[u8]) -> u8 {
    let method = line.split(' ').next().unwrap(); // lint:expect(panic-in-serve)
    let version = line.split(' ').nth(2).expect("version"); // lint:expect(panic-in-serve)
    if method.is_empty() || version.is_empty() {
        panic!("empty request line"); // lint:expect(panic-in-serve)
    }
    let first = buf[0]; // lint:expect(panic-in-serve)
    match first {
        b'G' => 1,
        _ => unreachable!(), // lint:expect(panic-in-serve)
    }
}

pub fn safe_handle(buf: &[u8]) -> Option<u8> {
    // The sanctioned shape: .get() and let the caller map the miss.
    buf.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1); // exempt: #[cfg(test)] region
    }
}
