// lint:fixture-path crates/kb/src/delta.rs
//
// Seeds: lock-order inversion between the writer lock and the compaction
// gate. The gate serialises whole compactions and must be acquired
// BEFORE the writer lock; taking it while already holding the writer
// would let two folds interleave and silently drop triples (the PR 5
// review finding this rule encodes).

impl LiveKb {
    pub fn inverted_fold(&self) {
        let mut w = self.writer.lock();
        let _gate = self.compact_gate.lock(); // lint:expect(delta-lock-order)
        w.delta.clear();
    }

    pub fn correct_fold(&self) {
        let _gate = self.compact_gate.lock(); // gate first: correct order
        let mut w = self.writer.lock();
        w.delta.clear();
    }

    pub fn append_only_touches_writer(&self) {
        let mut w = self.writer.lock();
        w.delta.push(0);
    }
}
