// lint:fixture-path crates/core/src/fixture.rs
//
// Seeds: wall-clock reads inside mining logic. Mining results must be a
// pure function of (KB, config, seed); time-dependent branches make runs
// unreproducible.

use std::time::{Instant, SystemTime}; // lint:expect(wallclock-in-mining)

pub fn score_with_clock(x: u64) -> u64 {
    let t = Instant::now(); // lint:expect(wallclock-in-mining)
    x.wrapping_add(t.elapsed().as_nanos() as u64)
}

pub fn stamp() -> SystemTime { // lint:expect(wallclock-in-mining)
    SystemTime::UNIX_EPOCH // lint:expect(wallclock-in-mining)
}

pub fn deadline_ok(deadline: Instant) -> bool {
    // lint:allow(wallclock-in-mining): deadline enforcement is an explicit opt-in timeout, not scoring logic
    Instant::now() >= deadline
}
