// lint:fixture-path crates/serve/src/query.rs
//
// Seeds: panics in the query/routing modules added with the pattern-first
// API (`router.rs`, `params.rs`, `query.rs`). They run on the same pool
// workers as the rest of the request path, so the no-panic contract
// covers them too.

pub fn render_rows(rows: &[Vec<u32>], limit: usize) -> String {
    let first = rows.first().unwrap(); // lint:expect(panic-in-serve)
    if first.len() > limit {
        todo!("row wider than limit"); // lint:expect(panic-in-serve)
    }
    format!("{}", first[0]) // lint:expect(panic-in-serve)
}

pub fn safe_render(rows: &[Vec<u32>]) -> Option<&Vec<u32>> {
    // The sanctioned shape: propagate the miss as an ApiError upstream.
    rows.first()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_index() {
        let rows = [vec![1u32]];
        assert_eq!(rows[0][0], 1); // exempt: #[cfg(test)] region
    }
}
