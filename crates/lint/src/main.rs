//! `remi-lint` — CLI for the workspace static-analysis pass.
//!
//! ```text
//! remi-lint [--json] [paths…]   lint (default: the whole workspace from .)
//! remi-lint --self-test         verify every rule fires on its fixtures
//! remi-lint --list-rules        print the rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or self-test failure), 2 usage or
//! I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use remi_lint::rules::RULES;
use remi_lint::runner;

fn main() -> ExitCode {
    let mut json = false;
    let mut self_test = false;
    let mut list_rules = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--self-test" => self_test = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("usage: remi-lint [--json] [--self-test] [--list-rules] [paths…]");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("remi-lint: unknown flag `{flag}` (see --help)");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{:<24} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    if self_test {
        return run_self_test();
    }

    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }
    match runner::run(&paths) {
        Ok(report) => {
            if json {
                println!("{}", runner::to_json(&report));
            } else {
                print!("{}", runner::to_text(&report));
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("remi-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_self_test() -> ExitCode {
    // Fixtures live next to this crate; resolve through the enclosing
    // workspace so the binary works from any directory inside it.
    let root = runner::workspace_root(Path::new("."));
    let fixtures = root
        .map(|r| r.join("crates/lint/fixtures"))
        .unwrap_or_else(|| PathBuf::from("crates/lint/fixtures"));
    match runner::self_test(&fixtures) {
        Ok(summary) => {
            println!(
                "remi-lint self-test: {} fixture(s), {} seeded violation(s), all {} rules fire",
                summary.fixtures,
                summary.seeded,
                RULES.len()
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("remi-lint self-test: {e}");
            }
            eprintln!("remi-lint self-test: FAILED ({} error(s))", errors.len());
            ExitCode::FAILURE
        }
    }
}
