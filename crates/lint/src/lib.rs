//! `remi-lint` — the workspace's own static-analysis pass.
//!
//! PRs 2–5 grew a hand-rolled concurrency stack whose correctness rests
//! on structural invariants that used to live only as prose in
//! ROADMAP.md. This crate turns each of them into a machine-checked
//! rule: a zero-dependency Rust lexer ([`lexer`]) feeds a rule catalog
//! ([`rules`]) that walks every workspace source file and reports
//! violations with `file:line` spans, stable rule ids, and justified
//! `lint:allow` suppressions.
//!
//! The [`runner`] module holds the pieces shared by the `remi-lint`
//! binary and the test suites: workspace file discovery, report
//! rendering (text and JSON for `scripts/lint_report.py`), and the
//! fixture self-test that proves every rule still fires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

/// Workspace walking, report rendering, and the fixture self-test.
pub mod runner {
    use std::fs;
    use std::io;
    use std::path::{Path, PathBuf};

    use crate::rules::{check_file, known_rule, Violation, RULES};

    /// Aggregated result of linting a set of files.
    #[derive(Debug, Default)]
    pub struct RunReport {
        /// Number of files analysed.
        pub files: usize,
        /// All violations, ordered by path then line.
        pub violations: Vec<Violation>,
        /// Violations silenced by justified allows.
        pub suppressed: usize,
    }

    impl RunReport {
        /// True when no violations remain.
        pub fn ok(&self) -> bool {
            self.violations.is_empty()
        }
    }

    /// Ascends from `start` to the first directory whose `Cargo.toml`
    /// declares `[workspace]` — the root all rule paths are relative to.
    pub fn workspace_root(start: &Path) -> Option<PathBuf> {
        let start = start.canonicalize().ok()?;
        let mut dir: &Path = if start.is_file() {
            start.parent()?
        } else {
            &start
        };
        loop {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
            dir = dir.parent()?;
        }
    }

    /// Directories never walked: build output, vendored shims (third-party
    /// API mirrors follow their upstreams' conventions, not ours), VCS
    /// metadata, and the lint fixtures (they *seed* violations).
    fn skip_dir(path: &Path) -> bool {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if matches!(name, "target" | "vendor" | ".git" | ".github") {
            return true;
        }
        name == "fixtures" && path.parent().is_some_and(|p| p.ends_with("lint"))
    }

    /// Recursively collects `.rs` files under each of `paths`. A path
    /// given explicitly is always entered, even when the walk would skip
    /// it (so `remi-lint crates/lint/fixtures` still works on demand).
    pub fn collect_rs_files(paths: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for p in paths {
            walk(p, &mut out, true)?;
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    fn walk(path: &Path, out: &mut Vec<PathBuf>, explicit: bool) -> io::Result<()> {
        // A typo'd explicit path must fail loudly, not lint zero files
        // and report the tree clean.
        if explicit && !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such path: {}", path.display()),
            ));
        }
        if path.is_file() {
            if path.extension().is_some_and(|e| e == "rs") {
                out.push(path.to_path_buf());
            }
            return Ok(());
        }
        if path.is_dir() {
            if !explicit && skip_dir(path) {
                return Ok(());
            }
            let mut entries: Vec<PathBuf> = fs::read_dir(path)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .collect();
            entries.sort();
            for entry in entries {
                walk(&entry, out, false)?;
            }
        }
        Ok(())
    }

    /// Lints every `.rs` file reachable from `paths`. Rule path scoping
    /// uses workspace-relative paths, resolved against the enclosing
    /// workspace root (falling back to the path as given).
    pub fn run(paths: &[PathBuf]) -> io::Result<RunReport> {
        let root = workspace_root(paths.first().map_or(Path::new("."), |p| p.as_path()))
            .or_else(|| workspace_root(Path::new(".")));
        let files = collect_rs_files(paths)?;
        let mut report = RunReport::default();
        for file in &files {
            let Ok(src) = fs::read_to_string(file) else {
                continue; // non-UTF-8 file: nothing our lexer can check
            };
            let rel = relative_to_root(file, root.as_deref());
            let file_report = check_file(&rel, &src);
            report.files += 1;
            report.suppressed += file_report.suppressed;
            report.violations.extend(file_report.violations);
        }
        report
            .violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        Ok(report)
    }

    fn relative_to_root(file: &Path, root: Option<&Path>) -> String {
        let canonical = file.canonicalize().unwrap_or_else(|_| file.to_path_buf());
        let rel = root
            .and_then(|r| canonical.strip_prefix(r).ok())
            .unwrap_or(&canonical);
        rel.to_string_lossy().replace('\\', "/")
    }

    // JSON rendering --------------------------------------------------------

    fn json_escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Renders the machine-readable report consumed by
    /// `scripts/lint_report.py` (single JSON document on stdout).
    pub fn to_json(report: &RunReport) -> String {
        let mut out = String::from("{");
        out.push_str("\"tool\":\"remi-lint\",");
        out.push_str(&format!("\"rules\":{},", RULES.len()));
        out.push_str(&format!("\"files\":{},", report.files));
        out.push_str(&format!("\"suppressed\":{},", report.suppressed));
        out.push_str(&format!("\"ok\":{},", report.ok()));
        out.push_str("\"violations\":[");
        for (i, v) in report.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(v.rule),
                json_escape(&v.path),
                v.line,
                json_escape(&v.message),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the human-readable report (one `path:line: [rule] message`
    /// per violation plus a summary line).
    pub fn to_text(report: &RunReport) -> String {
        let mut out = String::new();
        for v in &report.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.path, v.line, v.rule, v.message
            ));
        }
        out.push_str(&format!(
            "remi-lint: {} file(s), {} violation(s), {} suppressed by justified allows\n",
            report.files,
            report.violations.len(),
            report.suppressed,
        ));
        out
    }

    // Fixture self-test ------------------------------------------------------

    /// Outcome of a clean fixture self-test.
    #[derive(Debug)]
    pub struct SelfTestSummary {
        /// Fixture files exercised.
        pub fixtures: usize,
        /// Seeded violations that fired as expected.
        pub seeded: usize,
    }

    /// Verifies the rule catalog against the committed fixtures: every
    /// `lint:expect(rule)` marker must produce exactly one violation of
    /// that rule on the marked line (or the line below), nothing else may
    /// fire, and every catalog rule must be seeded by at least one
    /// fixture. This is the guard against rules silently rotting.
    pub fn self_test(fixtures_dir: &Path) -> Result<SelfTestSummary, Vec<String>> {
        let mut errors = Vec::new();
        let files = match collect_rs_files(&[fixtures_dir.to_path_buf()]) {
            Ok(f) if !f.is_empty() => f,
            Ok(_) => return Err(vec![format!("no fixtures found in {fixtures_dir:?}")]),
            Err(e) => return Err(vec![format!("cannot read {fixtures_dir:?}: {e}")]),
        };
        let mut seeded_rules: Vec<String> = Vec::new();
        let mut seeded = 0usize;
        for file in &files {
            let display = file
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let Ok(src) = fs::read_to_string(file) else {
                errors.push(format!("{display}: unreadable fixture"));
                continue;
            };
            // Pass 1 extracts the declared pretend path; pass 2 lints
            // under it, so path-scoped rules see the right file.
            let probe = check_file(&display, &src);
            let Some(pretend) = probe.fixture_path else {
                errors.push(format!(
                    "{display}: missing `lint:fixture-path <path>` directive"
                ));
                continue;
            };
            let report = check_file(&pretend, &src);
            let mut expects: Vec<(String, u32, bool)> = report
                .expects
                .iter()
                .map(|e| (e.rule.clone(), e.line, false))
                .collect();
            for e in &report.expects {
                if !known_rule(&e.rule) {
                    errors.push(format!(
                        "{display}:{}: lint:expect names unknown rule `{}`",
                        e.line, e.rule
                    ));
                }
            }
            for v in &report.violations {
                let slot = expects.iter_mut().find(|(rule, line, used)| {
                    !used && rule == v.rule && (v.line == *line || v.line == *line + 1)
                });
                match slot {
                    Some(slot) => {
                        slot.2 = true;
                        seeded += 1;
                        seeded_rules.push(v.rule.to_string());
                    }
                    None => errors.push(format!(
                        "{display}:{}: unexpected [{}] {}",
                        v.line, v.rule, v.message
                    )),
                }
            }
            for (rule, line, used) in &expects {
                if !used {
                    errors.push(format!(
                        "{display}:{line}: seeded [{rule}] violation was NOT flagged — \
                         the rule has rotted"
                    ));
                }
            }
        }
        for rule in RULES {
            if !seeded_rules.iter().any(|r| r == rule.id) {
                errors.push(format!(
                    "rule [{}] has no seeded fixture violation — add one to fixtures/",
                    rule.id
                ));
            }
        }
        if errors.is_empty() {
            Ok(SelfTestSummary {
                fixtures: files.len(),
                seeded,
            })
        } else {
            Err(errors)
        }
    }
}
