//! A hand-rolled Rust lexer — just enough fidelity for static-analysis
//! rules that must never be fooled by strings or comments.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, on any input.** The proptest suite feeds arbitrary
//!    valid UTF-8 through [`lex`]; every slice is bounds-checked and the
//!    cursor only ever lands on char boundaries.
//! 2. **Classify exactly the constructs a text scan gets wrong**: raw
//!    strings (`r#"…"#`), byte/C strings, nested `/* /* */ */` block
//!    comments, and the `'a` lifetime vs `'a'` char-literal ambiguity.
//! 3. **Keep spans exact.** Every token carries its byte span; spans are
//!    non-overlapping and monotonically increasing, so rule diagnostics
//!    can map any token back to a line.
//!
//! Anything the lexer does not recognise becomes a single-character
//! [`TokenKind::Punct`] — unknown input degrades to noise, not to a crash
//! or a misclassified string.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifiers and keywords, including raw identifiers (`r#fn`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`) — no closing quote.
    Lifetime,
    /// A char literal (`'a'`, `'\n'`) or byte char (`b'x'`).
    Char,
    /// A string literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A numeric literal, including suffixes (`1_000u64`, `0xff`, `1.5e3`).
    Num,
    /// A `// …` line comment (doc comments included).
    LineComment,
    /// A `/* … */` block comment, nesting tracked (doc comments included).
    BlockComment,
    /// A single punctuation or otherwise-unrecognised character.
    Punct,
}

/// One lexed token: classification plus its byte span in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// The `n`-th character at or after the cursor, if any.
    fn peek(&self, n: usize) -> Option<char> {
        self.src.get(self.pos..)?.chars().nth(n)
    }

    /// Advances past one character, returning it.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Advances while `pred` holds.
    fn eat_while(&mut self, mut pred: impl FnMut(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    /// True when the remaining input starts with `s`.
    fn starts_with(&self, s: &str) -> bool {
        self.src
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(s))
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a complete token stream (comments included).
///
/// Total: concatenating the spans covers every non-whitespace byte, and
/// spans never overlap. Unterminated strings and comments extend to the
/// end of input rather than erroring — a linter must keep going.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        if c.is_whitespace() {
            cur.eat_while(char::is_whitespace);
            continue;
        }
        let start = cur.pos;
        let kind = scan_token(&mut cur, c);
        // Defensive: a scanner that consumed nothing would loop forever;
        // swallow one character as punctuation instead.
        if cur.pos == start {
            cur.bump();
        }
        out.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    out
}

fn scan_token(cur: &mut Cursor<'_>, first: char) -> TokenKind {
    match first {
        '/' if cur.peek(1) == Some('/') => {
            cur.eat_while(|c| c != '\n');
            TokenKind::LineComment
        }
        '/' if cur.peek(1) == Some('*') => scan_block_comment(cur),
        '\'' => scan_quote(cur),
        '"' => scan_str(cur),
        c if c.is_ascii_digit() => scan_number(cur),
        c if is_ident_start(c) => scan_ident_or_prefixed(cur),
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// `/* … */` with nesting; unterminated comments run to end of input.
fn scan_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            depth += 1;
            cur.bump();
            cur.bump();
        } else if cur.starts_with("*/") {
            depth -= 1;
            cur.bump();
            cur.bump();
        } else if cur.bump().is_none() {
            break;
        }
    }
    TokenKind::BlockComment
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) from a lone
/// quote. Rustc's rule: a quote followed by an identifier is a lifetime
/// unless a closing quote immediately follows the first character.
fn scan_quote(cur: &mut Cursor<'_>) -> TokenKind {
    match cur.peek(1) {
        // '\n', '\'' — an escape is always a char literal.
        Some('\\') => {
            cur.bump(); // opening '
            scan_char_body(cur)
        }
        // 'x' — any single character directly followed by a closing quote.
        Some(c) if c != '\'' && cur.peek(2) == Some('\'') => {
            cur.bump(); // opening '
            cur.bump(); // the character
            cur.bump(); // closing '
            TokenKind::Char
        }
        // 'ident — a lifetime or loop label.
        Some(c) if is_ident_start(c) => {
            cur.bump(); // '
            cur.eat_while(is_ident_continue);
            TokenKind::Lifetime
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// The body of a char literal after its opening quote: consume one
/// (possibly escaped) character, then the closing quote if present.
fn scan_char_body(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek(0) == Some('\\') {
        cur.bump();
        cur.bump(); // the escaped character ('\\', 'n', 'u', …)
                    // \u{…} escapes: consume through the closing brace.
        if cur.peek(0) == Some('{') {
            cur.eat_while(|c| c != '}' && c != '\'' && c != '\n');
            if cur.peek(0) == Some('}') {
                cur.bump();
            }
        }
    } else {
        cur.bump();
    }
    if cur.peek(0) == Some('\'') {
        cur.bump();
    }
    TokenKind::Char
}

/// A non-raw string body after its opening `"`, with escape handling.
fn scan_str(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening "
    loop {
        match cur.bump() {
            None | Some('"') => break,
            Some('\\') => {
                cur.bump(); // whatever is escaped, including '"' and '\\'
            }
            Some(_) => {}
        }
    }
    TokenKind::Str
}

/// A raw string at `r` / `br`: `#` fence counted, body scanned for the
/// matching `"###` terminator. Returns `None` (consuming nothing) when
/// the input is not actually a raw string (e.g. a raw identifier).
fn scan_raw_str(cur: &mut Cursor<'_>, prefix_len: usize) -> Option<TokenKind> {
    let mut fence = 0usize;
    while cur.peek(prefix_len + fence) == Some('#') {
        fence += 1;
    }
    if cur.peek(prefix_len + fence) != Some('"') {
        return None;
    }
    for _ in 0..prefix_len + fence + 1 {
        cur.bump();
    }
    // Scan for '"' followed by `fence` hashes.
    loop {
        match cur.bump() {
            None => break,
            Some('"') => {
                let mut got = 0usize;
                while got < fence && cur.peek(0) == Some('#') {
                    cur.bump();
                    got += 1;
                }
                if got == fence {
                    break;
                }
            }
            Some(_) => {}
        }
    }
    Some(TokenKind::Str)
}

/// An identifier, or one of the literal prefixes that *look* like
/// identifiers: `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`,
/// `c"…"`.
fn scan_ident_or_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"' | '#')) => {
            if let Some(kind) = scan_raw_str(cur, 1) {
                return kind;
            }
            // `r#ident` — a raw identifier.
            if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump();
                cur.bump();
                cur.eat_while(is_ident_continue);
                return TokenKind::Ident;
            }
        }
        (Some('b'), Some('r')) if matches!(cur.peek(2), Some('"' | '#')) => {
            if let Some(kind) = scan_raw_str(cur, 2) {
                return kind;
            }
        }
        (Some('b' | 'c'), Some('"')) => {
            cur.bump(); // prefix
            return scan_str(cur);
        }
        (Some('b'), Some('\'')) => {
            cur.bump(); // b
            cur.bump(); // opening '
            return scan_char_body(cur);
        }
        _ => {}
    }
    cur.eat_while(is_ident_continue);
    TokenKind::Ident
}

/// A numeric literal. Precision target: never split a literal in a way
/// that misparses the following tokens (`1..=3` must leave `..=` intact,
/// `1.max(2)` must leave `.max` intact).
fn scan_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return TokenKind::Num;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    // A fraction only when '.' is followed by a digit (excludes ranges
    // and method calls on literals).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Exponent: e / E, optional sign, digits.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit) = (cur.peek(1), cur.peek(2));
        let has_exp = match sign {
            Some('+' | '-') => digit.is_some_and(|c| c.is_ascii_digit()),
            Some(c) => c.is_ascii_digit(),
            None => false,
        };
        if has_exp {
            cur.bump(); // e
            if matches!(cur.peek(0), Some('+' | '-')) {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (u8, i64, f32, usize, …).
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    TokenKind::Num
}

/// Byte offsets of the first byte of each line, for span → line mapping.
pub fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line number of a byte offset, given [`line_starts`].
pub fn line_of(starts: &[usize], offset: usize) -> u32 {
    match starts.binary_search(&offset) {
        Ok(i) => i as u32 + 1,
        Err(i) => i as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"quote " inside"#; let t = r"plain";"####;
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Str, r###"r#"quote " inside"#"###)));
        assert!(toks.contains(&(TokenKind::Str, r#"r"plain""#)));
    }

    #[test]
    fn raw_string_hides_code() {
        // The classic grep trap: code-looking text inside a raw string.
        let src = r###"let s = r#"unsafe { thread::spawn }"#;"###;
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.contains(&(TokenKind::Ident, "unsafe")));
        assert!(!toks.contains(&(TokenKind::Ident, "spawn")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a"),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still comment */"
                ),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(
            chars,
            vec![&(TokenKind::Char, "'a'"), &(TokenKind::Char, "'\\n'")]
        );
    }

    #[test]
    fn labels_are_lifetimes() {
        let toks = kinds("'outer: loop { break 'outer; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Lifetime && *t == "'outer")
                .count(),
            2
        );
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = kinds(r##"let a = b"GET"; let b = b'\r'; let c = br#"raw"#;"##);
        assert!(toks.contains(&(TokenKind::Str, r#"b"GET""#)));
        assert!(toks.contains(&(TokenKind::Char, r"b'\r'")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("br#")));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#fn")));
    }

    #[test]
    fn numbers_leave_ranges_and_methods_intact() {
        let toks = kinds("for i in 0..=10 { let x = 1.max(2); let f = 1.5e-3f64; }");
        assert!(toks.contains(&(TokenKind::Num, "0")));
        assert!(toks.contains(&(TokenKind::Num, "10")));
        assert!(toks.contains(&(TokenKind::Num, "1")));
        assert!(toks.contains(&(TokenKind::Ident, "max")));
        assert!(toks.contains(&(TokenKind::Num, "1.5e-3f64")));
    }

    #[test]
    fn comments_hide_code() {
        let toks = kinds("// unsafe { panic!() }\nlet x = 1; /* thread::spawn */");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unsafe"));
        assert!(toks.contains(&(TokenKind::Ident, "let")));
    }

    #[test]
    fn unterminated_constructs_reach_eof() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'\\",
        ] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn spans_cover_non_whitespace() {
        let src = "fn main() { let s = \"x\"; }";
        let toks = lex(src);
        let covered: usize = toks.iter().map(|t| t.end - t.start).sum();
        let non_ws = src.chars().filter(|c| !c.is_whitespace()).count();
        assert_eq!(covered, non_ws);
    }

    #[test]
    fn line_mapping() {
        let src = "a\nbb\nccc\n";
        let starts = line_starts(src);
        assert_eq!(line_of(&starts, 0), 1);
        assert_eq!(line_of(&starts, 2), 2);
        assert_eq!(line_of(&starts, 5), 3);
    }
}
