//! The rule catalog and the per-file analysis engine.
//!
//! Each rule encodes one structural invariant of this workspace that an
//! earlier PR's review established in prose (see ROADMAP.md §Invariants).
//! Rules operate on the token stream from [`crate::lexer`], so string
//! literals and comments can never produce false positives, and carry:
//!
//! * a stable kebab-case **rule id** (`unsafe-outside-pool`, …),
//! * a **path scope** (which files the invariant governs),
//! * a **context scope** (`#[cfg(test)]` regions and `tests/`/`benches/`
//!   trees are exempt where the invariant only governs production code).
//!
//! Violations can be suppressed with a *justified* allow comment:
//!
//! ```text
//! // lint:allow(rule-id): one line explaining why this site is sound
//! ```
//!
//! The justification is mandatory — an allow without one is itself a
//! violation (`malformed-allow`), so suppressions stay auditable. An
//! allow covers its own line and the next line.
//!
//! Fixture files (see `fixtures/`) additionally use two directives the
//! engine parses but ignores outside self-test mode:
//!
//! ```text
//! // lint:fixture-path crates/serve/src/http.rs   (pretend path)
//! // lint:expect(rule-id)                         (a seeded violation)
//! ```

use crate::lexer::{lex, line_of, line_starts, Token, TokenKind};

/// One reported invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id from [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A `lint:expect(rule)` marker parsed from a fixture file.
#[derive(Debug, Clone)]
pub struct Expectation {
    /// The rule the marked line must trigger.
    pub rule: String,
    /// Line the marker sits on; the violation may be here or one below.
    pub line: u32,
}

/// Catalog entry: id plus the invariant it encodes.
pub struct RuleInfo {
    /// Stable kebab-case identifier, used in reports and allow comments.
    pub id: &'static str,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// The rule catalog. ROADMAP.md §Invariants documents the motivating
/// review finding for each entry; keep the two lists in sync.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "unsafe-outside-pool",
        summary: "`unsafe` appears only in crates/pool (the one scoped-lifetime transmute)",
    },
    RuleInfo {
        id: "raw-thread-primitive",
        summary: "no std::thread::{spawn,scope,Builder} or std::sync::{Mutex,Condvar} outside \
                  crates/pool; parallel paths use remi_pool, state locks use the parking_lot shim",
    },
    RuleInfo {
        id: "panic-in-serve",
        summary: "no unwrap/expect/panic!/indexing in remi-serve request-handling modules \
                  (a panic kills a worker serving live traffic)",
    },
    RuleInfo {
        id: "unchecked-binfmt-alloc",
        summary: "file-derived element counts in kb::binfmt readers flow through checked_count \
                  before reaching with_capacity",
    },
    RuleInfo {
        id: "wallclock-in-mining",
        summary: "no Instant::now/SystemTime in core/amie mining logic (results must be \
                  deterministic) or in library files importing remi_obs (time flows through \
                  the injected Clock); justified deadline checks carry allows",
    },
    RuleInfo {
        id: "print-in-library",
        summary: "no println!/eprintln!/dbg! in library crates (bins, examples and benches \
                  own the terminal)",
    },
    RuleInfo {
        id: "delta-lock-order",
        summary: "in kb::delta the compaction gate is never acquired after the writer lock \
                  within one function (gate -> writer, never inverted)",
    },
    RuleInfo {
        id: "hardcoded-test-port",
        summary: "test code binds ephemeral ports (`:0`), never a fixed port number",
    },
    RuleInfo {
        id: "malformed-allow",
        summary: "every lint:allow names known rules and carries a non-empty justification",
    },
    RuleInfo {
        id: "dynamic-event-name",
        summary:
            "flight-recorder event names are static string literals (`EventSpec { name: \"…\" }`) \
                  — the recorder interns specs by name at boot, and a runtime-built name would \
                  allocate on the emit hot path",
    },
];

/// True when `id` names a catalog rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Everything `check_file` learned about one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations after suppression.
    pub violations: Vec<Violation>,
    /// Violations silenced by a justified allow (counted for reporting).
    pub suppressed: usize,
    /// Fixture expectations (`lint:expect`), for self-test mode.
    pub expects: Vec<Expectation>,
    /// Declared pretend path (`lint:fixture-path`), for self-test mode.
    pub fixture_path: Option<String>,
}

// ---------------------------------------------------------------------------
// Per-file context

struct Allow {
    rules: Vec<String>,
    line: u32,
    justified: bool,
}

struct FileCtx<'a> {
    path: String,
    src: &'a str,
    /// Non-comment tokens, in source order.
    code: Vec<Token>,
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[test]` / `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
    allows: Vec<Allow>,
}

impl FileCtx<'_> {
    fn text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(self.src))
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.code.get(i).map(|t| t.kind)
    }

    fn line(&self, i: usize) -> u32 {
        let start = self.code.get(i).map_or(0, |t| t.start);
        line_of(&self.line_starts, start)
    }

    fn in_test_code(&self, i: usize) -> bool {
        let pos = self.code.get(i).map_or(0, |t| t.start);
        self.test_ranges.iter().any(|&(a, b)| pos >= a && pos < b)
    }

    /// True when code tokens starting at `i` spell out `pat` (each element
    /// one token text; `::` must be passed as two `:` entries).
    fn matches(&self, i: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, want)| self.text(i + k) == *want)
    }

    /// Index of the matching close delimiter for the open one at `i`.
    fn matching_close(&self, i: usize, open: &str, close: &str) -> Option<usize> {
        let mut depth = 0usize;
        for j in i..self.code.len() {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        None
    }
}

// Path scoping ---------------------------------------------------------------

struct PathInfo {
    norm: String,
    crate_name: Option<String>,
}

impl PathInfo {
    fn new(path: &str) -> PathInfo {
        let norm = path.replace('\\', "/");
        let norm = norm.trim_start_matches("./").to_string();
        let crate_name = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        PathInfo { norm, crate_name }
    }

    fn is_crate(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }

    fn component(&self, name: &str) -> bool {
        self.norm.split('/').any(|c| c == name)
    }

    /// Whole-file test context: integration tests and benches.
    fn in_test_tree(&self) -> bool {
        self.component("tests") || self.component("benches")
    }

    /// Binary / example targets — they own the terminal and may spawn
    /// client-side OS threads.
    fn is_bin_or_example(&self) -> bool {
        self.component("bin") || self.component("examples") || self.norm.ends_with("main.rs")
    }
}

// ---------------------------------------------------------------------------
// Engine entry point

/// Lexes and checks one file. `path` must be workspace-relative (it
/// drives the per-rule path scoping).
pub fn check_file(path: &str, src: &str) -> FileReport {
    let info = PathInfo::new(path);
    let tokens = lex(src);
    let line_starts = line_starts(src);

    let mut report = FileReport::default();
    let mut allows: Vec<Allow> = Vec::new();
    let mut raw: Vec<Violation> = Vec::new();

    // Pass 1: comments — directives, allows, expectations.
    for t in tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
    {
        // Directives live in plain comments only; doc comments may quote
        // the grammar (as this crate's own docs do) without tripping it.
        let text = t.text(src);
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| text.starts_with(p))
        {
            continue;
        }
        let line = line_of(&line_starts, t.start);
        scan_comment(t.text(src), line, &info, &mut allows, &mut report, &mut raw);
    }

    let code: Vec<Token> = tokens
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut ctx = FileCtx {
        path: info.norm.clone(),
        src,
        code,
        line_starts,
        test_ranges: Vec::new(),
        allows,
    };
    ctx.test_ranges = find_test_ranges(&ctx);

    // Pass 2: the catalog.
    rule_unsafe_outside_pool(&ctx, &info, &mut raw);
    rule_raw_thread_primitive(&ctx, &info, &mut raw);
    rule_panic_in_serve(&ctx, &info, &mut raw);
    rule_unchecked_binfmt_alloc(&ctx, &info, &mut raw);
    rule_wallclock_in_mining(&ctx, &info, &mut raw);
    rule_print_in_library(&ctx, &info, &mut raw);
    rule_delta_lock_order(&ctx, &info, &mut raw);
    rule_hardcoded_test_port(&ctx, &info, &mut raw);
    rule_dynamic_event_name(&ctx, &info, &mut raw);

    // Pass 3: suppression. An allow covers its own line and the next.
    for v in raw {
        let allowed = ctx.allows.iter().any(|a| {
            a.justified
                && (a.line == v.line || a.line + 1 == v.line)
                && a.rules.iter().any(|r| r == v.rule)
        });
        if allowed {
            report.suppressed += 1;
        } else {
            report.violations.push(v);
        }
    }
    report
        .violations
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report
}

// Comment directives ---------------------------------------------------------

fn scan_comment(
    text: &str,
    line: u32,
    info: &PathInfo,
    allows: &mut Vec<Allow>,
    report: &mut FileReport,
    raw: &mut Vec<Violation>,
) {
    if let Some(rest) = find_after(text, "lint:fixture-path") {
        let declared = rest.split_whitespace().next().unwrap_or("");
        if !declared.is_empty() {
            report.fixture_path = Some(declared.to_string());
        }
    }
    if let Some(rest) = find_after(text, "lint:expect") {
        if let Some((rules, _)) = parse_rule_list(rest) {
            for rule in rules {
                report.expects.push(Expectation { rule, line });
            }
        }
    }
    if let Some(rest) = find_after(text, "lint:allow") {
        match parse_rule_list(rest) {
            Some((rules, tail)) => {
                let justification = tail
                    .strip_prefix(':')
                    .map(str::trim)
                    .unwrap_or("")
                    .trim_end_matches("*/")
                    .trim();
                let unknown: Vec<&String> = rules.iter().filter(|r| !known_rule(r)).collect();
                let justified = !justification.is_empty() && unknown.is_empty();
                if justification.is_empty() {
                    raw.push(Violation {
                        rule: "malformed-allow",
                        path: info.norm.clone(),
                        line,
                        message: "lint:allow without a justification (`lint:allow(rule): why`)"
                            .to_string(),
                    });
                }
                if let Some(u) = unknown.first() {
                    raw.push(Violation {
                        rule: "malformed-allow",
                        path: info.norm.clone(),
                        line,
                        message: format!("lint:allow names unknown rule `{u}`"),
                    });
                }
                allows.push(Allow {
                    rules,
                    line,
                    justified,
                });
            }
            None => raw.push(Violation {
                rule: "malformed-allow",
                path: info.norm.clone(),
                line,
                message: "unparseable lint:allow (expected `lint:allow(rule-a, rule-b): why`)"
                    .to_string(),
            }),
        }
    }
}

fn find_after<'a>(haystack: &'a str, needle: &str) -> Option<&'a str> {
    haystack.find(needle).map(|i| &haystack[i + needle.len()..])
}

/// Parses `(rule-a, rule-b)` and returns the ids plus the remaining text.
fn parse_rule_list(rest: &str) -> Option<(Vec<String>, &str)> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rules: Vec<String> = inner[..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if rules.is_empty()
        || rules.iter().any(|r| {
            !r.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        })
    {
        return None;
    }
    Some((rules, &inner[close + 1..]))
}

// Test-region tracking -------------------------------------------------------

/// Byte ranges of items annotated `#[test]` / `#[cfg(test)]` (including
/// `#[cfg(all(test, …))]`; `not(test)` does not count).
fn find_test_ranges(ctx: &FileCtx<'_>) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < ctx.code.len() {
        if ctx.text(i) == "#" && ctx.text(i + 1) == "[" {
            if let Some(close) = ctx.matching_close(i + 1, "[", "]") {
                let idents: Vec<&str> = (i + 2..close)
                    .filter(|&k| ctx.kind(k) == Some(TokenKind::Ident))
                    .map(|k| ctx.text(k))
                    .collect();
                let is_test_attr = idents.contains(&"test") && !idents.contains(&"not");
                if is_test_attr {
                    if let Some(range) = annotated_item_range(ctx, i, close + 1) {
                        ranges.push(range);
                    }
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Byte range from the attribute at `attr_start` through the end of the
/// item that follows (its closing `}` or terminating `;`).
fn annotated_item_range(
    ctx: &FileCtx<'_>,
    attr_start: usize,
    mut i: usize,
) -> Option<(usize, usize)> {
    // Skip further attributes on the same item.
    while ctx.text(i) == "#" && ctx.text(i + 1) == "[" {
        i = ctx.matching_close(i + 1, "[", "]")? + 1;
    }
    let mut paren = 0i64;
    for j in i..ctx.code.len() {
        match ctx.text(j) {
            "(" => paren += 1,
            ")" => paren -= 1,
            "{" if paren == 0 => {
                let close = ctx.matching_close(j, "{", "}")?;
                return Some((ctx.code.get(attr_start)?.start, ctx.code.get(close)?.end));
            }
            ";" if paren == 0 => {
                return Some((ctx.code.get(attr_start)?.start, ctx.code.get(j)?.end));
            }
            _ => {}
        }
    }
    None
}

// Function-body tracking (for the per-function rules) ------------------------

struct FnBody {
    name_idx: usize,
    body_start: usize,
    body_end: usize,
}

fn find_fn_bodies(ctx: &FileCtx<'_>) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < ctx.code.len() {
        if ctx.text(i) == "fn" && ctx.kind(i + 1) == Some(TokenKind::Ident) {
            let mut paren = 0i64;
            let mut j = i + 1;
            let mut body = None;
            while j < ctx.code.len() {
                match ctx.text(j) {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "{" if paren == 0 => {
                        body = ctx.matching_close(j, "{", "}").map(|end| (j, end));
                        break;
                    }
                    // A signature-only `fn` (trait method): no body.
                    ";" if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some((start, end)) = body {
                out.push(FnBody {
                    name_idx: i + 1,
                    body_start: start,
                    body_end: end,
                });
                i += 2; // allow nested fns to be found too
                continue;
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Rules

fn push(ctx: &FileCtx<'_>, raw: &mut Vec<Violation>, rule: &'static str, i: usize, msg: String) {
    raw.push(Violation {
        rule,
        path: ctx.path.clone(),
        line: ctx.line(i),
        message: msg,
    });
}

/// Rule 1: the only `unsafe` in the workspace lives in crates/pool.
fn rule_unsafe_outside_pool(ctx: &FileCtx<'_>, info: &PathInfo, raw: &mut Vec<Violation>) {
    if info.is_crate("pool") {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.kind(i) == Some(TokenKind::Ident) && ctx.text(i) == "unsafe" {
            push(
                ctx,
                raw,
                "unsafe-outside-pool",
                i,
                "`unsafe` outside crates/pool — the workspace confines unsafe to the pool's \
                 scoped-lifetime transmute"
                    .to_string(),
            );
        }
    }
}

/// Rule 2: raw thread/synchronisation primitives stay inside the pool.
fn rule_raw_thread_primitive(ctx: &FileCtx<'_>, info: &PathInfo, raw: &mut Vec<Violation>) {
    if info.is_crate("pool") || info.in_test_tree() {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test_code(i) {
            continue;
        }
        for op in ["spawn", "scope", "Builder"] {
            if ctx.matches(i, &["thread", ":", ":", op]) {
                push(
                    ctx,
                    raw,
                    "raw-thread-primitive",
                    i,
                    format!(
                        "`thread::{op}` outside crates/pool — parallel paths must run on \
                         remi_pool::global()"
                    ),
                );
            }
        }
        if ctx.matches(i, &["std", ":", ":", "sync", ":", ":"]) {
            let after = i + 6;
            let mut offenders: Vec<&str> = Vec::new();
            if ctx.text(after) == "{" {
                if let Some(close) = ctx.matching_close(after, "{", "}") {
                    for k in after + 1..close {
                        let t = ctx.text(k);
                        if t == "Mutex" || t == "Condvar" {
                            offenders.push(if t == "Mutex" { "Mutex" } else { "Condvar" });
                        }
                    }
                }
            } else if ctx.text(after) == "Mutex" || ctx.text(after) == "Condvar" {
                offenders.push(if ctx.text(after) == "Mutex" {
                    "Mutex"
                } else {
                    "Condvar"
                });
            }
            for name in offenders {
                push(
                    ctx,
                    raw,
                    "raw-thread-primitive",
                    i,
                    format!(
                        "`std::sync::{name}` outside crates/pool — use the vendored \
                         parking_lot shim (poison-free) for state locks"
                    ),
                );
            }
        }
        if ctx.matches(i, &["Condvar", ":", ":", "new"]) {
            push(
                ctx,
                raw,
                "raw-thread-primitive",
                i,
                "`Condvar` construction outside crates/pool".to_string(),
            );
        }
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Rule 3: request-handling modules in remi-serve must not panic.
fn rule_panic_in_serve(ctx: &FileCtx<'_>, _info: &PathInfo, raw: &mut Vec<Violation>) {
    const REQUEST_MODULES: &[&str] = &[
        "crates/serve/src/lib.rs",
        "crates/serve/src/http.rs",
        "crates/serve/src/json.rs",
        "crates/serve/src/cache.rs",
        "crates/serve/src/router.rs",
        "crates/serve/src/params.rs",
        "crates/serve/src/query.rs",
        "crates/serve/src/events.rs",
    ];
    if !REQUEST_MODULES.contains(&ctx.path.as_str()) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test_code(i) {
            continue;
        }
        for m in ["unwrap", "expect"] {
            if ctx.matches(i, &[".", m]) && ctx.text(i + 2) == "(" {
                push(
                    ctx,
                    raw,
                    "panic-in-serve",
                    i,
                    format!("`.{m}()` in a request-handling module — a panic kills the worker"),
                );
            }
        }
        for m in ["panic", "unreachable", "todo", "unimplemented"] {
            if ctx.matches(i, &[m, "!"]) {
                push(
                    ctx,
                    raw,
                    "panic-in-serve",
                    i,
                    format!("`{m}!` in a request-handling module — a panic kills the worker"),
                );
            }
        }
        // Indexing: `expr[...]` — an out-of-bounds index panics; use
        // `.get(..)` and map the miss to an HTTP error instead.
        if ctx.text(i) == "[" && i > 0 {
            let prev = ctx.text(i - 1);
            let prev_kind = ctx.kind(i - 1);
            let indexee = prev_kind == Some(TokenKind::Ident) && !KEYWORDS.contains(&prev)
                || prev == ")"
                || prev == "]";
            if indexee {
                push(
                    ctx,
                    raw,
                    "panic-in-serve",
                    i,
                    format!(
                        "indexing `{prev}[..]` in a request-handling module — use .get() and \
                         map the miss to an HTTP error"
                    ),
                );
            }
        }
    }
}

/// Rule 4: binfmt readers validate file-derived counts before allocating.
fn rule_unchecked_binfmt_alloc(ctx: &FileCtx<'_>, _info: &PathInfo, raw: &mut Vec<Violation>) {
    if ctx.path != "crates/kb/src/binfmt.rs" {
        return;
    }
    const BENIGN: &[&str] = &[
        "as", "usize", "u64", "u32", "u16", "u8", "self", "min", "max",
    ];
    for body in find_fn_bodies(ctx) {
        let name = ctx.text(body.name_idx);
        if !(name.starts_with("read_") || name.starts_with("load")) {
            continue;
        }
        // Bindings produced by the checked_count validator.
        let mut checked: Vec<&str> = Vec::new();
        for i in body.body_start..body.body_end {
            if ctx.text(i) == "let"
                && ctx.kind(i + 1) == Some(TokenKind::Ident)
                && ctx.text(i + 2) == "="
                && ctx.text(i + 3) == "checked_count"
            {
                checked.push(ctx.text(i + 1));
            }
        }
        for i in body.body_start..body.body_end {
            if ctx.text(i) != "with_capacity" || ctx.text(i + 1) != "(" {
                continue;
            }
            let Some(close) = ctx.matching_close(i + 1, "(", ")") else {
                continue;
            };
            let offender = (i + 2..close).find(|&k| {
                ctx.kind(k) == Some(TokenKind::Ident)
                    && ctx.text(k - 1) != "."          // field / method receiver
                    && ctx.text(k + 1) != "("          // function call
                    && !BENIGN.contains(&ctx.text(k))
                    && !checked.contains(&ctx.text(k))
            });
            if let Some(k) = offender {
                let ident = ctx.text(k).to_string();
                push(
                    ctx,
                    raw,
                    "unchecked-binfmt-alloc",
                    i,
                    format!(
                        "`with_capacity({ident}…)` in reader `{name}` — `{ident}` did not flow \
                         through checked_count, so a hostile count could force a huge allocation"
                    ),
                );
            }
        }
    }
}

/// Rule 5: mining logic is wall-clock free (deterministic results), and
/// instrumented library crates route time through the injected
/// `remi_obs::Clock` so `FakeClock` tests exercise every timing path.
fn rule_wallclock_in_mining(ctx: &FileCtx<'_>, info: &PathInfo, raw: &mut Vec<Violation>) {
    if info.in_test_tree() {
        return;
    }
    let mining = info.is_crate("core") || info.is_crate("amie");
    // A non-mining library file that imports remi-obs has opted into
    // injected time: reading the raw clock beside the injected one
    // creates timing paths FakeClock tests can never reach. The obs
    // crate itself (MonoClock wraps Instant) and bins/examples own
    // their clocks.
    let instrumented = !mining
        && !info.is_crate("obs")
        && !info.is_bin_or_example()
        && (0..ctx.code.len())
            .any(|i| ctx.kind(i) == Some(TokenKind::Ident) && ctx.text(i) == "remi_obs");
    if !mining && !instrumented {
        return;
    }
    let (context, hint) = if mining {
        ("mining logic", "results must not depend on wall-clock time")
    } else {
        (
            "an instrumented crate",
            "time must flow through the injected `remi_obs::Clock`",
        )
    };
    for i in 0..ctx.code.len() {
        if ctx.in_test_code(i) {
            continue;
        }
        if ctx.matches(i, &["Instant", ":", ":", "now"]) {
            push(
                ctx,
                raw,
                "wallclock-in-mining",
                i,
                format!("`Instant::now` in {context} — {hint}"),
            );
        }
        if ctx.kind(i) == Some(TokenKind::Ident) && ctx.text(i) == "SystemTime" {
            push(
                ctx,
                raw,
                "wallclock-in-mining",
                i,
                format!("`SystemTime` in {context} — {hint}"),
            );
        }
    }
}

/// Rule 6: libraries never print; bins/examples/benches own the terminal.
fn rule_print_in_library(ctx: &FileCtx<'_>, info: &PathInfo, raw: &mut Vec<Violation>) {
    if info.in_test_tree() || info.is_bin_or_example() || !info.component("src") {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test_code(i) {
            continue;
        }
        for m in ["println", "eprintln", "print", "eprint", "dbg"] {
            if ctx.matches(i, &[m, "!"]) {
                push(
                    ctx,
                    raw,
                    "print-in-library",
                    i,
                    format!("`{m}!` in a library crate — return data, let binaries print"),
                );
            }
        }
    }
}

/// Rule 7: compaction-gate / writer-lock acquisition order in kb::delta.
///
/// The gate serialises whole compactions and must be taken *before* the
/// writer lock (`compact` pins, rebuilds, then briefly takes the writer).
/// Acquiring the gate while already holding the writer would let two
/// folds interleave and silently drop triples (PR 5 review finding).
fn rule_delta_lock_order(ctx: &FileCtx<'_>, _info: &PathInfo, raw: &mut Vec<Violation>) {
    if ctx.path != "crates/kb/src/delta.rs" {
        return;
    }
    for body in find_fn_bodies(ctx) {
        let mut writer_at: Option<usize> = None;
        for i in body.body_start..body.body_end {
            let writer_acq = ctx.matches(i, &["writer", ".", "lock"])
                || (ctx.text(i) == "lock_writer" && ctx.text(i.wrapping_sub(1)) != "fn");
            let gate_acq = ctx.matches(i, &["compact_gate", ".", "lock"])
                || (ctx.text(i) == "lock_gate" && ctx.text(i.wrapping_sub(1)) != "fn");
            if writer_acq && writer_at.is_none() {
                writer_at = Some(i);
            }
            if gate_acq {
                if let Some(w) = writer_at {
                    push(
                        ctx,
                        raw,
                        "delta-lock-order",
                        i,
                        format!(
                            "compaction gate acquired after the writer lock (writer taken on \
                             line {}) — the order is gate first, then writer",
                            ctx.line(w)
                        ),
                    );
                }
            }
        }
    }
}

/// Rule 10: flight-recorder event names are static string literals.
///
/// `Recorder::define` interns specs by name once at boot so `emit` can
/// stay allocation-free; a name built at runtime (`format!`, a local
/// binding, a function result) defeats the interning and smuggles an
/// allocation onto the emit hot path. Inside every `EventSpec { … }`
/// struct literal the token after `name:` must therefore be a string
/// literal. The rule applies everywhere — tests included — because the
/// recorder's name-keyed dedup is the same in every context.
fn rule_dynamic_event_name(ctx: &FileCtx<'_>, _info: &PathInfo, raw: &mut Vec<Violation>) {
    for i in 0..ctx.code.len() {
        if ctx.text(i) != "EventSpec" || ctx.text(i + 1) != "{" {
            continue;
        }
        // The struct's own definition (`pub struct EventSpec {`) and any
        // impl/trait block are declarations, not literals.
        let prev = if i == 0 { "" } else { ctx.text(i - 1) };
        if matches!(prev, "struct" | "impl" | "trait" | "enum" | "dyn") {
            continue;
        }
        let Some(close) = ctx.matching_close(i + 1, "{", "}") else {
            continue;
        };
        for k in i + 2..close {
            // A `name:` field initializer — but not a `name::…` path.
            if ctx.text(k) != "name" || ctx.text(k + 1) != ":" || ctx.text(k + 2) == ":" {
                continue;
            }
            if ctx.kind(k + 2) != Some(TokenKind::Str) {
                let value = ctx.text(k + 2).to_string();
                push(
                    ctx,
                    raw,
                    "dynamic-event-name",
                    k,
                    format!(
                        "`EventSpec` name built at runtime (starts with `{value}`) — the \
                         recorder interns names at boot, so `name:` must be a static string \
                         literal"
                    ),
                );
            }
        }
    }
}

/// Rule 8: tests bind ephemeral ports only.
fn rule_hardcoded_test_port(ctx: &FileCtx<'_>, info: &PathInfo, raw: &mut Vec<Violation>) {
    let whole_file_test = info.in_test_tree();
    for (i, t) in ctx.code.iter().enumerate() {
        if t.kind != TokenKind::Str {
            continue;
        }
        if !(whole_file_test || ctx.in_test_code(i)) {
            continue;
        }
        let text = t.text(ctx.src);
        for host in ["127.0.0.1:", "localhost:", "0.0.0.0:", "[::1]:"] {
            let Some(at) = text.find(host) else { continue };
            let digits: String = text[at + host.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(port) = digits.parse::<u32>() {
                if port != 0 {
                    push(
                        ctx,
                        raw,
                        "hardcoded-test-port",
                        i,
                        format!(
                            "test binds fixed port {port} — bind `:0` and read the assigned \
                             address (parallel test runs collide on fixed ports)"
                        ),
                    );
                }
            }
        }
    }
}
