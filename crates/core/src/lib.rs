//! `remi-core` — a Rust reproduction of **REMI: Mining Intuitive Referring
//! Expressions on Knowledge Bases** (Galárraga, Delaunay, Dessalles,
//! EDBT 2020).
//!
//! Given an RDF knowledge base and a set of target entities, REMI returns
//! the *most intuitive* referring expression: a conjunction of subgraph
//! expressions whose matches bind the root variable to exactly the target
//! set, minimal under an estimated Kolmogorov complexity `Ĉ` derived from
//! concept prominence.
//!
//! # Module map
//!
//! * [`bits`] — total-ordered costs in bits, `Ĉ(⊤) = ∞`.
//! * [`powerlaw`] — the Eq. 1 rank/frequency compression.
//! * [`complexity`] — the `Ĉ` cost model (chain rule, prominence rankings).
//! * [`expr`] — the Table 1 language of subgraph expressions.
//! * [`enumerate`] — `subgraphs-expressions(t)` with the §3.5 pruning.
//! * [`eval`] — binding-set evaluation with the §3.5.2 LRU cache.
//! * [`search`] — Algorithms 1 (REMI) and 2 (DFS-REMI).
//! * [`parallel`] — Algorithm 3 (P-REMI / P-DFS-REMI).
//! * [`miner`] — the [`Remi`] facade.
//! * [`verbalize`] — template-based natural-language rendering.
//! * [`fullbrevity`] — Dale's full-brevity baseline (§5, [3]).
//! * [`exceptions`] — REs with exceptions (the §6 future-work extension).
//!
//! # Example
//!
//! ```
//! use remi_core::{Remi, RemiConfig};
//! use remi_kb::KbBuilder;
//!
//! let mut b = KbBuilder::new();
//! b.add_iri("e:Paris", "p:capitalOf", "e:France");
//! b.add_iri("e:Paris", "p:cityIn", "e:France");
//! b.add_iri("e:Lyon", "p:cityIn", "e:France");
//! let kb = b.build().unwrap();
//!
//! let remi = Remi::new(&kb, RemiConfig::default());
//! let paris = kb.node_id_by_iri("e:Paris").unwrap();
//! let outcome = remi.describe(&[paris]);
//! let (expr, cost) = outcome.best.expect("Paris is identifiable");
//! println!("{} ({})", expr.display(&kb), cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod complexity;
pub mod config;
pub mod enumerate;
pub mod eval;
pub mod exceptions;
pub mod expr;
pub mod fullbrevity;
pub mod miner;
pub mod parallel;
pub mod powerlaw;
pub mod search;
pub mod topk;
pub mod verbalize;

pub use bits::Bits;
pub use complexity::{CostModel, EntityCodeMode, Prominence};
pub use config::{EnumerationConfig, LanguageBias, RemiConfig};
pub use expr::{Expression, SubgraphExpr};
pub use miner::{MiningOutcome, MiningStats, Remi};
pub use search::{ScoredExpr, SearchStatus};
pub use topk::{describe_top_k, RankedRe};
