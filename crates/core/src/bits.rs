//! Cost values in bits, with a total order.
//!
//! The paper quantifies intuitiveness as estimated Kolmogorov complexity in
//! bits and defines `Ĉ(⊤) = ∞` for the empty expression. Costs are finite
//! non-negative `f64`s plus infinity; [`Bits`] gives them `Ord` so they can
//! drive priority queues and comparisons without `partial_cmp` noise.

use std::fmt;
use std::ops::Add;

/// A cost in bits. Totally ordered; `Bits::INFINITY` encodes `Ĉ(⊤)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bits(f64);

impl Bits {
    /// Zero bits — the cost of the single most prominent concept.
    pub const ZERO: Bits = Bits(0.0);
    /// The cost of the empty expression `⊤` (paper footnote 6).
    pub const INFINITY: Bits = Bits(f64::INFINITY);

    /// Creates a cost, clamping negatives (power-law extrapolation can dip
    /// below zero for ultra-prominent concepts) and rejecting NaN.
    pub fn new(v: f64) -> Bits {
        assert!(!v.is_nan(), "bit costs cannot be NaN");
        Bits(v.max(0.0))
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True for `Bits::INFINITY`.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// `log2(rank)` for a 1-based rank.
    pub fn from_rank(rank: u64) -> Bits {
        debug_assert!(rank >= 1, "ranks are 1-based");
        Bits((rank.max(1) as f64).log2())
    }
}

impl Eq for Bits {}

impl PartialOrd for Bits {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bits {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is excluded at construction, so this is total.
        self.0.partial_cmp(&other.0).expect("bits are never NaN")
    }
}

impl Add for Bits {
    type Output = Bits;

    fn add(self, rhs: Bits) -> Bits {
        Bits(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Bits {
    fn sum<I: Iterator<Item = Bits>>(iter: I) -> Bits {
        iter.fold(Bits::ZERO, Add::add)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.2} bits", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_values_clamp_to_zero() {
        assert_eq!(Bits::new(-3.5), Bits::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        Bits::new(f64::NAN);
    }

    #[test]
    fn ordering_is_total_including_infinity() {
        let a = Bits::new(1.0);
        let b = Bits::new(2.0);
        assert!(a < b);
        assert!(b < Bits::INFINITY);
        assert_eq!(Bits::INFINITY, Bits::INFINITY);
        let mut v = vec![Bits::INFINITY, b, a, Bits::ZERO];
        v.sort();
        assert_eq!(v, vec![Bits::ZERO, a, b, Bits::INFINITY]);
    }

    #[test]
    fn rank_codes() {
        assert_eq!(Bits::from_rank(1), Bits::ZERO);
        assert_eq!(Bits::from_rank(2).value(), 1.0);
        assert!((Bits::from_rank(1024).value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn addition_and_sum() {
        let total: Bits = [Bits::new(1.0), Bits::new(2.5)].into_iter().sum();
        assert_eq!(total, Bits::new(3.5));
        assert!((Bits::new(1.0) + Bits::INFINITY).is_infinite());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Bits::new(7.25).to_string(), "7.25 bits");
        assert_eq!(Bits::INFINITY.to_string(), "∞");
    }
}
