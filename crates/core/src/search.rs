//! Sequential REMI search — Algorithms 1 (REMI) and 2 (DFS-REMI).
//!
//! Algorithm 1 sorts the common subgraph expressions by `Ĉ` into a priority
//! queue, then explores conjunctions depth-first. When a conjunction is an
//! RE, all of its extensions are REs too but strictly more complex, so the
//! search *prunes by depth* (abandons descendants) and *prunes sideways*
//! (abandons more-complex siblings) — the two rules of §3.3.

use std::time::Instant;

use remi_kb::NodeId;

use crate::bits::Bits;
use crate::complexity::CostModel;
use crate::eval::Evaluator;
use crate::expr::{Expression, SubgraphExpr};

/// A subgraph expression with its precomputed cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredExpr {
    /// The expression.
    pub expr: SubgraphExpr,
    /// Its `Ĉ` in bits.
    pub cost: Bits,
}

/// Why the search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStatus {
    /// The space was exhausted (the returned solution, if any, is optimal
    /// under `Ĉ` within the language bias).
    Completed,
    /// The deadline fired; the result is the best found so far.
    TimedOut,
    /// The target set admits no RE in this language.
    NoSolution,
}

/// Counters for one search run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchCounters {
    /// Search-tree nodes visited (conjunctions pushed).
    pub nodes_visited: u64,
    /// Subtree roots fully explored.
    pub roots_explored: u64,
}

/// Result of the DFS phase.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best RE found with its cost, or `None`.
    pub best: Option<(Expression, Bits)>,
    /// Termination status.
    pub status: SearchStatus,
    /// Counters.
    pub counters: SearchCounters,
}

/// Builds the priority queue of Algorithm 1, line 2: the input expressions
/// scored by `Ĉ` and sorted ascending (ties broken structurally so runs
/// are deterministic).
pub fn build_queue(model: &CostModel<'_>, exprs: &[SubgraphExpr]) -> Vec<ScoredExpr> {
    let mut queue: Vec<ScoredExpr> = exprs
        .iter()
        .map(|&expr| ScoredExpr {
            expr,
            cost: model.subgraph_cost(&expr),
        })
        .collect();
    queue.sort_by(|a, b| a.cost.cmp(&b.cost).then(a.expr.cmp(&b.expr)));
    queue
}

/// Algorithm 2 — DFS-REMI. Explores the subtree rooted at `queue[root]`,
/// combining it with the remaining (more complex) expressions.
///
/// Returns the least-complex RE prefixed with the root, or `None`.
pub fn dfs_remi(
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    root: usize,
    sorted_targets: &[u32],
    deadline: Option<Instant>,
    counters: &mut SearchCounters,
) -> Option<(Expression, Bits)> {
    // G' = {ρ} ∪ G — the root followed by everything after it.
    let mut stack: Vec<usize> = Vec::new(); // S := {⊤}: indices into queue
    let mut best: Option<(Expression, Bits)> = None;

    let mut i = root;
    while i < queue.len() {
        if let Some(d) = deadline {
            // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
            if Instant::now() >= d {
                return best;
            }
        }
        // Line 3: push ρ′.
        stack.push(i);
        counters.nodes_visited += 1;

        // Line 4–5: e′ := ∧ S; test e′(K) = T.
        let parts: Vec<SubgraphExpr> = stack.iter().map(|&k| queue[k].expr).collect();
        if eval.is_referring_expression(&parts, sorted_targets) {
            // Line 6: remember the least complex RE.
            let cost: Bits = stack.iter().map(|&k| queue[k].cost).sum();
            let better = match &best {
                Some((_, b)) => cost < *b,
                None => true,
            };
            if better {
                best = Some((Expression { parts }, cost));
            }
            // Line 7: pruning by depth; line 8: side pruning.
            stack.pop();
            stack.pop();
            // Line 9: nothing left to backtrack into — done.
            if stack.is_empty() && best.is_some() {
                // All remaining combinations are prefixed by strictly more
                // complex roots of this subtree; the best here is final.
                return best;
            }
        }
        i += 1;
    }
    best
}

/// Algorithm 1 — REMI. `queue` must be sorted ascending by cost
/// (see [`build_queue`]).
///
/// `incumbent_root_cutoff` adds the sound optimisation of stopping the
/// root loop once the next root alone costs at least as much as the
/// incumbent (conjunction costs only grow, and the queue is sorted).
pub fn remi_search(
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    targets: &[NodeId],
    deadline: Option<Instant>,
    incumbent_root_cutoff: bool,
) -> SearchResult {
    let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted_targets.sort_unstable();
    sorted_targets.dedup();

    let mut counters = SearchCounters::default();
    let mut best: Option<(Expression, Bits)> = None;

    for root in 0..queue.len() {
        if let Some(d) = deadline {
            // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
            if Instant::now() >= d {
                return SearchResult {
                    best,
                    status: SearchStatus::TimedOut,
                    counters,
                };
            }
        }
        if incumbent_root_cutoff {
            if let Some((_, b)) = &best {
                if queue[root].cost >= *b {
                    // Every expression rooted here or later costs ≥ the
                    // incumbent; the incumbent is optimal.
                    return SearchResult {
                        best,
                        status: SearchStatus::Completed,
                        counters,
                    };
                }
            }
        }
        let found = dfs_remi(eval, queue, root, &sorted_targets, deadline, &mut counters);
        counters.roots_explored += 1;
        match (found, &mut best) {
            (Some((e, c)), Some((be, bc))) => {
                if c < *bc {
                    *be = e;
                    *bc = c;
                }
            }
            (Some(pair), slot @ None) => *slot = Some(pair),
            (None, best) => {
                // Line 8 of Alg. 1: the first root is combined with every
                // other expression; if even that finds nothing, no RE
                // exists for T in this language.
                if root == 0 && best.is_none() {
                    return SearchResult {
                        best: None,
                        status: SearchStatus::NoSolution,
                        counters,
                    };
                }
            }
        }
    }

    let status = if best.is_some() {
        SearchStatus::Completed
    } else {
        SearchStatus::NoSolution
    };
    SearchResult {
        best,
        status,
        counters,
    }
}

/// Parallel variant of [`build_queue`]: scores expressions on `threads`
/// worker tasks of the shared [`remi_pool::global`] pool before sorting.
/// §3.5.2: *"we parallelized the construction and sorting of the queue"* —
/// scoring dominates queue construction because each `Ĉ` evaluation may
/// materialise join rankings.
pub fn build_queue_parallel(
    model: &CostModel<'_>,
    exprs: &[SubgraphExpr],
    threads: usize,
) -> Vec<ScoredExpr> {
    let threads = threads.max(1);
    if threads == 1 || exprs.len() < 256 {
        return build_queue(model, exprs);
    }
    let scored = parking_lot::Mutex::new(Vec::with_capacity(exprs.len()));
    remi_pool::broadcast_chunks(remi_pool::global(), exprs.len(), threads, &|range| {
        let part: Vec<ScoredExpr> = exprs[range]
            .iter()
            .map(|&expr| ScoredExpr {
                expr,
                cost: model.subgraph_cost(&expr),
            })
            .collect();
        scored.lock().extend(part);
    });
    // Chunk arrival order is scheduler-dependent, but the comparator is a
    // total order (cost, then structure), so the sort restores determinism.
    let mut queue = scored.into_inner();
    queue.sort_by(|a, b| a.cost.cmp(&b.cost).then(a.expr.cmp(&b.expr)));
    queue
}

/// Dispatches to sequential REMI or P-REMI depending on `threads`.
pub fn parallel_or_sequential(
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    targets: &[NodeId],
    deadline: Option<Instant>,
    threads: usize,
    incumbent_root_cutoff: bool,
) -> SearchResult {
    if threads > 1 {
        crate::parallel::parallel_remi_search(eval, queue, targets, deadline, threads)
    } else {
        remi_search(eval, queue, targets, deadline, incumbent_root_cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexity::{CostModel, EntityCodeMode, Prominence};
    use crate::config::EnumerationConfig;
    use crate::enumerate::{common_subgraph_expressions, EnumContext};
    use remi_kb::{KbBuilder, KnowledgeBase};

    fn rennes_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for city in ["Rennes", "Nantes"] {
            b.add_iri(&format!("e:{city}"), "p:in", "e:Brittany");
            b.add_iri(&format!("e:{city}"), "p:mayor", &format!("e:mayor{city}"));
            b.add_iri(&format!("e:mayor{city}"), "p:party", "e:Socialist");
        }
        // Distractors sharing parts of the description.
        b.add_iri("e:Vannes", "p:in", "e:Brittany");
        b.add_iri("e:Vannes", "p:mayor", "e:mayorVannes");
        b.add_iri("e:mayorVannes", "p:party", "e:Green");
        b.add_iri("e:Lille", "p:mayor", "e:mayorLille");
        b.add_iri("e:mayorLille", "p:party", "e:Socialist");
        b.build().unwrap()
    }

    fn mine<'a>(
        kb: &'a KnowledgeBase,
        targets: &[&str],
        cutoff: bool,
    ) -> (SearchResult, CostModel<'a>) {
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(kb, &cfg);
        let ids: Vec<remi_kb::NodeId> = targets
            .iter()
            .map(|t| kb.node_id_by_iri(t).unwrap())
            .collect();
        let (common, _) = common_subgraph_expressions(kb, &ids, &cfg, &ctx);
        let model = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let queue = build_queue(&model, &common);
        let eval = Evaluator::new(kb, 1024);
        let result = remi_search(&eval, &queue, &ids, None, cutoff);
        (result, model)
    }

    #[test]
    fn finds_the_rennes_nantes_re() {
        let kb = rennes_kb();
        let (result, _) = mine(&kb, &["e:Rennes", "e:Nantes"], true);
        assert_eq!(result.status, SearchStatus::Completed);
        let (expr, cost) = result.best.expect("an RE exists");
        assert!(!cost.is_infinite());
        // Verify it really is an RE: bindings == {Rennes, Nantes}.
        let eval = Evaluator::new(&kb, 16);
        let mut targets = vec![
            kb.node_id_by_iri("e:Rennes").unwrap().0,
            kb.node_id_by_iri("e:Nantes").unwrap().0,
        ];
        targets.sort_unstable();
        assert!(eval.is_referring_expression(&expr.parts, &targets));
        // The canonical answer needs both conjuncts: in(x, Brittany) alone
        // also matches Vannes, the Socialist-mayor path alone also matches
        // Lille.
        assert!(expr.parts.len() >= 2, "{expr:?}");
    }

    #[test]
    fn single_entity_with_unique_atom() {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:in", "e:France");
        b.add_iri("e:Lyon", "p:in", "e:France");
        let kb = b.build().unwrap();
        let (result, model) = mine(&kb, &["e:Paris"], true);
        let (expr, cost) = result.best.expect("capitalOf(x, France) is an RE");
        let capital = kb.pred_id("p:capitalOf").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        // capitalOf(x, France) is an RE; the search may report it alone or
        // in a cost-tied conjunction (ties are allowed by the algorithm),
        // but the returned cost can never exceed the single atom's.
        let atom = SubgraphExpr::Atom {
            p: capital,
            o: france,
        };
        assert!(expr.parts.contains(&atom), "{expr:?}");
        assert!(cost <= model.subgraph_cost(&atom));
    }

    #[test]
    fn no_solution_when_targets_are_indistinguishable() {
        let mut b = KbBuilder::new();
        // twin1 and twin2 have identical descriptions; asking for just one
        // of them cannot succeed.
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        let kb = b.build().unwrap();
        let (result, _) = mine(&kb, &["e:twin1"], true);
        assert_eq!(result.status, SearchStatus::NoSolution);
        assert!(result.best.is_none());
    }

    #[test]
    fn pair_of_indistinguishable_twins_is_describable_together() {
        let mut b = KbBuilder::new();
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        b.add_iri("e:other", "p:in", "e:City");
        let kb = b.build().unwrap();
        let (result, _) = mine(&kb, &["e:twin1", "e:twin2"], true);
        let (expr, _) = result.best.expect("in(x, Town) describes both twins");
        let in_p = kb.pred_id("p:in").unwrap();
        let town = kb.node_id_by_iri("e:Town").unwrap();
        assert_eq!(expr.parts, vec![SubgraphExpr::Atom { p: in_p, o: town }]);
    }

    #[test]
    fn returned_solution_is_cost_minimal() {
        // Exhaustively verify optimality on a small instance: enumerate all
        // subsets of common expressions and find the true minimum-cost RE.
        let kb = rennes_kb();
        let (result, model) = mine(&kb, &["e:Rennes", "e:Nantes"], true);
        let (_, reported_cost) = result.best.expect("solution exists");

        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let (common, _) = common_subgraph_expressions(&kb, &targets, &cfg, &ctx);
        let eval = Evaluator::new(&kb, 1024);
        let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
        sorted_targets.sort_unstable();

        let n = common.len();
        assert!(n <= 16, "exhaustive check needs a small space, got {n}");
        let mut true_min = Bits::INFINITY;
        for mask in 1u32..(1 << n) {
            let parts: Vec<SubgraphExpr> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| common[i])
                .collect();
            if eval.is_referring_expression(&parts, &sorted_targets) {
                let cost = model.parts_cost(&parts);
                if cost < true_min {
                    true_min = cost;
                }
            }
        }
        assert_eq!(reported_cost, true_min);
    }

    #[test]
    fn cutoff_and_no_cutoff_agree_on_cost() {
        let kb = rennes_kb();
        let (with, _) = mine(&kb, &["e:Rennes", "e:Nantes"], true);
        let (without, _) = mine(&kb, &["e:Rennes", "e:Nantes"], false);
        assert_eq!(
            with.best.as_ref().map(|(_, c)| *c),
            without.best.as_ref().map(|(_, c)| *c)
        );
        // The cutoff must not explore more roots than the full loop.
        assert!(with.counters.roots_explored <= without.counters.roots_explored);
    }

    #[test]
    fn timeout_reports_timed_out() {
        let kb = rennes_kb();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let (common, _) = common_subgraph_expressions(&kb, &targets, &cfg, &ctx);
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let queue = build_queue(&model, &common);
        drop(model);
        let eval = Evaluator::new(&kb, 16);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let result = remi_search(&eval, &queue, &targets, Some(past), true);
        assert_eq!(result.status, SearchStatus::TimedOut);
    }

    #[test]
    fn queue_is_sorted_ascending() {
        let kb = rennes_kb();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let (exprs, _) = common_subgraph_expressions(&kb, &[rennes], &cfg, &ctx);
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let queue = build_queue(&model, &exprs);
        for w in queue.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn empty_queue_means_no_solution() {
        let kb = rennes_kb();
        let eval = Evaluator::new(&kb, 16);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let result = remi_search(&eval, &[], &[rennes], None, true);
        assert_eq!(result.status, SearchStatus::NoSolution);
    }
}
