//! REs with exceptions — the paper's §6 future-work extension.
//!
//! *"We also envision to relax the unambiguity constraint to mine REs
//! with exceptions."* An RE-with-exceptions for `T` is an expression
//! whose bindings are `T ∪ E` for a small exception set `E`; the
//! description reads "…, except <the members of E>". Coding the
//! exceptions costs bits too: each exception entity is coded by its rank
//! in the global prominence ranking, so a nearly-unambiguous expression
//! built from prominent concepts can beat a convoluted exact one.

use remi_kb::{KnowledgeBase, NodeId};

use crate::bits::Bits;
use crate::complexity::CostModel;
use crate::eval::Evaluator;
use crate::expr::Expression;
use crate::search::ScoredExpr;

/// An expression plus the entities it wrongly includes.
#[derive(Debug, Clone)]
pub struct ExceptionRe {
    /// The expression (matches `targets ∪ exceptions`).
    pub expr: Expression,
    /// The extra entities, sorted by id.
    pub exceptions: Vec<NodeId>,
    /// Total cost: `Ĉ(expr)` plus the exception coding cost.
    pub cost: Bits,
}

/// Coding cost of one exception: `log2` of the entity's 1-based rank in
/// the global prominence ranking, approximated via its frequency — the
/// same code the `Ĉ` scheme would assign to naming the entity outright.
fn exception_bits(model: &CostModel<'_>, kb: &KnowledgeBase, e: NodeId) -> Bits {
    // Rank ≈ (#entities with higher prominence) + 1; rather than a full
    // ranking we use the power-law relation between frequency and rank
    // that already underpins Eq. 1: rare entities cost ~log2(N).
    let prom = model.node_prominence(e).max(1.0);
    let n = kb.num_nodes().max(2) as f64;
    Bits::new((n / prom).log2())
}

/// Mines an RE allowing up to `max_exceptions` extra entities. Considers
/// prefixes of the scored queue (single subgraph expressions and greedy
/// conjunctions), keeping the cheapest `(expr, exceptions)` combination.
///
/// Returns `None` when nothing within the exception budget exists.
pub fn describe_with_exceptions(
    kb: &KnowledgeBase,
    model: &CostModel<'_>,
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    targets: &[NodeId],
    max_exceptions: usize,
) -> Option<ExceptionRe> {
    let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted_targets.sort_unstable();
    sorted_targets.dedup();

    let mut best: Option<ExceptionRe> = None;

    let consider = |parts: &[crate::expr::SubgraphExpr], best: &mut Option<ExceptionRe>| {
        let bindings = eval.conjunction_bindings(parts);
        // Bindings must cover all targets (guaranteed for queue elements)
        // and exceed them by at most the budget.
        if bindings.len() < sorted_targets.len()
            || bindings.len() > sorted_targets.len() + max_exceptions
        {
            return;
        }
        let mut exceptions: Vec<NodeId> = Vec::new();
        let mut ti = 0usize;
        for &b in &bindings {
            if ti < sorted_targets.len() && sorted_targets[ti] == b {
                ti += 1;
            } else {
                exceptions.push(NodeId(b));
            }
        }
        if ti < sorted_targets.len() {
            return; // a target is missing — not a covering expression
        }
        let mut cost = model.parts_cost(parts);
        for &e in &exceptions {
            cost = cost + exception_bits(model, kb, e);
        }
        let better = match best {
            Some(b) => cost < b.cost,
            None => true,
        };
        if better {
            *best = Some(ExceptionRe {
                expr: Expression {
                    parts: parts.to_vec(),
                },
                exceptions,
                cost,
            });
        }
    };

    // Single expressions, in cost order.
    for scored in queue {
        if let Some(b) = &best {
            if scored.cost >= b.cost {
                break; // everything later is at least as costly before exceptions
            }
        }
        consider(&[scored.expr], &mut best);
    }
    // Greedy pairs: the cheapest expression with each successor.
    if let Some(first) = queue.first() {
        for second in queue.iter().skip(1).take(64) {
            if let Some(b) = &best {
                if first.cost + second.cost >= b.cost {
                    break;
                }
            }
            consider(&[first.expr, second.expr], &mut best);
        }
    }

    best
}

/// Verbalises an exception RE: "…, except A and B".
pub fn verbalize_with_exceptions(kb: &KnowledgeBase, re: &ExceptionRe) -> String {
    let base = crate::verbalize::verbalize(kb, &re.expr);
    if re.exceptions.is_empty() {
        return base;
    }
    let names: Vec<String> = re.exceptions.iter().map(|&e| kb.node_name(e)).collect();
    format!("{base}, except {}", names.join(" and "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexity::{EntityCodeMode, Prominence};
    use crate::config::EnumerationConfig;
    use crate::enumerate::{common_subgraph_expressions, EnumContext};
    use crate::search::build_queue;
    use remi_kb::KbBuilder;

    fn setup<'a>(kb: &'a KnowledgeBase, targets: &[NodeId]) -> (CostModel<'a>, Vec<ScoredExpr>) {
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(kb, &cfg);
        let (common, _) = common_subgraph_expressions(kb, targets, &cfg, &ctx);
        let model = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let queue = build_queue(&model, &common);
        (model, queue)
    }

    #[test]
    fn exact_re_needs_no_exceptions() {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:in", "e:France");
        b.add_iri("e:Lyon", "p:in", "e:France");
        let kb = b.build().unwrap();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let (model, queue) = setup(&kb, &[paris]);
        let eval = Evaluator::new(&kb, 64);
        let re = describe_with_exceptions(&kb, &model, &eval, &queue, &[paris], 2)
            .expect("exact RE exists");
        assert!(re.exceptions.is_empty());
    }

    #[test]
    fn tolerates_one_exception_where_no_exact_re_exists() {
        let mut b = KbBuilder::new();
        // twin1, twin2 both "in Town"; twin1 alone has no exact RE, but
        // "in Town, except twin2" works.
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        b.add_iri("e:other", "p:in", "e:City");
        let kb = b.build().unwrap();
        let twin1 = kb.node_id_by_iri("e:twin1").unwrap();
        let twin2 = kb.node_id_by_iri("e:twin2").unwrap();
        let (model, queue) = setup(&kb, &[twin1]);
        let eval = Evaluator::new(&kb, 64);

        assert!(
            describe_with_exceptions(&kb, &model, &eval, &queue, &[twin1], 0).is_none(),
            "no exact RE for one twin"
        );
        let re = describe_with_exceptions(&kb, &model, &eval, &queue, &[twin1], 1)
            .expect("one exception suffices");
        assert_eq!(re.exceptions, vec![twin2]);
        let text = verbalize_with_exceptions(&kb, &re);
        assert!(text.contains("except"), "{text}");
        assert!(text.contains("twin2"), "{text}");
    }

    #[test]
    fn exception_budget_is_respected() {
        let mut b = KbBuilder::new();
        for i in 0..5 {
            b.add_iri(&format!("e:m{i}"), "p:in", "e:Town");
        }
        let kb = b.build().unwrap();
        let m0 = kb.node_id_by_iri("e:m0").unwrap();
        let (model, queue) = setup(&kb, &[m0]);
        let eval = Evaluator::new(&kb, 64);
        // Four exceptions needed; budgets below that fail.
        for budget in 0..4 {
            assert!(
                describe_with_exceptions(&kb, &model, &eval, &queue, &[m0], budget).is_none(),
                "budget {budget} should not suffice"
            );
        }
        let re = describe_with_exceptions(&kb, &model, &eval, &queue, &[m0], 4).unwrap();
        assert_eq!(re.exceptions.len(), 4);
    }

    #[test]
    fn exceptions_cost_bits() {
        let mut b = KbBuilder::new();
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        let kb = b.build().unwrap();
        let twin1 = kb.node_id_by_iri("e:twin1").unwrap();
        let (model, queue) = setup(&kb, &[twin1]);
        let eval = Evaluator::new(&kb, 64);
        let re = describe_with_exceptions(&kb, &model, &eval, &queue, &[twin1], 1).unwrap();
        // Total cost exceeds the bare expression cost: exceptions are paid.
        assert!(re.cost > model.expression_cost(&re.expr) || re.exceptions.is_empty());
    }
}
