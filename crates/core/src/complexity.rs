//! The estimated Kolmogorov complexity `Ĉ` of expressions (§3.1, §3.5.3).
//!
//! Concepts are coded by their position in a prominence ranking: a concept
//! of rank `k` costs `log2(k)` bits. The chain rule narrows the ranking as
//! context accumulates:
//!
//! * a predicate is ranked among all predicates;
//! * a bound object is ranked among the objects of its predicate
//!   (`k(I | p)`);
//! * a joined predicate is ranked among the predicates that allow a
//!   first-to-second-argument join with its predecessor
//!   (`k(p₁ | p₀)` for paths, and analogously the parallel-join ranking
//!   for closed shapes);
//!
//! Conditional entity rankings are either kept exactly (one rank table per
//! predicate) or compressed per Eq. 1 into per-predicate power-law
//! coefficients — the paper's choice (§3.5.3).

use parking_lot::Mutex;
use std::sync::Arc;

use remi_kb::fx::FxHashMap;
use remi_kb::pagerank::{pagerank, PageRank, PageRankConfig};
use remi_kb::{KnowledgeBase, NodeId, PredId};

use crate::bits::Bits;
use crate::eval::sorted_intersects;
use crate::expr::{Expression, SubgraphExpr};
use crate::powerlaw::{fit_power_law, ranking_points, PowerLawFit};

/// The prominence metric behind the ranking (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prominence {
    /// `fr`: number of facts a concept occurs in.
    Frequency,
    /// `pr`: PageRank over the KB's entity link graph (the endogenous
    /// stand-in for the Wikipedia page rank — DESIGN.md §2).
    PageRank,
}

/// How conditional entity codes `l(I_b | p)` are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityCodeMode {
    /// Exact rank tables per predicate.
    ExactRank,
    /// Per-predicate power-law fit (Eq. 1) — the paper's compression.
    PowerLaw,
}

/// Maximum subjects examined when building a parallel-join ranking; keeps
/// lazily computed closed-shape rankings bounded on huge predicates.
const CLOSED_RANK_SUBJECT_CAP: usize = 4096;

type RankMap = FxHashMap<u32, u32>;

/// The complexity model `Ĉ` for one KB and prominence metric.
pub struct CostModel<'kb> {
    kb: &'kb KnowledgeBase,
    metric: Prominence,
    mode: EntityCodeMode,
    /// 1-based rank per predicate, by descending fact count (`fr` is used
    /// for predicates even under `pr`, which is undefined for them).
    pred_rank: Vec<u32>,
    /// Per-node prominence: frequency (as f64) or PageRank score.
    node_prom: Vec<f64>,
    /// Eq. 1 coefficients per predicate.
    fits: Vec<PowerLawFit>,
    /// Exact conditional rank tables (only in `ExactRank` mode).
    exact: Vec<RankMap>,
    /// Lazily built first-to-second-argument join rankings per predicate.
    join_rank: Mutex<FxHashMap<u32, Arc<RankMap>>>,
    /// Lazily built parallel-join rankings per predicate.
    closed_rank: Mutex<FxHashMap<u32, Arc<RankMap>>>,
}

impl<'kb> CostModel<'kb> {
    /// Builds a cost model. For [`Prominence::PageRank`] this computes
    /// PageRank internally; use [`CostModel::with_pagerank`] to reuse a
    /// precomputed one.
    pub fn new(kb: &'kb KnowledgeBase, metric: Prominence, mode: EntityCodeMode) -> Self {
        let pr = match metric {
            Prominence::PageRank => Some(pagerank(kb, PageRankConfig::default())),
            Prominence::Frequency => None,
        };
        Self::build(kb, metric, mode, pr.as_ref())
    }

    /// Builds a cost model with a precomputed PageRank.
    pub fn with_pagerank(kb: &'kb KnowledgeBase, mode: EntityCodeMode, pr: &PageRank) -> Self {
        Self::build(kb, Prominence::PageRank, mode, Some(pr))
    }

    fn build(
        kb: &'kb KnowledgeBase,
        metric: Prominence,
        mode: EntityCodeMode,
        pr: Option<&PageRank>,
    ) -> Self {
        // Predicate ranking by fact count, descending; competition ranks.
        let mut preds: Vec<u32> = (0..kb.num_preds() as u32).collect();
        preds.sort_by_key(|&p| (std::cmp::Reverse(kb.pred_frequency(PredId(p))), p));
        let mut pred_rank = vec![0u32; kb.num_preds()];
        let mut rank = 1u32;
        for (i, &p) in preds.iter().enumerate() {
            if i > 0 && kb.pred_frequency(PredId(preds[i - 1])) > kb.pred_frequency(PredId(p)) {
                rank = (i + 1) as u32;
            }
            pred_rank[p as usize] = rank;
        }

        // Node prominence.
        let node_prom: Vec<f64> = match metric {
            Prominence::Frequency => (0..kb.num_nodes() as u32)
                .map(|n| f64::from(kb.node_frequency(NodeId(n))))
                .collect(),
            Prominence::PageRank => {
                let pr = pr.expect("PageRank metric requires scores");
                (0..kb.num_nodes() as u32)
                    .map(|n| pr.score(NodeId(n)))
                    .collect()
            }
        };

        // Per-predicate conditional structures.
        let mut fits = Vec::with_capacity(kb.num_preds());
        let mut exact: Vec<RankMap> = Vec::with_capacity(kb.num_preds());
        for p in kb.pred_ids() {
            let idx = kb.index(p);
            // Objects of p with their conditional prominence. Under `fr`
            // the paper conditions on the predicate (fr(I | p)); under `pr`
            // the object's global score is used, ranked within p's objects.
            let mut objs: Vec<(u32, f64)> = idx
                .iter_object_frequencies()
                .map(|(o, cond_freq)| {
                    let prom = match metric {
                        Prominence::Frequency => cond_freq as f64,
                        Prominence::PageRank => node_prom[o.idx()],
                    };
                    (o.0, prom)
                })
                .collect();
            objs.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("prominence is finite")
                    .then(a.0.cmp(&b.0))
            });
            let proms: Vec<f64> = objs.iter().map(|&(_, v)| v).collect();
            let points = ranking_points(&proms);
            fits.push(fit_power_law(&points));
            if mode == EntityCodeMode::ExactRank {
                let mut map = RankMap::default();
                map.reserve(objs.len());
                for (i, &(o, _)) in objs.iter().enumerate() {
                    map.insert(o, points[i].1 as u32);
                }
                exact.push(map);
            } else {
                exact.push(RankMap::default());
            }
        }

        CostModel {
            kb,
            metric,
            mode,
            pred_rank,
            node_prom,
            fits,
            exact,
            join_rank: Mutex::new(FxHashMap::default()),
            closed_rank: Mutex::new(FxHashMap::default()),
        }
    }

    /// The underlying KB.
    pub fn kb(&self) -> &'kb KnowledgeBase {
        self.kb
    }

    /// The prominence metric in use.
    pub fn metric(&self) -> Prominence {
        self.metric
    }

    /// The entity-code mode in use.
    pub fn mode(&self) -> EntityCodeMode {
        self.mode
    }

    /// The Eq. 1 fits, indexed by predicate (for the R² experiment).
    pub fn fits(&self) -> &[PowerLawFit] {
        &self.fits
    }

    /// Mean R² over predicates whose conditional ranking has at least
    /// `min_points` distinct objects (degenerate fits excluded).
    pub fn average_r2(&self, min_points: usize) -> f64 {
        let eligible: Vec<f64> = self
            .fits
            .iter()
            .filter(|f| f.n >= min_points)
            .map(|f| f.r2)
            .collect();
        if eligible.is_empty() {
            return f64::NAN;
        }
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }

    /// `l(p_b) = log2(k(p))` — the code length of a predicate.
    pub fn pred_bits(&self, p: PredId) -> Bits {
        Bits::from_rank(u64::from(self.pred_rank[p.idx()]))
    }

    /// The prominence value of a node under the current metric.
    pub fn node_prominence(&self, n: NodeId) -> f64 {
        self.node_prom[n.idx()]
    }

    /// `l(I_b | p) = log2(k(I | p))` — conditional code length of an
    /// object given its predicate.
    pub fn entity_bits(&self, o: NodeId, given: PredId) -> Bits {
        match self.mode {
            EntityCodeMode::ExactRank => {
                let rank = self.exact[given.idx()]
                    .get(&o.0)
                    .copied()
                    .unwrap_or_else(|| (self.kb.index(given).num_objects() + 1) as u32);
                Bits::from_rank(u64::from(rank))
            }
            EntityCodeMode::PowerLaw => {
                let prom = match self.metric {
                    Prominence::Frequency => self.kb.index(given).object_frequency(o) as f64,
                    Prominence::PageRank => self.node_prom[o.idx()],
                };
                if prom <= 0.0 {
                    // Unseen in this context: costs one past the last rank.
                    return Bits::from_rank((self.kb.index(given).num_objects() + 1) as u64);
                }
                Bits::new(self.fits[given.idx()].bits_for(prom))
            }
        }
    }

    /// `l(p₁ | p₀)` — rank of `p₁` among the predicates that allow a
    /// first-to-second-argument join with `p₀` (the path chain rule).
    pub fn join_bits(&self, p1: PredId, given_p0: PredId) -> Bits {
        let map = self.join_ranking(given_p0);
        let rank = map.get(&p1.0).copied().unwrap_or((map.len() + 2) as u32);
        Bits::from_rank(u64::from(rank))
    }

    /// The parallel-join analogue for closed shapes: rank of `q` among the
    /// predicates `q` with `∃x,y: p₀(x,y) ∧ q(x,y)`.
    pub fn closed_bits(&self, q: PredId, given_p0: PredId) -> Bits {
        let map = self.closed_ranking(given_p0);
        let rank = map.get(&q.0).copied().unwrap_or((map.len() + 2) as u32);
        Bits::from_rank(u64::from(rank))
    }

    fn join_ranking(&self, p0: PredId) -> Arc<RankMap> {
        if let Some(hit) = self.join_rank.lock().get(&p0.0) {
            return Arc::clone(hit);
        }
        // Count, for each predicate q, the distinct objects y of p0 that
        // are subjects of q — the strength of the p0 ⋈ q join.
        let mut weight: FxHashMap<u32, u32> = FxHashMap::default();
        for y in self.kb.index(p0).iter_objects() {
            for q in self.kb.preds_of_subject(y) {
                *weight.entry(q).or_insert(0) += 1;
            }
        }
        let map = Arc::new(weights_to_ranks(weight));
        self.join_rank.lock().insert(p0.0, Arc::clone(&map));
        map
    }

    fn closed_ranking(&self, p0: PredId) -> Arc<RankMap> {
        if let Some(hit) = self.closed_rank.lock().get(&p0.0) {
            return Arc::clone(hit);
        }
        let mut weight: FxHashMap<u32, u32> = FxHashMap::default();
        for (s, objs) in self
            .kb
            .index(p0)
            .iter_subjects()
            .take(CLOSED_RANK_SUBJECT_CAP)
        {
            for q in self.kb.preds_of_subject(s) {
                if q == p0.0 {
                    continue;
                }
                if sorted_intersects(objs, self.kb.objects(PredId(q), s)) {
                    *weight.entry(q).or_insert(0) += 1;
                }
            }
        }
        let map = Arc::new(weights_to_ranks(weight));
        self.closed_rank.lock().insert(p0.0, Arc::clone(&map));
        map
    }

    /// `Ĉ` of a subgraph expression (the chain-rule sums of §3.1).
    pub fn subgraph_cost(&self, e: &SubgraphExpr) -> Bits {
        match *e {
            SubgraphExpr::Atom { p, o } => self.pred_bits(p) + self.entity_bits(o, p),
            SubgraphExpr::Path { p0, p1, o } => {
                self.pred_bits(p0) + self.join_bits(p1, p0) + self.entity_bits(o, p1)
            }
            SubgraphExpr::PathStar { p0, p1, o1, p2, o2 } => {
                self.pred_bits(p0)
                    + self.join_bits(p1, p0)
                    + self.entity_bits(o1, p1)
                    + self.join_bits(p2, p0)
                    + self.entity_bits(o2, p2)
            }
            SubgraphExpr::Closed2 { p0, p1 } => self.pred_bits(p0) + self.closed_bits(p1, p0),
            SubgraphExpr::Closed3 { p0, p1, p2 } => {
                self.pred_bits(p0) + self.closed_bits(p1, p0) + self.closed_bits(p2, p0)
            }
        }
    }

    /// `Ĉ(e) = Σ Ĉ(ρᵢ)` over the conjuncts; `Ĉ(⊤) = ∞` (footnote 6).
    pub fn expression_cost(&self, e: &Expression) -> Bits {
        if e.is_top() {
            return Bits::INFINITY;
        }
        e.parts.iter().map(|p| self.subgraph_cost(p)).sum()
    }

    /// Cost of a conjunction given as a slice (used by the search stacks).
    pub fn parts_cost(&self, parts: &[SubgraphExpr]) -> Bits {
        if parts.is_empty() {
            return Bits::INFINITY;
        }
        parts.iter().map(|p| self.subgraph_cost(p)).sum()
    }
}

fn weights_to_ranks(weight: FxHashMap<u32, u32>) -> RankMap {
    let mut items: Vec<(u32, u32)> = weight.into_iter().collect();
    items.sort_by_key(|&(q, w)| (std::cmp::Reverse(w), q));
    let mut out = RankMap::default();
    out.reserve(items.len());
    let mut rank = 1u32;
    for (i, &(q, w)) in items.iter().enumerate() {
        if i > 0 && items[i - 1].1 > w {
            rank = (i + 1) as u32;
        }
        out.insert(q, rank);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::KbBuilder;

    /// A KB where `capitalOf` is rarer than `cityIn`, France is the most
    /// frequent country, and a path through `mayor` exists.
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for i in 0..8 {
            b.add_iri(&format!("e:city{i}"), "p:cityIn", "e:France");
        }
        for i in 8..10 {
            b.add_iri(&format!("e:city{i}"), "p:cityIn", "e:Belgium");
        }
        b.add_iri("e:city0", "p:capitalOf", "e:France");
        b.add_iri("e:city0", "p:mayor", "e:alice");
        b.add_iri("e:city1", "p:mayor", "e:bob");
        b.add_iri("e:alice", "p:party", "e:Socialist");
        b.add_iri("e:bob", "p:party", "e:Green");
        b.build().unwrap()
    }

    #[test]
    fn frequent_predicates_cost_less() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let capital = kb.pred_id("p:capitalOf").unwrap();
        assert!(m.pred_bits(city_in) < m.pred_bits(capital));
        // Top predicate codes to 0 bits.
        assert_eq!(m.pred_bits(city_in), Bits::ZERO);
    }

    #[test]
    fn frequent_objects_cost_less_conditionally() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        let belgium = kb.node_id_by_iri("e:Belgium").unwrap();
        assert!(m.entity_bits(france, city_in) < m.entity_bits(belgium, city_in));
        assert_eq!(m.entity_bits(france, city_in), Bits::ZERO); // rank 1
    }

    #[test]
    fn chain_rule_narrows_context() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let capital = kb.pred_id("p:capitalOf").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        // France is the only capitalOf object: conditional rank 1 → 0 bits,
        // even though globally France is one of many entities.
        assert_eq!(m.entity_bits(france, capital), Bits::ZERO);
    }

    #[test]
    fn atom_cost_is_pred_plus_entity() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let belgium = kb.node_id_by_iri("e:Belgium").unwrap();
        let e = SubgraphExpr::Atom {
            p: city_in,
            o: belgium,
        };
        assert_eq!(
            m.subgraph_cost(&e),
            m.pred_bits(city_in) + m.entity_bits(belgium, city_in)
        );
    }

    #[test]
    fn path_cost_uses_join_ranking() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let mayor = kb.pred_id("p:mayor").unwrap();
        let party = kb.pred_id("p:party").unwrap();
        let socialist = kb.node_id_by_iri("e:Socialist").unwrap();
        let e = SubgraphExpr::Path {
            p0: mayor,
            p1: party,
            o: socialist,
        };
        let expected =
            m.pred_bits(mayor) + m.join_bits(party, mayor) + m.entity_bits(socialist, party);
        assert_eq!(m.subgraph_cost(&e), expected);
        // party is the only predicate joinable after mayor → rank 1.
        assert_eq!(m.join_bits(party, mayor), Bits::ZERO);
        // cityIn never follows mayor → beyond the last rank.
        let city_in = kb.pred_id("p:cityIn").unwrap();
        assert!(m.join_bits(city_in, mayor) > Bits::ZERO);
    }

    #[test]
    fn closed_ranking_finds_parallel_predicates() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:cityIn", "e:France");
        b.add_iri("e:a", "p:largestCityOf", "e:France");
        b.add_iri("e:b", "p:cityIn", "e:France");
        let kb = b.build().unwrap();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let largest = kb.pred_id("p:largestCityOf").unwrap();
        assert_eq!(m.closed_bits(largest, city_in), Bits::ZERO);
        let e = SubgraphExpr::closed2(city_in, largest);
        assert!(!m.subgraph_cost(&e).is_infinite());
    }

    #[test]
    fn expression_cost_sums_and_top_is_infinite() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        let belgium = kb.node_id_by_iri("e:Belgium").unwrap();
        let a = SubgraphExpr::Atom {
            p: city_in,
            o: france,
        };
        let b = SubgraphExpr::Atom {
            p: city_in,
            o: belgium,
        };
        let e = Expression { parts: vec![a, b] };
        assert_eq!(
            m.expression_cost(&e),
            m.subgraph_cost(&a) + m.subgraph_cost(&b)
        );
        assert!(m.expression_cost(&Expression::top()).is_infinite());
        assert!(m.parts_cost(&[]).is_infinite());
    }

    #[test]
    fn powerlaw_mode_orders_like_exact_mode() {
        let kb = kb();
        let exact = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let fitted = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        let france = kb.node_id_by_iri("e:France").unwrap();
        let belgium = kb.node_id_by_iri("e:Belgium").unwrap();
        // Both modes must agree that France < Belgium given cityIn.
        assert!(exact.entity_bits(france, city_in) < exact.entity_bits(belgium, city_in));
        assert!(fitted.entity_bits(france, city_in) <= fitted.entity_bits(belgium, city_in));
    }

    #[test]
    fn pagerank_metric_builds() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::PageRank, EntityCodeMode::PowerLaw);
        let france = kb.node_id_by_iri("e:France").unwrap();
        assert!(m.node_prominence(france) > 0.0);
        let city_in = kb.pred_id("p:cityIn").unwrap();
        // Still produces finite, non-negative costs.
        let bits = m.entity_bits(france, city_in);
        assert!(!bits.is_infinite());
    }

    #[test]
    fn average_r2_is_computable() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
        let r2 = m.average_r2(2);
        assert!(r2.is_nan() || (0.0..=1.0).contains(&r2) || r2 < 0.0);
    }

    #[test]
    fn unknown_object_costs_beyond_last_rank() {
        let kb = kb();
        let m = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let capital = kb.pred_id("p:capitalOf").unwrap();
        let alice = kb.node_id_by_iri("e:alice").unwrap();
        // alice is never a capitalOf object.
        let bits = m.entity_bits(alice, capital);
        assert!(bits > Bits::ZERO);
    }
}
