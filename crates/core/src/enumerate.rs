//! Enumeration of the subgraph expressions of an entity — the
//! `subgraphs-expressions(t)` routine of Algorithm 1 (line 1).
//!
//! The routine performs a breadth-first derivation (§3.3): atomic
//! expressions `p(x, I)` first, then paths `p0(x,y) ∧ p1(y,I)` and closed
//! pairs, then path+star and closed triples, following Table 1.
//!
//! Pruning heuristics of §3.5.2, all implemented here:
//! * atoms `p(x, B)` with a blank-node object are skipped, but paths that
//!   "hide" the blank node are always derived;
//! * multi-atom expressions are *not* derived from atoms whose object is
//!   among the top-5 % most prominent entities;
//! * (ours, bounded-resource) a cap on star pairs per intermediate and on
//!   total expressions per entity, reported in the stats.

use remi_kb::fx::FxHashSet;
use remi_kb::term::TermKind;
use remi_kb::{KnowledgeBase, NodeId, PredId};

use crate::config::{EnumerationConfig, LanguageBias};
use crate::expr::SubgraphExpr;

/// Statistics of one enumeration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumStats {
    /// Expressions produced.
    pub produced: usize,
    /// True if a cap truncated the enumeration (results may be incomplete).
    pub truncated: bool,
}

/// Precomputed, KB-wide context shared by enumeration calls: the set of
/// entities considered "too prominent to expand".
#[derive(Debug, Clone)]
pub struct EnumContext {
    prominent: FxHashSet<u32>,
}

impl EnumContext {
    /// Builds the context for a KB under the given configuration.
    pub fn new(kb: &KnowledgeBase, config: &EnumerationConfig) -> Self {
        let prominent: FxHashSet<u32> = if config.prominent_cutoff > 0.0 {
            kb.top_frequent_entities(config.prominent_cutoff)
                .into_iter()
                .map(|n| n.0)
                .collect()
        } else {
            FxHashSet::default()
        };
        EnumContext { prominent }
    }

    /// Is the entity in the do-not-expand prominent set?
    pub fn is_prominent(&self, n: NodeId) -> bool {
        self.prominent.contains(&n.0)
    }
}

fn pred_excluded(kb: &KnowledgeBase, p: PredId, config: &EnumerationConfig) -> bool {
    if config.exclude_label && Some(p) == kb.label_pred() {
        return true;
    }
    if config.exclude_type && Some(p) == kb.type_pred() {
        return true;
    }
    if config.exclude_inverse && kb.is_inverse(p) {
        return true;
    }
    false
}

/// Enumerates the subgraph expressions of entity `t` (all of which match
/// `t` by construction).
pub fn subgraph_expressions(
    kb: &KnowledgeBase,
    t: NodeId,
    config: &EnumerationConfig,
    ctx: &EnumContext,
) -> (FxHashSet<SubgraphExpr>, EnumStats) {
    let mut out: FxHashSet<SubgraphExpr> = FxHashSet::default();
    let mut stats = EnumStats::default();
    let cap = config.max_exprs_per_entity;

    let preds: Vec<PredId> = kb
        .preds_of_subject(t)
        .iter()
        .map(PredId)
        .filter(|&p| !pred_excluded(kb, p, config))
        .collect();

    // Level 1: atoms p(x, o), skipping blank-node objects.
    for &p in &preds {
        for o in kb.objects(p, t) {
            let o = NodeId(o);
            if kb.node_kind(o) == TermKind::Blank {
                continue;
            }
            out.insert(SubgraphExpr::Atom { p, o });
            if out.len() >= cap {
                stats.truncated = true;
                stats.produced = out.len();
                return (out, stats);
            }
        }
    }

    if config.language == LanguageBias::Standard {
        stats.produced = out.len();
        return (out, stats);
    }

    // Level 2a: closed pairs p0(x,y) ∧ p1(x,y) — predicates of t sharing
    // an object; then level 3a: closed triples.
    'closed: for i in 0..preds.len() {
        for j in (i + 1)..preds.len() {
            let (pi, pj) = (preds[i], preds[j]);
            let shared = crate::eval::intersect_sorted(kb.objects(pi, t), kb.objects(pj, t));
            if shared.is_empty() {
                continue;
            }
            out.insert(SubgraphExpr::closed2(pi, pj));
            if out.len() >= cap {
                stats.truncated = true;
                break 'closed;
            }
            for &pk in &preds[(j + 1)..] {
                if crate::eval::sorted_intersects(&shared, kb.objects(pk, t)) {
                    out.insert(SubgraphExpr::closed3(pi, pj, pk));
                    if out.len() >= cap {
                        stats.truncated = true;
                        break 'closed;
                    }
                }
            }
        }
    }

    // Level 2b: paths p0(x,y) ∧ p1(y,o1); level 3b: path+star.
    // Paths through blank intermediates are always derived (they "hide"
    // the blank); prominent intermediates are never expanded.
    'paths: for &p0 in &preds {
        for y in kb.objects(p0, t) {
            let y = NodeId(y);
            match kb.node_kind(y) {
                TermKind::Literal => continue,
                TermKind::Blank => {} // expand to hide the blank
                TermKind::Iri => {
                    if ctx.is_prominent(y) {
                        continue; // §3.5.2 prominent-object pruning
                    }
                }
            }
            // Collect the facts describing y (the candidate star atoms).
            let mut facts: Vec<(PredId, NodeId)> = Vec::new();
            for p1 in kb.preds_of_subject(y) {
                let p1 = PredId(p1);
                if pred_excluded(kb, p1, config) {
                    continue;
                }
                for o1 in kb.objects(p1, y) {
                    let o1 = NodeId(o1);
                    if kb.node_kind(o1) == TermKind::Blank {
                        continue;
                    }
                    if o1 == t {
                        continue; // avoid trivial back-loops p0(x,y) ∧ p1(y,x)
                    }
                    facts.push((p1, o1));
                }
            }
            for &(p1, o1) in &facts {
                out.insert(SubgraphExpr::Path { p0, p1, o: o1 });
                if out.len() >= cap {
                    stats.truncated = true;
                    break 'paths;
                }
            }
            // Path + star: pairs of distinct facts on y, capped.
            let limit = config.max_star_pairs;
            let mut pairs = 0usize;
            'stars: for a in 0..facts.len() {
                for b in (a + 1)..facts.len() {
                    if pairs >= limit {
                        stats.truncated = true;
                        break 'stars;
                    }
                    pairs += 1;
                    out.insert(SubgraphExpr::path_star(p0, facts[a], facts[b]));
                    if out.len() >= cap {
                        stats.truncated = true;
                        break 'paths;
                    }
                }
            }
        }
    }

    stats.produced = out.len();
    (out, stats)
}

/// The subgraph expressions *common to all targets* (line 1 of Alg. 1):
/// the intersection of the per-entity sets. Expressions generated from an
/// entity match it by construction, so the intersection contains exactly
/// the expressions matching every target.
pub fn common_subgraph_expressions(
    kb: &KnowledgeBase,
    targets: &[NodeId],
    config: &EnumerationConfig,
    ctx: &EnumContext,
) -> (Vec<SubgraphExpr>, EnumStats) {
    assert!(!targets.is_empty(), "need at least one target entity");
    let (mut acc, mut stats) = subgraph_expressions(kb, targets[0], config, ctx);
    for &t in &targets[1..] {
        if acc.is_empty() {
            break;
        }
        let (other, s) = subgraph_expressions(kb, t, config, ctx);
        stats.truncated |= s.truncated;
        acc.retain(|e| other.contains(e));
    }
    let mut v: Vec<SubgraphExpr> = acc.into_iter().collect();
    // Deterministic order regardless of hash iteration.
    v.sort_unstable();
    stats.produced = v.len();
    (v, stats)
}

/// Search-space sizes under increasingly permissive language biases — the
/// §3.2 observation experiment. The paper reports that admitting a second
/// existential variable grows the space of subgraph expressions by more
/// than 270 %, while going from 2 to 3 atoms with one variable adds ~40 %.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaceCounts {
    /// ≤ 2 atoms, ≤ 1 extra variable (atoms, paths, 2-closed).
    pub one_var_two_atoms: usize,
    /// ≤ 3 atoms, ≤ 1 extra variable (full Table 1).
    pub one_var_three_atoms: usize,
    /// ≤ 3 atoms, ≤ 2 extra variables (Table 1 plus 3-atom chain paths
    /// `p0(x,y) ∧ p1(y,z) ∧ p2(z,I)`).
    pub two_var_three_atoms: usize,
}

/// Counts the subgraph expressions of `t` under the three language-bias
/// tiers. Counting is exact up to `cap` expressions per tier (the result
/// saturates at `cap`, mirroring how the measurement would time out).
pub fn space_growth_counts(
    kb: &KnowledgeBase,
    t: NodeId,
    config: &EnumerationConfig,
    ctx: &EnumContext,
    cap: usize,
) -> SpaceCounts {
    let (full, _) = subgraph_expressions(kb, t, config, ctx);
    let one_var_two_atoms = full.iter().filter(|e| e.num_atoms() <= 2).count().min(cap);
    let one_var_three_atoms = full.len().min(cap);

    // Tier 3: additionally count distinct two-variable chain paths.
    let mut chains: FxHashSet<(PredId, PredId, PredId, NodeId)> = FxHashSet::default();
    'outer: for p0 in kb.preds_of_subject(t) {
        let p0 = PredId(p0);
        if pred_excluded(kb, p0, config) {
            continue;
        }
        for y in kb.objects(p0, t) {
            let y = NodeId(y);
            if kb.node_kind(y) == TermKind::Literal || ctx.is_prominent(y) {
                continue;
            }
            for p1 in kb.preds_of_subject(y) {
                let p1 = PredId(p1);
                if pred_excluded(kb, p1, config) {
                    continue;
                }
                for z in kb.objects(p1, y) {
                    let z = NodeId(z);
                    // The §3.5.2 prominence pruning applies to the object
                    // of the atom being *expanded* (y); the growth
                    // measurement counts the raw language-bias space below
                    // it, so z is not filtered by prominence.
                    if kb.node_kind(z) == TermKind::Literal || z == t {
                        continue;
                    }
                    for p2 in kb.preds_of_subject(z) {
                        let p2 = PredId(p2);
                        if pred_excluded(kb, p2, config) {
                            continue;
                        }
                        for o in kb.objects(p2, z) {
                            let o = NodeId(o);
                            if kb.node_kind(o) == TermKind::Blank || o == t || o == y {
                                continue;
                            }
                            chains.insert((p0, p1, p2, o));
                            if one_var_three_atoms + chains.len() >= cap {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }

    SpaceCounts {
        one_var_two_atoms,
        one_var_three_atoms,
        two_var_three_atoms: (one_var_three_atoms + chains.len()).min(cap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::{KbBuilder, Term};

    fn config() -> EnumerationConfig {
        EnumerationConfig {
            prominent_cutoff: 0.0, // disable for small hand-built KBs
            ..Default::default()
        }
    }

    fn rennes_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for city in ["Rennes", "Nantes"] {
            b.add_iri(&format!("e:{city}"), "p:in", "e:Brittany");
            b.add_iri(&format!("e:{city}"), "p:mayor", &format!("e:mayor{city}"));
            b.add_iri(&format!("e:mayor{city}"), "p:party", "e:Socialist");
        }
        b.add_iri("e:Vannes", "p:in", "e:Brittany");
        b.add_iri("e:Vannes", "p:mayor", "e:mayorVannes");
        b.add_iri("e:mayorVannes", "p:party", "e:Green");
        b.build().unwrap()
    }

    #[test]
    fn atoms_and_paths_are_enumerated() {
        let kb = rennes_kb();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let (exprs, stats) = subgraph_expressions(&kb, rennes, &cfg, &ctx);
        assert!(!stats.truncated);

        let in_p = kb.pred_id("p:in").unwrap();
        let brittany = kb.node_id_by_iri("e:Brittany").unwrap();
        assert!(exprs.contains(&SubgraphExpr::Atom {
            p: in_p,
            o: brittany
        }));

        let mayor = kb.pred_id("p:mayor").unwrap();
        let party = kb.pred_id("p:party").unwrap();
        let socialist = kb.node_id_by_iri("e:Socialist").unwrap();
        assert!(exprs.contains(&SubgraphExpr::Path {
            p0: mayor,
            p1: party,
            o: socialist
        }));
    }

    #[test]
    fn every_enumerated_expression_matches_the_entity() {
        let kb = rennes_kb();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let (exprs, _) = subgraph_expressions(&kb, rennes, &cfg, &ctx);
        for e in &exprs {
            let bindings = crate::eval::raw_bindings(&kb, e);
            assert!(
                bindings.contains(&rennes.0),
                "{e:?} does not match its source entity"
            );
        }
    }

    #[test]
    fn common_expressions_match_all_targets() {
        let kb = rennes_kb();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let nantes = kb.node_id_by_iri("e:Nantes").unwrap();
        let (common, _) = common_subgraph_expressions(&kb, &[rennes, nantes], &cfg, &ctx);
        assert!(!common.is_empty());
        for e in &common {
            let bindings = crate::eval::raw_bindings(&kb, e);
            assert!(bindings.contains(&rennes.0));
            assert!(bindings.contains(&nantes.0));
        }
        // The Socialist-mayor path distinguishes Rennes+Nantes from Vannes.
        let mayor = kb.pred_id("p:mayor").unwrap();
        let party = kb.pred_id("p:party").unwrap();
        let socialist = kb.node_id_by_iri("e:Socialist").unwrap();
        assert!(common.contains(&SubgraphExpr::Path {
            p0: mayor,
            p1: party,
            o: socialist
        }));
    }

    #[test]
    fn standard_language_yields_only_atoms() {
        let kb = rennes_kb();
        let cfg = EnumerationConfig {
            language: LanguageBias::Standard,
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let (exprs, _) = subgraph_expressions(&kb, rennes, &cfg, &ctx);
        assert!(!exprs.is_empty());
        assert!(exprs.iter().all(SubgraphExpr::is_standard));
    }

    #[test]
    fn blank_objects_are_hidden_behind_paths() {
        let mut b = KbBuilder::new();
        b.add(&Term::iri("e:x"), "p:via", &Term::blank("b0"));
        b.add(&Term::blank("b0"), "p:to", &Term::iri("e:target"));
        let kb = b.build().unwrap();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let x = kb.node_id_by_iri("e:x").unwrap();
        let (exprs, _) = subgraph_expressions(&kb, x, &cfg, &ctx);
        let via = kb.pred_id("p:via").unwrap();
        let to = kb.pred_id("p:to").unwrap();
        let target = kb.node_id_by_iri("e:target").unwrap();
        // No atom with the blank object…
        assert!(exprs.iter().all(
            |e| !matches!(e, SubgraphExpr::Atom { o, .. } if kb.node_kind(*o) == TermKind::Blank)
        ));
        // …but the hiding path exists.
        assert!(exprs.contains(&SubgraphExpr::Path {
            p0: via,
            p1: to,
            o: target
        }));
    }

    #[test]
    fn prominent_objects_are_not_expanded() {
        let mut b = KbBuilder::new();
        // Germany is the hub: every city links to it → top of frequency.
        for i in 0..20 {
            b.add_iri(&format!("e:city{i}"), "p:capitalOf", "e:Germany");
        }
        b.add_iri("e:Germany", "p:locatedIn", "e:Europe");
        let kb = b.build().unwrap();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.05,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        assert!(ctx.is_prominent(kb.node_id_by_iri("e:Germany").unwrap()));
        let city0 = kb.node_id_by_iri("e:city0").unwrap();
        let (exprs, _) = subgraph_expressions(&kb, city0, &cfg, &ctx);
        // The atom survives; the path capitalOf(x,y) ∧ locatedIn(y,Europe)
        // is pruned because Germany is prominent.
        let capital = kb.pred_id("p:capitalOf").unwrap();
        let germany = kb.node_id_by_iri("e:Germany").unwrap();
        assert!(exprs.contains(&SubgraphExpr::Atom {
            p: capital,
            o: germany
        }));
        assert!(exprs
            .iter()
            .all(|e| !matches!(e, SubgraphExpr::Path { .. })));
    }

    #[test]
    fn closed_shapes_are_found() {
        let mut b = KbBuilder::new();
        b.add_iri("e:h", "p:bornIn", "e:Paris");
        b.add_iri("e:h", "p:livedIn", "e:Paris");
        b.add_iri("e:h", "p:diedIn", "e:Paris");
        let kb = b.build().unwrap();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let h = kb.node_id_by_iri("e:h").unwrap();
        let (exprs, _) = subgraph_expressions(&kb, h, &cfg, &ctx);
        let born = kb.pred_id("p:bornIn").unwrap();
        let lived = kb.pred_id("p:livedIn").unwrap();
        let died = kb.pred_id("p:diedIn").unwrap();
        assert!(exprs.contains(&SubgraphExpr::closed2(born, lived)));
        assert!(exprs.contains(&SubgraphExpr::closed3(born, lived, died)));
    }

    #[test]
    fn star_pairs_respect_cap() {
        let mut b = KbBuilder::new();
        b.add_iri("e:x", "p:knows", "e:hubPerson");
        for i in 0..30 {
            b.add_iri("e:hubPerson", "p:likes", &format!("e:thing{i}"));
        }
        let kb = b.build().unwrap();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            max_star_pairs: 10,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let x = kb.node_id_by_iri("e:x").unwrap();
        let (exprs, stats) = subgraph_expressions(&kb, x, &cfg, &ctx);
        let stars = exprs
            .iter()
            .filter(|e| matches!(e, SubgraphExpr::PathStar { .. }))
            .count();
        assert!(stars <= 10);
        assert!(stats.truncated);
    }

    #[test]
    fn label_predicate_is_excluded_by_default() {
        let mut b = KbBuilder::new();
        b.add_iri("e:x", "p:in", "e:place");
        b.add(
            &Term::iri("e:x"),
            remi_kb::store::RDFS_LABEL,
            &Term::literal("X"),
        );
        let kb = b.build().unwrap();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let x = kb.node_id_by_iri("e:x").unwrap();
        let (exprs, _) = subgraph_expressions(&kb, x, &cfg, &ctx);
        let label = kb.label_pred().unwrap();
        assert!(exprs.iter().all(|e| !e.predicates().contains(&label)));
    }

    #[test]
    fn expression_cap_truncates() {
        let mut b = KbBuilder::new();
        for i in 0..100 {
            b.add_iri("e:x", &format!("p:q{i}"), &format!("e:o{i}"));
        }
        let kb = b.build().unwrap();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            max_exprs_per_entity: 10,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let x = kb.node_id_by_iri("e:x").unwrap();
        let (exprs, stats) = subgraph_expressions(&kb, x, &cfg, &ctx);
        assert_eq!(exprs.len(), 10);
        assert!(stats.truncated);
    }

    #[test]
    fn space_counts_are_monotone_across_tiers() {
        let mut b = KbBuilder::new();
        // Build a 3-level chain fan-out: t → mids → leaves → ends.
        for m in 0..3 {
            b.add_iri("e:t", "p:r0", &format!("e:m{m}"));
            for l in 0..3 {
                b.add_iri(&format!("e:m{m}"), "p:r1", &format!("e:l{m}{l}"));
                b.add_iri(&format!("e:l{m}{l}"), "p:r2", &format!("e:end{m}{l}"));
            }
        }
        let kb = b.build().unwrap();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let t = kb.node_id_by_iri("e:t").unwrap();
        let counts = space_growth_counts(&kb, t, &cfg, &ctx, 100_000);
        assert!(counts.one_var_two_atoms <= counts.one_var_three_atoms);
        assert!(counts.one_var_three_atoms < counts.two_var_three_atoms);
        // 9 distinct 3-chains exist (3 mids × 3 leaves → 1 end each).
        assert_eq!(counts.two_var_three_atoms - counts.one_var_three_atoms, 9);
    }

    #[test]
    fn space_counts_saturate_at_cap() {
        let mut b = KbBuilder::new();
        for i in 0..50 {
            b.add_iri("e:t", &format!("p:q{i}"), &format!("e:o{i}"));
        }
        let kb = b.build().unwrap();
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(&kb, &cfg);
        let t = kb.node_id_by_iri("e:t").unwrap();
        let counts = space_growth_counts(&kb, t, &cfg, &ctx, 10);
        assert!(counts.one_var_three_atoms <= 10);
        assert!(counts.two_var_three_atoms <= 10);
    }

    #[test]
    fn common_with_disjoint_targets_is_empty() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:p1", "e:v1");
        b.add_iri("e:b", "p:p2", "e:v2");
        let kb = b.build().unwrap();
        let cfg = config();
        let ctx = EnumContext::new(&kb, &cfg);
        let a = kb.node_id_by_iri("e:a").unwrap();
        let b_ = kb.node_id_by_iri("e:b").unwrap();
        let (common, _) = common_subgraph_expressions(&kb, &[a, b_], &cfg, &ctx);
        assert!(common.is_empty());
    }
}
