//! REMI's language of subgraph expressions and referring expressions.
//!
//! Table 1 of the paper fixes the language bias to five shapes rooted at
//! the variable `x`, with at most one additional existentially quantified
//! variable `y` and at most three atoms:
//!
//! | shape            | form                                          |
//! |------------------|-----------------------------------------------|
//! | single atom      | `p0(x, I0)`                                   |
//! | path             | `p0(x, y) ∧ p1(y, I1)`                        |
//! | path + star      | `p0(x, y) ∧ p1(y, I1) ∧ p2(y, I2)`            |
//! | 2 closed atoms   | `p0(x, y) ∧ p1(x, y)`                         |
//! | 3 closed atoms   | `p0(x, y) ∧ p1(x, y) ∧ p2(x, y)`              |
//!
//! A referring expression is a conjunction of subgraph expressions sharing
//! only the root variable `x` (§2.2.2).

use std::fmt;

use remi_kb::{KnowledgeBase, NodeId, PredId};

/// One subgraph expression in REMI's language bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubgraphExpr {
    /// `p(x, o)` — the state-of-the-art single bound atom.
    Atom {
        /// The predicate.
        p: PredId,
        /// The bound object.
        o: NodeId,
    },
    /// `p0(x, y) ∧ p1(y, o)` — a two-atom path through an existential `y`.
    Path {
        /// Predicate from the root to the intermediate variable.
        p0: PredId,
        /// Predicate from the intermediate variable to the bound object.
        p1: PredId,
        /// The bound object.
        o: NodeId,
    },
    /// `p0(x, y) ∧ p1(y, o1) ∧ p2(y, o2)` — a path plus a star atom on `y`.
    /// Invariant: `(p1, o1) < (p2, o2)` to canonicalise.
    PathStar {
        /// Predicate from the root to the intermediate variable.
        p0: PredId,
        /// First predicate describing `y`.
        p1: PredId,
        /// First bound object.
        o1: NodeId,
        /// Second predicate describing `y`.
        p2: PredId,
        /// Second bound object.
        o2: NodeId,
    },
    /// `p0(x, y) ∧ p1(x, y)` — two closed atoms. Invariant: `p0 < p1`.
    Closed2 {
        /// First predicate.
        p0: PredId,
        /// Second predicate.
        p1: PredId,
    },
    /// `p0(x, y) ∧ p1(x, y) ∧ p2(x, y)` — three closed atoms.
    /// Invariant: `p0 < p1 < p2`.
    Closed3 {
        /// First predicate.
        p0: PredId,
        /// Second predicate.
        p1: PredId,
        /// Third predicate.
        p2: PredId,
    },
}

impl SubgraphExpr {
    /// Canonical path+star constructor (orders the two star atoms).
    pub fn path_star(p0: PredId, a: (PredId, NodeId), b: (PredId, NodeId)) -> SubgraphExpr {
        let ((p1, o1), (p2, o2)) = if a <= b { (a, b) } else { (b, a) };
        SubgraphExpr::PathStar { p0, p1, o1, p2, o2 }
    }

    /// Canonical 2-closed constructor (orders the predicates).
    pub fn closed2(a: PredId, b: PredId) -> SubgraphExpr {
        let (p0, p1) = if a <= b { (a, b) } else { (b, a) };
        SubgraphExpr::Closed2 { p0, p1 }
    }

    /// Canonical 3-closed constructor (orders the predicates).
    pub fn closed3(a: PredId, b: PredId, c: PredId) -> SubgraphExpr {
        let mut v = [a, b, c];
        v.sort_unstable();
        SubgraphExpr::Closed3 {
            p0: v[0],
            p1: v[1],
            p2: v[2],
        }
    }

    /// Number of atoms (Table 1 caps this at 3).
    pub fn num_atoms(&self) -> usize {
        match self {
            SubgraphExpr::Atom { .. } => 1,
            SubgraphExpr::Path { .. } | SubgraphExpr::Closed2 { .. } => 2,
            SubgraphExpr::PathStar { .. } | SubgraphExpr::Closed3 { .. } => 3,
        }
    }

    /// Number of existentially quantified variables besides the root
    /// (at most 1 in REMI's language).
    pub fn num_extra_vars(&self) -> usize {
        match self {
            SubgraphExpr::Atom { .. } => 0,
            _ => 1,
        }
    }

    /// True for shapes allowed under the *state-of-the-art* language bias
    /// (conjunctions of bound atoms only, §3.2).
    pub fn is_standard(&self) -> bool {
        matches!(self, SubgraphExpr::Atom { .. })
    }

    /// The predicates used, in shape order.
    pub fn predicates(&self) -> Vec<PredId> {
        match *self {
            SubgraphExpr::Atom { p, .. } => vec![p],
            SubgraphExpr::Path { p0, p1, .. } => vec![p0, p1],
            SubgraphExpr::PathStar { p0, p1, p2, .. } => vec![p0, p1, p2],
            SubgraphExpr::Closed2 { p0, p1 } => vec![p0, p1],
            SubgraphExpr::Closed3 { p0, p1, p2 } => vec![p0, p1, p2],
        }
    }

    /// The bound objects used, in shape order.
    pub fn objects(&self) -> Vec<NodeId> {
        match *self {
            SubgraphExpr::Atom { o, .. } => vec![o],
            SubgraphExpr::Path { o, .. } => vec![o],
            SubgraphExpr::PathStar { o1, o2, .. } => vec![o1, o2],
            SubgraphExpr::Closed2 { .. } | SubgraphExpr::Closed3 { .. } => vec![],
        }
    }

    /// Renders the expression with names from the KB.
    pub fn display<'a>(&'a self, kb: &'a KnowledgeBase) -> DisplaySubgraph<'a> {
        DisplaySubgraph { expr: self, kb }
    }
}

/// A referring-expression candidate: a conjunction of subgraph expressions
/// rooted at the same variable `x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Expression {
    /// The conjuncts, in the order they were assembled by the search.
    pub parts: Vec<SubgraphExpr>,
}

impl Expression {
    /// The empty expression `⊤` (matches everything, `Ĉ = ∞`).
    pub fn top() -> Expression {
        Expression { parts: Vec::new() }
    }

    /// A single-conjunct expression.
    pub fn single(e: SubgraphExpr) -> Expression {
        Expression { parts: vec![e] }
    }

    /// True for `⊤`.
    pub fn is_top(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total number of atoms across conjuncts.
    pub fn num_atoms(&self) -> usize {
        self.parts.iter().map(SubgraphExpr::num_atoms).sum()
    }

    /// Renders the expression with names from the KB.
    pub fn display<'a>(&'a self, kb: &'a KnowledgeBase) -> DisplayExpression<'a> {
        DisplayExpression { expr: self, kb }
    }
}

/// Helper for naming objects compactly.
fn obj_name(kb: &KnowledgeBase, o: NodeId) -> String {
    kb.node_name(o)
}

/// Display adaptor for a [`SubgraphExpr`].
pub struct DisplaySubgraph<'a> {
    expr: &'a SubgraphExpr,
    kb: &'a KnowledgeBase,
}

impl fmt::Display for DisplaySubgraph<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        as_display_subgraph(self, f)
    }
}

fn as_display_subgraph(d: &DisplaySubgraph<'_>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let kb = d.kb;
    match *d.expr {
        SubgraphExpr::Atom { p, o } => {
            write!(f, "{}(x, {})", kb.pred_name(p), obj_name(kb, o))
        }
        SubgraphExpr::Path { p0, p1, o } => write!(
            f,
            "{}(x, y) ∧ {}(y, {})",
            kb.pred_name(p0),
            kb.pred_name(p1),
            obj_name(kb, o)
        ),
        SubgraphExpr::PathStar { p0, p1, o1, p2, o2 } => write!(
            f,
            "{}(x, y) ∧ {}(y, {}) ∧ {}(y, {})",
            kb.pred_name(p0),
            kb.pred_name(p1),
            obj_name(kb, o1),
            kb.pred_name(p2),
            obj_name(kb, o2)
        ),
        SubgraphExpr::Closed2 { p0, p1 } => {
            write!(f, "{}(x, y) ∧ {}(x, y)", kb.pred_name(p0), kb.pred_name(p1))
        }
        SubgraphExpr::Closed3 { p0, p1, p2 } => write!(
            f,
            "{}(x, y) ∧ {}(x, y) ∧ {}(x, y)",
            kb.pred_name(p0),
            kb.pred_name(p1),
            kb.pred_name(p2)
        ),
    }
}

/// Display adaptor for an [`Expression`].
pub struct DisplayExpression<'a> {
    expr: &'a Expression,
    kb: &'a KnowledgeBase,
}

impl fmt::Display for DisplayExpression<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.expr.is_top() {
            return write!(f, "⊤");
        }
        for (i, part) in self.expr.parts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∧  ")?;
            }
            write!(f, "{}", part.display(self.kb))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::KbBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("e:Rennes", "p:mayor", "e:Alice");
        b.add_iri("e:Alice", "p:party", "e:Socialist");
        b.add_iri("e:Rennes", "p:in", "e:Brittany");
        b.build().unwrap()
    }

    #[test]
    fn canonical_constructors_order_arguments() {
        let a = SubgraphExpr::closed2(PredId(5), PredId(2));
        assert_eq!(
            a,
            SubgraphExpr::Closed2 {
                p0: PredId(2),
                p1: PredId(5)
            }
        );
        let b = SubgraphExpr::closed3(PredId(9), PredId(1), PredId(4));
        assert_eq!(
            b,
            SubgraphExpr::Closed3 {
                p0: PredId(1),
                p1: PredId(4),
                p2: PredId(9)
            }
        );
        let s1 = SubgraphExpr::path_star(PredId(0), (PredId(3), NodeId(7)), (PredId(2), NodeId(9)));
        let s2 = SubgraphExpr::path_star(PredId(0), (PredId(2), NodeId(9)), (PredId(3), NodeId(7)));
        assert_eq!(s1, s2);
    }

    #[test]
    fn atom_counts_match_table_1() {
        let atom = SubgraphExpr::Atom {
            p: PredId(0),
            o: NodeId(0),
        };
        let path = SubgraphExpr::Path {
            p0: PredId(0),
            p1: PredId(1),
            o: NodeId(0),
        };
        let star =
            SubgraphExpr::path_star(PredId(0), (PredId(1), NodeId(0)), (PredId(2), NodeId(1)));
        let c2 = SubgraphExpr::closed2(PredId(0), PredId(1));
        let c3 = SubgraphExpr::closed3(PredId(0), PredId(1), PredId(2));
        assert_eq!(atom.num_atoms(), 1);
        assert_eq!(path.num_atoms(), 2);
        assert_eq!(star.num_atoms(), 3);
        assert_eq!(c2.num_atoms(), 2);
        assert_eq!(c3.num_atoms(), 3);
        assert_eq!(atom.num_extra_vars(), 0);
        for e in [path, star, c2, c3] {
            assert_eq!(e.num_extra_vars(), 1, "{e:?}");
        }
        assert!(atom.is_standard());
        assert!(!path.is_standard());
    }

    #[test]
    fn display_renders_paper_style() {
        let kb = kb();
        let mayor = kb.pred_id("p:mayor").unwrap();
        let party = kb.pred_id("p:party").unwrap();
        let socialist = kb.node_id_by_iri("e:Socialist").unwrap();
        let e = SubgraphExpr::Path {
            p0: mayor,
            p1: party,
            o: socialist,
        };
        assert_eq!(
            e.display(&kb).to_string(),
            "mayor(x, y) ∧ party(y, Socialist)"
        );
    }

    #[test]
    fn expression_display_joins_conjuncts() {
        let kb = kb();
        let in_p = kb.pred_id("p:in").unwrap();
        let brittany = kb.node_id_by_iri("e:Brittany").unwrap();
        let mayor = kb.pred_id("p:mayor").unwrap();
        let party = kb.pred_id("p:party").unwrap();
        let socialist = kb.node_id_by_iri("e:Socialist").unwrap();
        let e = Expression {
            parts: vec![
                SubgraphExpr::Atom {
                    p: in_p,
                    o: brittany,
                },
                SubgraphExpr::Path {
                    p0: mayor,
                    p1: party,
                    o: socialist,
                },
            ],
        };
        assert_eq!(
            e.display(&kb).to_string(),
            "in(x, Brittany)  ∧  mayor(x, y) ∧ party(y, Socialist)"
        );
        assert_eq!(Expression::top().display(&kb).to_string(), "⊤");
        assert_eq!(e.num_atoms(), 3);
    }

    #[test]
    fn predicates_and_objects_accessors() {
        let star =
            SubgraphExpr::path_star(PredId(0), (PredId(1), NodeId(10)), (PredId(2), NodeId(11)));
        assert_eq!(star.predicates(), vec![PredId(0), PredId(1), PredId(2)]);
        assert_eq!(star.objects(), vec![NodeId(10), NodeId(11)]);
        let c2 = SubgraphExpr::closed2(PredId(0), PredId(1));
        assert!(c2.objects().is_empty());
    }
}
