//! Verbalisation: rendering referring expressions as English-ish prose.
//!
//! §4.1.1: *"We manually translated the subgraph expressions to natural
//! language statements in the shortest possible way by using the textual
//! descriptions (predicate rdfs:label) of the concepts when available."*
//! This module automates that translation with templates per shape; it is
//! what the examples and the simulated user studies show to "users".

use remi_kb::{KnowledgeBase, PredId};

use crate::expr::{Expression, SubgraphExpr};

/// Splits a camelCase or snake_case predicate name into lowercase words:
/// `officialLanguage` → `official language`.
pub fn humanize_predicate(name: &str) -> String {
    let (core, inverted) = match name.strip_suffix(remi_kb::store::INVERSE_SUFFIX) {
        Some(b) => (b, true),
        None => (name, false),
    };
    let mut out = String::with_capacity(core.len() + 8);
    for (i, c) in core.chars().enumerate() {
        if c == '_' || c == '-' {
            out.push(' ');
        } else if c.is_uppercase() && i > 0 {
            out.push(' ');
            out.extend(c.to_lowercase());
        } else {
            out.extend(c.to_lowercase());
        }
    }
    if inverted {
        // `capitalOf⁻¹` reads best as "is the capital of".
        let stem = out.strip_suffix(" of").unwrap_or(&out);
        format!("is the {stem} of")
    } else {
        out
    }
}

fn pred_phrase(kb: &KnowledgeBase, p: PredId) -> String {
    humanize_predicate(&kb.pred_name(p))
}

/// Verbalises a single subgraph expression ("its mayor is a member of the
/// Socialist party" style).
pub fn verbalize_subgraph(kb: &KnowledgeBase, e: &SubgraphExpr) -> String {
    match *e {
        SubgraphExpr::Atom { p, o } => {
            if Some(p) == kb.type_pred() {
                format!("it is a {}", kb.node_name(o))
            } else {
                format!("its {} is {}", pred_phrase(kb, p), kb.node_name(o))
            }
        }
        SubgraphExpr::Path { p0, p1, o } => format!(
            "its {} is something whose {} is {}",
            pred_phrase(kb, p0),
            pred_phrase(kb, p1),
            kb.node_name(o)
        ),
        SubgraphExpr::PathStar { p0, p1, o1, p2, o2 } => format!(
            "its {} is something whose {} is {} and whose {} is {}",
            pred_phrase(kb, p0),
            pred_phrase(kb, p1),
            kb.node_name(o1),
            pred_phrase(kb, p2),
            kb.node_name(o2)
        ),
        SubgraphExpr::Closed2 { p0, p1 } => format!(
            "its {} and its {} coincide",
            pred_phrase(kb, p0),
            pred_phrase(kb, p1)
        ),
        SubgraphExpr::Closed3 { p0, p1, p2 } => format!(
            "its {}, its {} and its {} all coincide",
            pred_phrase(kb, p0),
            pred_phrase(kb, p1),
            pred_phrase(kb, p2)
        ),
    }
}

/// Verbalises a full referring expression.
pub fn verbalize(kb: &KnowledgeBase, e: &Expression) -> String {
    if e.is_top() {
        return "anything".to_string();
    }
    let parts: Vec<String> = e.parts.iter().map(|p| verbalize_subgraph(kb, p)).collect();
    match parts.len() {
        1 => format!("the one such that {}", parts[0]),
        _ => format!("the one such that {}", parts.join(", and ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::KbBuilder;

    fn kb() -> remi_kb::KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("e:Rennes", "p:mayor", "e:Alice");
        b.add_iri("e:Alice", "p:partyMembership", "e:Socialist");
        b.add_iri("e:Rennes", "p:officialLanguage", "e:French");
        b.add_iri("e:Rennes", remi_kb::store::RDF_TYPE, "e:City");
        b.build().unwrap()
    }

    #[test]
    fn humanizes_camel_case() {
        assert_eq!(humanize_predicate("officialLanguage"), "official language");
        assert_eq!(humanize_predicate("birth_place"), "birth place");
        assert_eq!(humanize_predicate("mayor"), "mayor");
        assert_eq!(humanize_predicate("capitalOf⁻¹"), "is the capital of");
        assert_eq!(humanize_predicate("mayor⁻¹"), "is the mayor of");
    }

    #[test]
    fn verbalizes_atom() {
        let kb = kb();
        let p = kb.pred_id("p:officialLanguage").unwrap();
        let o = kb.node_id_by_iri("e:French").unwrap();
        let s = verbalize_subgraph(&kb, &SubgraphExpr::Atom { p, o });
        assert_eq!(s, "its official language is French");
    }

    #[test]
    fn verbalizes_type_atom_specially() {
        let kb = kb();
        let p = kb.type_pred().unwrap();
        let o = kb.node_id_by_iri("e:City").unwrap();
        let s = verbalize_subgraph(&kb, &SubgraphExpr::Atom { p, o });
        assert_eq!(s, "it is a City");
    }

    #[test]
    fn verbalizes_path() {
        let kb = kb();
        let mayor = kb.pred_id("p:mayor").unwrap();
        let party = kb.pred_id("p:partyMembership").unwrap();
        let soc = kb.node_id_by_iri("e:Socialist").unwrap();
        let s = verbalize_subgraph(
            &kb,
            &SubgraphExpr::Path {
                p0: mayor,
                p1: party,
                o: soc,
            },
        );
        assert_eq!(
            s,
            "its mayor is something whose party membership is Socialist"
        );
    }

    #[test]
    fn verbalizes_closed_shapes() {
        let kb = kb();
        let mayor = kb.pred_id("p:mayor").unwrap();
        let lang = kb.pred_id("p:officialLanguage").unwrap();
        let s = verbalize_subgraph(&kb, &SubgraphExpr::closed2(mayor, lang));
        assert!(s.contains("coincide"));
        let party = kb.pred_id("p:partyMembership").unwrap();
        let s3 = verbalize_subgraph(&kb, &SubgraphExpr::closed3(mayor, lang, party));
        assert!(s3.contains("all coincide"));
    }

    #[test]
    fn verbalizes_expression() {
        let kb = kb();
        let lang = kb.pred_id("p:officialLanguage").unwrap();
        let french = kb.node_id_by_iri("e:French").unwrap();
        let e = Expression::single(SubgraphExpr::Atom { p: lang, o: french });
        assert_eq!(
            verbalize(&kb, &e),
            "the one such that its official language is French"
        );
        assert_eq!(verbalize(&kb, &Expression::top()), "anything");
    }
}
