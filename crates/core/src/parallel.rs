//! P-REMI — the parallel variant (§3.4, Algorithm 3).
//!
//! Worker tasks dequeue root subgraph expressions concurrently and
//! explore the subtrees rooted at them. Three coordination rules
//! distinguish P-REMI from the sequential algorithm:
//!
//! 1. the incumbent solution `e` is shared (read and written) by all
//!    workers;
//! 2. a worker whose exploration rooted at `ρᵢ` finds *no* solution
//!    signals all workers on roots `ρⱼ (j > i)` to stop — those subtrees
//!    only cover less specific expression sets;
//! 3. before testing an expression, a worker backtracks while the stack's
//!    cost is at least the incumbent's (Alg. 3 line 6).
//!
//! Execution goes through the shared [`remi_pool`] executor: one
//! process-wide thread pool instead of a `std::thread::scope` spawn per
//! call, and workers claim *shards* of contiguous roots (instead of one
//! root at a time) so the incumbent-lock and cursor traffic amortises
//! over a batch.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use remi_kb::NodeId;
use remi_pool::{CancelToken, Executor, FloorToken};

use crate::bits::Bits;
use crate::eval::Evaluator;
use crate::expr::{Expression, SubgraphExpr};
use crate::search::{ScoredExpr, SearchCounters, SearchResult, SearchStatus};

struct Shared {
    /// Incumbent expressions, striped per worker task: each worker
    /// installs improvements into its own stripe, so offers from
    /// different workers never contend on one mutex. The true incumbent
    /// is the stripe minimum, merged once at join by [`Shared::take_best`];
    /// pruning during the search uses the global
    /// [`Shared::best_cost_bits`] mirror, which remains a single
    /// `fetch_min` shared across all stripes.
    best: Vec<Mutex<Option<(Expression, Bits)>>>,
    /// The incumbent's cost as `f64` bit pattern — the lock-free fast
    /// path for the read-heavy Alg. 3 line 6 check. Non-negative floats
    /// order like their bit patterns, so `fetch_min` keeps it monotone;
    /// a reader may observe a cost whose expression is still being
    /// installed under the mutex, which is safe: that cost belongs to a
    /// real solution, so pruning against it never discards the optimum.
    best_cost_bits: AtomicU64,
    /// Lowest root index whose subtree exploration found no solution.
    /// Roots at or beyond this index are superfluous (§3.4, rule 2).
    no_solution_floor: FloorToken,
    /// Work-stealing cursor over root indices; claims advance by a shard
    /// of contiguous roots at a time.
    next_root: AtomicUsize,
    /// Deadline fired.
    timed_out: CancelToken,
}

impl Shared {
    fn new(stripes: usize) -> Shared {
        Shared {
            best: (0..stripes.max(1)).map(|_| Mutex::new(None)).collect(),
            best_cost_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            no_solution_floor: FloorToken::new(),
            next_root: AtomicUsize::new(0),
            timed_out: CancelToken::new(),
        }
    }

    /// The incumbent cost — one atomic load, no mutex (ROADMAP item:
    /// P-REMI workers check the incumbent without the lock).
    #[inline]
    fn best_cost(&self) -> Bits {
        Bits::new(f64::from_bits(self.best_cost_bits.load(Ordering::Acquire)))
    }

    fn offer(&self, stripe: usize, expr: Expression, cost: Bits) {
        // Advertise the cost first so concurrent readers prune as early
        // as possible; fetch_min makes concurrent offers commute.
        self.best_cost_bits
            .fetch_min(cost.value().to_bits(), Ordering::AcqRel);
        // Install into this worker's own stripe: uncontended in the
        // steady state (each worker task owns one stripe), so the
        // install cost is a cache-local lock with no cross-worker wait.
        let mut guard = self.best[stripe % self.best.len()].lock();
        let better = match guard.as_ref() {
            Some((_, incumbent)) => cost < *incumbent,
            None => true,
        };
        if better {
            *guard = Some((expr, cost));
        }
    }

    /// Merge the per-worker stripes into the global incumbent — called
    /// once after all workers join, so plain sequential locking is fine.
    fn take_best(&self) -> Option<(Expression, Bits)> {
        let mut best: Option<(Expression, Bits)> = None;
        for stripe in &self.best {
            if let Some((expr, cost)) = stripe.lock().take() {
                let better = match best.as_ref() {
                    Some((_, incumbent)) => cost < *incumbent,
                    None => true,
                };
                if better {
                    best = Some((expr, cost));
                }
            }
        }
        best
    }
}

/// How many contiguous roots one claim hands a worker. Large enough to
/// amortise the claim + incumbent-read per root, small enough to keep the
/// tail balanced across `tasks` workers.
fn root_shard_size(queue_len: usize, tasks: usize) -> usize {
    (queue_len / (tasks.max(1) * 4)).clamp(1, 64)
}

/// Outcome of one P-DFS-REMI subtree exploration.
struct SubtreeOutcome {
    /// The subtree yielded at least one RE.
    found: bool,
    /// The exploration ran to genuine exhaustion: it was never cut short
    /// by the incumbent, the stop floor, or the deadline. Only a complete,
    /// solution-free exploration licenses the §3.4 stop signal — an
    /// incumbent-pruned subtree may have skipped conjunctions whose
    /// *constituents* are still cheap enough to seed later roots.
    complete: bool,
}

/// Algorithm 3 — P-DFS-REMI for the subtree rooted at `queue[root]`.
#[allow(clippy::too_many_arguments)]
fn p_dfs_remi(
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    root: usize,
    sorted_targets: &[u32],
    shared: &Shared,
    stripe: usize,
    deadline: Option<Instant>,
    counters: &mut SearchCounters,
) -> SubtreeOutcome {
    let mut stack: Vec<usize> = Vec::new();
    let mut stack_cost = Bits::ZERO;
    let mut found_any = false;
    let mut complete = true;

    let mut i = root;
    while i < queue.len() {
        if let Some(d) = deadline {
            // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
            if Instant::now() >= d {
                shared.timed_out.cancel();
                return SubtreeOutcome {
                    found: found_any,
                    complete: false,
                };
            }
        }
        // §3.4 rule 2: a lower root found no solution — this subtree is
        // superfluous.
        if shared.no_solution_floor.is_cancelled(root) {
            return SubtreeOutcome {
                found: found_any,
                complete: false,
            };
        }

        // Line 4–5: dequeue ρ′ and push.
        stack.push(i);
        stack_cost = stack_cost + queue[i].cost;
        counters.nodes_visited += 1;

        // Line 6: backtrack while the stack is at least as complex as the
        // shared incumbent. (The paper's S contains ⊤ as an element, so its
        // `|S| > 1` is our "stack non-empty".)
        let incumbent = shared.best_cost();
        let mut pruned = false;
        while !stack.is_empty() && stack_cost >= incumbent {
            stack.pop();
            stack_cost = sum_cost(queue, &stack);
            pruned = true;
        }
        if pruned {
            complete = false;
        }
        // Line 7: backtracked to the root node ⊤ — no better solution can
        // appear under this subtree.
        if stack.is_empty() {
            return SubtreeOutcome {
                found: found_any,
                complete,
            };
        }
        // Line 8: only proceed when the stack still ends with ρ′ (i.e. the
        // pruning loop did not remove the freshly pushed expression).
        if !pruned {
            let parts: Vec<SubgraphExpr> = stack.iter().map(|&k| queue[k].expr).collect();
            if eval.is_referring_expression(&parts, sorted_targets) {
                found_any = true;
                // Line 11: update the shared best.
                shared.offer(stripe, Expression { parts }, stack_cost);
                // Lines 12–13: pruning by depth + side pruning.
                stack.pop();
                stack.pop();
                stack_cost = sum_cost(queue, &stack);
                // Line 14: backtracked past the root — done.
                if stack.is_empty() {
                    return SubtreeOutcome {
                        found: found_any,
                        complete,
                    };
                }
            }
        }
        i += 1;
    }
    SubtreeOutcome {
        found: found_any,
        complete,
    }
}

fn sum_cost(queue: &[ScoredExpr], stack: &[usize]) -> Bits {
    stack.iter().map(|&k| queue[k].cost).sum()
}

/// P-REMI (§3.4) on the process-wide [`remi_pool::global`] executor.
pub fn parallel_remi_search(
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    targets: &[NodeId],
    deadline: Option<Instant>,
    threads: usize,
) -> SearchResult {
    parallel_remi_search_on(remi_pool::global(), eval, queue, targets, deadline, threads)
}

/// P-REMI (§3.4): Algorithm 1 with the root loop executed by `threads`
/// worker tasks over a shared queue, incumbent, and stop signal, on an
/// explicit [`Executor`]. Exposed so benchmarks and differential tests can
/// pit the pooled executor against the spawn-per-call baseline
/// ([`remi_pool::SpawnExecutor`]).
pub fn parallel_remi_search_on(
    executor: &dyn Executor,
    eval: &Evaluator<'_>,
    queue: &[ScoredExpr],
    targets: &[NodeId],
    deadline: Option<Instant>,
    threads: usize,
) -> SearchResult {
    let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted_targets.sort_unstable();
    sorted_targets.dedup();

    let tasks = threads.max(1).min(queue.len().max(1));
    let shared = Shared::new(tasks);
    let counters_total = Mutex::new(SearchCounters::default());

    let shard = root_shard_size(queue.len(), tasks);
    executor.broadcast(tasks, &|worker| {
        let mut counters = SearchCounters::default();
        'claims: loop {
            // Claim a shard of contiguous roots; batching amortises the
            // cursor and incumbent-lock traffic over `shard` roots.
            let start = shared.next_root.fetch_add(shard, Ordering::Relaxed);
            if start >= queue.len() {
                break;
            }
            let end = (start + shard).min(queue.len());
            for root in start..end {
                // Rule 2: roots at or beyond the floor are superfluous,
                // and later claims are higher still.
                if shared.no_solution_floor.is_cancelled(root) {
                    break 'claims;
                }
                if let Some(d) = deadline {
                    // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
                    if Instant::now() >= d {
                        shared.timed_out.cancel();
                        break 'claims;
                    }
                }
                // Root-level incumbent cutoff (the parallel counterpart
                // of Alg. 3 line 6 applied at depth one); the queue is
                // cost-sorted, so every later root is at least as costly.
                if queue[root].cost >= shared.best_cost() {
                    break 'claims;
                }
                let outcome = p_dfs_remi(
                    eval,
                    queue,
                    root,
                    &sorted_targets,
                    &shared,
                    worker,
                    deadline,
                    &mut counters,
                );
                counters.roots_explored += 1;
                if !outcome.found && outcome.complete {
                    // Rule 2: a *complete* solution-free exploration
                    // rooted at ρᵢ proves even the most specific
                    // suffix conjunction fails, so all subtrees rooted
                    // at ρⱼ (j > i) — which cover less specific
                    // expression sets — are superfluous.
                    shared.no_solution_floor.lower(root);
                }
            }
        }
        let mut total = counters_total.lock();
        total.nodes_visited += counters.nodes_visited;
        total.roots_explored += counters.roots_explored;
    });

    let best = shared.take_best();
    let status = if shared.timed_out.is_cancelled() && best.is_none() {
        SearchStatus::TimedOut
    } else if best.is_some() {
        SearchStatus::Completed
    } else {
        SearchStatus::NoSolution
    };
    let counters = *counters_total.lock();
    SearchResult {
        best,
        status,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complexity::{CostModel, EntityCodeMode, Prominence};
    use crate::config::EnumerationConfig;
    use crate::enumerate::{common_subgraph_expressions, EnumContext};
    use crate::search::{build_queue, remi_search};
    use proptest::prelude::*;
    use remi_kb::{KbBuilder, KnowledgeBase};
    use remi_pool::SpawnExecutor;

    fn rennes_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for city in ["Rennes", "Nantes"] {
            b.add_iri(&format!("e:{city}"), "p:in", "e:Brittany");
            b.add_iri(&format!("e:{city}"), "p:mayor", &format!("e:mayor{city}"));
            b.add_iri(&format!("e:mayor{city}"), "p:party", "e:Socialist");
        }
        b.add_iri("e:Vannes", "p:in", "e:Brittany");
        b.add_iri("e:Vannes", "p:mayor", "e:mayorVannes");
        b.add_iri("e:mayorVannes", "p:party", "e:Green");
        b.add_iri("e:Lille", "p:mayor", "e:mayorLille");
        b.add_iri("e:mayorLille", "p:party", "e:Socialist");
        b.build().unwrap()
    }

    fn setup<'a>(
        kb: &'a KnowledgeBase,
        targets: &[&str],
    ) -> (Vec<ScoredExpr>, Vec<remi_kb::NodeId>, CostModel<'a>) {
        let cfg = EnumerationConfig {
            prominent_cutoff: 0.0,
            ..Default::default()
        };
        let ctx = EnumContext::new(kb, &cfg);
        let ids: Vec<remi_kb::NodeId> = targets
            .iter()
            .map(|t| kb.node_id_by_iri(t).unwrap())
            .collect();
        let (common, _) = common_subgraph_expressions(kb, &ids, &cfg, &ctx);
        let model = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let queue = build_queue(&model, &common);
        (queue, ids, model)
    }

    #[test]
    fn parallel_matches_sequential_cost() {
        let kb = rennes_kb();
        let (queue, ids, _model) = setup(&kb, &["e:Rennes", "e:Nantes"]);
        let eval = Evaluator::new(&kb, 1024);
        let seq = remi_search(&eval, &queue, &ids, None, true);
        for threads in [1, 2, 4, 8] {
            let eval_p = Evaluator::new(&kb, 1024);
            let par = parallel_remi_search(&eval_p, &queue, &ids, None, threads);
            assert_eq!(par.status, SearchStatus::Completed, "threads={threads}");
            assert_eq!(
                par.best.as_ref().map(|(_, c)| *c),
                seq.best.as_ref().map(|(_, c)| *c),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_result_is_a_valid_re() {
        let kb = rennes_kb();
        let (queue, ids, _) = setup(&kb, &["e:Rennes", "e:Nantes"]);
        let eval = Evaluator::new(&kb, 1024);
        let par = parallel_remi_search(&eval, &queue, &ids, None, 4);
        let (expr, _) = par.best.expect("solution exists");
        let mut t: Vec<u32> = ids.iter().map(|n| n.0).collect();
        t.sort_unstable();
        let check = Evaluator::new(&kb, 16);
        assert!(check.is_referring_expression(&expr.parts, &t));
    }

    #[test]
    fn parallel_no_solution() {
        let mut b = KbBuilder::new();
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        let kb = b.build().unwrap();
        let (queue, ids, _) = setup(&kb, &["e:twin1"]);
        let eval = Evaluator::new(&kb, 64);
        let par = parallel_remi_search(&eval, &queue, &ids, None, 4);
        assert_eq!(par.status, SearchStatus::NoSolution);
        assert!(par.best.is_none());
    }

    /// §3.4 rule 2 under sharded root batches: with one worker task the
    /// schedule is deterministic — the first root's complete, solution-free
    /// exploration lowers the floor to 0 and every remaining root of the
    /// claimed shard (and all later shards) is skipped.
    #[test]
    fn no_solution_floor_propagates_across_root_shards() {
        let mut b = KbBuilder::new();
        b.add_iri("e:twin1", "p:in", "e:Town");
        b.add_iri("e:twin2", "p:in", "e:Town");
        b.add_iri("e:twin1", "p:near", "e:River");
        b.add_iri("e:twin2", "p:near", "e:River");
        b.add_iri("e:twin1", "p:has", "e:Hall");
        b.add_iri("e:twin2", "p:has", "e:Hall");
        let kb = b.build().unwrap();
        let (queue, ids, _) = setup(&kb, &["e:twin1"]);
        assert!(queue.len() > 1, "need multiple roots, got {}", queue.len());
        let eval = Evaluator::new(&kb, 64);
        let par = parallel_remi_search(&eval, &queue, &ids, None, 1);
        assert_eq!(par.status, SearchStatus::NoSolution);
        assert_eq!(
            par.counters.roots_explored, 1,
            "floor must cancel the rest of the shard"
        );
    }

    #[test]
    fn parallel_empty_queue() {
        let kb = rennes_kb();
        let eval = Evaluator::new(&kb, 16);
        let rennes = kb.node_id_by_iri("e:Rennes").unwrap();
        let par = parallel_remi_search(&eval, &[], &[rennes], None, 4);
        assert_eq!(par.status, SearchStatus::NoSolution);
    }

    #[test]
    fn parallel_timeout() {
        let kb = rennes_kb();
        let (queue, ids, _) = setup(&kb, &["e:Rennes", "e:Nantes"]);
        let eval = Evaluator::new(&kb, 16);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        let par = parallel_remi_search(&eval, &queue, &ids, Some(past), 2);
        assert_eq!(par.status, SearchStatus::TimedOut);
    }

    #[test]
    fn many_threads_on_tiny_queue_is_safe() {
        let kb = rennes_kb();
        let (queue, ids, _) = setup(&kb, &["e:Rennes", "e:Nantes"]);
        let eval = Evaluator::new(&kb, 64);
        let par = parallel_remi_search(&eval, &queue, &ids, None, 64);
        assert!(par.best.is_some());
    }

    /// Determinism of *cost*: thread interleaving may change which of
    /// several equal-cost REs is reported, but never the optimal cost.
    #[test]
    fn repeated_parallel_runs_agree_on_cost() {
        let kb = rennes_kb();
        let (queue, ids, _) = setup(&kb, &["e:Rennes", "e:Nantes"]);
        let mut costs = Vec::new();
        for _ in 0..10 {
            let eval = Evaluator::new(&kb, 256);
            let par = parallel_remi_search(&eval, &queue, &ids, None, 4);
            costs.push(par.best.map(|(_, c)| c));
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "{costs:?}");
    }

    /// The lock-free cost mirror agrees with the striped incumbents and
    /// is monotone under out-of-order offers from different workers; the
    /// join-time merge picks the stripe minimum.
    #[test]
    fn atomic_best_cost_tracks_offers_monotonically() {
        let kb = rennes_kb();
        let (queue, _, model) = setup(&kb, &["e:Rennes"]);
        let exprs: Vec<Expression> = queue
            .iter()
            .take(3)
            .map(|se| Expression {
                parts: vec![se.expr],
            })
            .collect();
        assert!(exprs.len() >= 2, "need expressions to offer");
        let shared = Shared::new(3);
        assert!(shared.best_cost().is_infinite());
        // Offer in a worsening-then-improving order, from distinct
        // worker stripes: the cost mirror is global across stripes.
        shared.offer(0, exprs[0].clone(), Bits::new(5.0));
        assert_eq!(shared.best_cost(), Bits::new(5.0));
        shared.offer(1, exprs[1].clone(), Bits::new(9.0)); // worse globally
        assert_eq!(shared.best_cost(), Bits::new(5.0));
        shared.offer(2, exprs[1].clone(), Bits::new(2.0));
        assert_eq!(shared.best_cost(), Bits::new(2.0));
        // Stripe 1 holds its local 9.0 incumbent, but the merge must
        // return the global minimum across stripes.
        let (_, cost) = shared.take_best().expect("incumbent installed");
        assert_eq!(cost, Bits::new(2.0));
        // take_best drains the stripes.
        assert!(shared.take_best().is_none());
        let _ = model;
    }

    /// A stripe index beyond the stripe count wraps instead of panicking
    /// (executors may report worker indices ≥ the broadcast task count).
    #[test]
    fn offer_wraps_out_of_range_stripe() {
        let kb = rennes_kb();
        let (queue, _, _) = setup(&kb, &["e:Rennes"]);
        let expr = Expression {
            parts: vec![queue[0].expr],
        };
        let shared = Shared::new(2);
        shared.offer(7, expr, Bits::new(3.0));
        assert_eq!(shared.best_cost(), Bits::new(3.0));
        assert_eq!(shared.take_best().map(|(_, c)| c), Some(Bits::new(3.0)));
    }

    #[test]
    fn shard_size_is_bounded_and_positive() {
        assert_eq!(root_shard_size(0, 4), 1);
        assert_eq!(root_shard_size(3, 4), 1);
        assert_eq!(root_shard_size(320, 4), 20);
        assert_eq!(root_shard_size(1 << 20, 2), 64); // capped
        assert_eq!(root_shard_size(100, 0), 25); // tasks floored at 1
    }

    proptest! {
        /// The pooled executor and the spawn-per-call baseline agree on
        /// the incumbent cost for arbitrary target pairs and thread
        /// counts (the §3.4 rules are executor-independent).
        #[test]
        fn pool_and_spawn_scope_agree_on_incumbent(
            a in 0usize..6,
            b in 0usize..6,
            threads in 1usize..6,
        ) {
            let kb = rennes_kb();
            let cities = ["e:Rennes", "e:Nantes", "e:Vannes", "e:Lille",
                          "e:mayorRennes", "e:mayorVannes"];
            let targets = if a == b { vec![cities[a]] } else { vec![cities[a], cities[b]] };
            let (queue, ids, _) = setup(&kb, &targets);
            let eval_pool = Evaluator::new(&kb, 256);
            let pooled = parallel_remi_search_on(
                remi_pool::global(), &eval_pool, &queue, &ids, None, threads);
            let eval_spawn = Evaluator::new(&kb, 256);
            let spawned = parallel_remi_search_on(
                &SpawnExecutor, &eval_spawn, &queue, &ids, None, threads);
            prop_assert_eq!(pooled.status, spawned.status);
            prop_assert_eq!(
                pooled.best.map(|(_, c)| c),
                spawned.best.map(|(_, c)| c)
            );
        }
    }
}
