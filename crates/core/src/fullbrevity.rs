//! Dale's *full brevity* algorithm — the classic RE baseline (§5, [3]).
//!
//! Full brevity performs a breadth-first search over conjunctions of the
//! target's attributes by increasing length and returns the first
//! (shortest) referring expression. It embodies the *state-of-the-art
//! language bias* (bound atoms only) and the atom-count notion of
//! conciseness the paper argues against: all REs of the same length are
//! equally good, regardless of how obscure their concepts are.
//!
//! Included because the paper's related-work comparison is against this
//! family of algorithms, and because it is the natural opponent on scene
//! KBs (`remi-synth::scenes`).

use remi_kb::term::TermKind;
use remi_kb::{KnowledgeBase, NodeId, PredId};

use crate::eval::Evaluator;
use crate::expr::{Expression, SubgraphExpr};

/// Upper bound on the candidate attributes considered (guards against
/// degenerate hub entities; the classic algorithm assumes scene-sized
/// attribute sets).
const MAX_ATTRIBUTES: usize = 24;

/// Result of a full-brevity search.
#[derive(Debug, Clone)]
pub struct FullBrevityOutcome {
    /// The shortest RE found (ties broken by attribute order), if any.
    pub best: Option<Expression>,
    /// Number of conjunctions tested.
    pub tested: u64,
    /// The search was cut off by the conjunction-size bound.
    pub exhausted: bool,
}

/// Finds a shortest conjunction of bound atoms describing exactly
/// `targets`, testing conjunctions in increasing length up to `max_len`.
pub fn full_brevity(kb: &KnowledgeBase, targets: &[NodeId], max_len: usize) -> FullBrevityOutcome {
    assert!(!targets.is_empty(), "need at least one target");
    let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted_targets.sort_unstable();
    sorted_targets.dedup();

    // Candidate attributes: bound atoms shared by all targets.
    let first = targets[0];
    let mut attributes: Vec<SubgraphExpr> = Vec::new();
    for p in kb.preds_of_subject(first) {
        let p = PredId(p);
        for o in kb.objects(p, first) {
            let o = NodeId(o);
            if kb.node_kind(o) == TermKind::Blank {
                continue;
            }
            if targets.iter().all(|&t| kb.contains(t, p, o)) {
                attributes.push(SubgraphExpr::Atom { p, o });
            }
        }
    }
    attributes.sort_unstable();
    attributes.truncate(MAX_ATTRIBUTES);

    let eval = Evaluator::new(kb, 1024);
    let mut tested = 0u64;

    // Breadth-first over conjunction sizes.
    for len in 1..=max_len.min(attributes.len()) {
        let mut indices: Vec<usize> = (0..len).collect();
        loop {
            let parts: Vec<SubgraphExpr> = indices.iter().map(|&i| attributes[i]).collect();
            tested += 1;
            if eval.is_referring_expression(&parts, &sorted_targets) {
                return FullBrevityOutcome {
                    best: Some(Expression { parts }),
                    tested,
                    exhausted: false,
                };
            }
            // Next combination of `len` indices out of attributes.len().
            let n = attributes.len();
            let mut i = len;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if indices[i] != i + n - len {
                    indices[i] += 1;
                    for j in (i + 1)..len {
                        indices[j] = indices[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    // All combinations of this length exhausted.
                    indices.clear();
                    break;
                }
            }
            if indices.is_empty() {
                break;
            }
            if indices[0] > n - len {
                break;
            }
        }
    }

    FullBrevityOutcome {
        best: None,
        tested,
        exhausted: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::KbBuilder;
    use remi_synth::scenes::generate_scene;

    #[test]
    fn finds_single_attribute_re() {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:in", "e:France");
        b.add_iri("e:Lyon", "p:in", "e:France");
        let kb = b.build().unwrap();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let out = full_brevity(&kb, &[paris], 3);
        let e = out.best.expect("capitalOf identifies Paris");
        assert_eq!(e.parts.len(), 1);
        let capital = kb.pred_id("p:capitalOf").unwrap();
        assert!(e.parts[0].predicates().contains(&capital));
    }

    #[test]
    fn prefers_shorter_over_cheaper() {
        // Full brevity's defining (mis)behaviour: a one-atom obscure RE
        // beats a two-atom intuitive one.
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:restingPlaceOf", "e:VictorHugo");
        b.add_iri("e:Paris", "p:in", "e:France");
        b.add_iri("e:Paris", "p:type", "e:City");
        b.add_iri("e:Lyon", "p:in", "e:France");
        b.add_iri("e:Lyon", "p:type", "e:City");
        let kb = b.build().unwrap();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let out = full_brevity(&kb, &[paris], 3);
        assert_eq!(out.best.expect("RE exists").parts.len(), 1);
    }

    #[test]
    fn finds_multi_attribute_re_on_scene() {
        let scene = generate_scene(30, 5);
        let kb = &scene.kb;
        // Find some object that needs more than zero attributes.
        let mut found_multi = false;
        for &obj in &scene.objects {
            let out = full_brevity(kb, &[obj], 4);
            if let Some(e) = out.best {
                // Verify the RE property.
                let eval = Evaluator::new(kb, 64);
                assert!(eval.is_referring_expression(&e.parts, &[obj.0]));
                if e.parts.len() >= 2 {
                    found_multi = true;
                }
            }
        }
        assert!(found_multi, "some scene object needs ≥2 attributes");
    }

    #[test]
    fn indistinguishable_twins_have_no_re() {
        let mut b = KbBuilder::new();
        b.add_iri("e:t1", "p:color", "e:Red");
        b.add_iri("e:t2", "p:color", "e:Red");
        let kb = b.build().unwrap();
        let t1 = kb.node_id_by_iri("e:t1").unwrap();
        let out = full_brevity(&kb, &[t1], 3);
        assert!(out.best.is_none());
        assert!(out.exhausted);
    }

    #[test]
    fn describes_pairs() {
        let mut b = KbBuilder::new();
        for t in ["a", "b"] {
            b.add_iri(&format!("e:{t}"), "p:color", "e:Red");
            b.add_iri(&format!("e:{t}"), "p:shape", "e:Cube");
        }
        b.add_iri("e:c", "p:color", "e:Red");
        b.add_iri("e:c", "p:shape", "e:Ball");
        let kb = b.build().unwrap();
        let targets = [
            kb.node_id_by_iri("e:a").unwrap(),
            kb.node_id_by_iri("e:b").unwrap(),
        ];
        let out = full_brevity(&kb, &targets, 3);
        let e = out.best.expect("red cubes are describable");
        let eval = Evaluator::new(&kb, 64);
        let mut sorted: Vec<u32> = targets.iter().map(|t| t.0).collect();
        sorted.sort_unstable();
        assert!(eval.is_referring_expression(&e.parts, &sorted));
    }

    #[test]
    fn tested_counter_grows_with_difficulty() {
        let scene = generate_scene(40, 11);
        let kb = &scene.kb;
        let mut max_tested = 0;
        for &obj in scene.objects.iter().take(10) {
            let out = full_brevity(kb, &[obj], 4);
            max_tested = max_tested.max(out.tested);
        }
        assert!(max_tested >= 1);
    }
}
