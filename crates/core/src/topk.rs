//! Top-k mining: the k least-complex *distinct* referring expressions.
//!
//! Algorithm 1 returns one RE; applications like the §4.1.2 study (and any
//! UI offering alternatives) want several. This module harvests the
//! per-root results of DFS-REMI: each subtree rooted at a queue element
//! yields its best RE, and the roots are cut off exactly when they can no
//! longer contribute (root cost ≥ the incumbent best) — so the cheapest
//! returned RE matches [`Remi::describe`](crate::Remi::describe) in cost.

use std::time::Instant;

use remi_kb::NodeId;

use crate::bits::Bits;
use crate::eval::Evaluator;
use crate::expr::Expression;
use crate::miner::Remi;
use crate::search::{dfs_remi, SearchCounters};

/// A scored referring expression.
#[derive(Debug, Clone)]
pub struct RankedRe {
    /// The expression.
    pub expr: Expression,
    /// Its `Ĉ`.
    pub cost: Bits,
}

/// Mines up to `k` distinct REs for `targets`, cheapest first.
///
/// The first element (when any exists) has the same cost as the single
/// answer of [`Remi::describe`]. Later elements are the best REs of other
/// DFS subtrees — the "other REs encountered during search space
/// traversal" of the paper's §4.1.2 protocol.
pub fn describe_top_k(remi: &Remi<'_>, targets: &[NodeId], k: usize) -> Vec<RankedRe> {
    assert!(k >= 1, "k must be at least 1");
    let (queue, _) = remi.ranked_common_expressions(targets);
    let eval = Evaluator::new(remi.kb(), remi.config().cache_capacity);
    // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
    let deadline = remi.config().timeout.map(|t| Instant::now() + t);

    let mut sorted_targets: Vec<u32> = targets.iter().map(|t| t.0).collect();
    sorted_targets.sort_unstable();
    sorted_targets.dedup();

    let mut found: Vec<RankedRe> = Vec::new();
    let mut min_cost = Bits::INFINITY;
    let mut counters = SearchCounters::default();

    for root in 0..queue.len() {
        if let Some(d) = deadline {
            // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
            if Instant::now() >= d {
                break;
            }
        }
        // Sound cutoff: roots at or above the incumbent cannot improve the
        // minimum; once k alternatives exist, stop there.
        if queue[root].cost >= min_cost && found.len() >= k {
            break;
        }
        if let Some((expr, cost)) = dfs_remi(
            &eval,
            &queue,
            root,
            &sorted_targets,
            deadline,
            &mut counters,
        ) {
            if found.iter().any(|r| r.expr == expr) {
                continue;
            }
            if cost < min_cost {
                min_cost = cost;
            }
            found.push(RankedRe { expr, cost });
        }
    }
    found.sort_by_key(|re| re.cost);
    found.truncate(k);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EnumerationConfig, RemiConfig};
    use remi_kb::{KbBuilder, KnowledgeBase};

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        // Rennes/Nantes with three independent distinguishing signals.
        for city in ["Rennes", "Nantes"] {
            b.add_iri(&format!("e:{city}"), "p:belongedTo", "e:Brittany");
            b.add_iri(&format!("e:{city}"), "p:placeOf", "e:Epitech");
            b.add_iri(&format!("e:{city}"), "p:mayor", &format!("e:mayor{city}"));
            b.add_iri(&format!("e:mayor{city}"), "p:party", "e:Socialist");
        }
        b.add_iri("e:Vannes", "p:belongedTo", "e:Brittany");
        b.add_iri("e:Paris", "p:placeOf", "e:Epitech");
        b.add_iri("e:Lille", "p:mayor", "e:mayorLille");
        b.add_iri("e:mayorLille", "p:party", "e:Socialist");
        b.build().unwrap()
    }

    fn remi(kb: &KnowledgeBase) -> Remi<'_> {
        Remi::new(
            kb,
            RemiConfig {
                enumeration: EnumerationConfig {
                    prominent_cutoff: 0.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    #[test]
    fn first_result_matches_describe() {
        let kb = kb();
        let remi = remi(&kb);
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let single = remi.describe(&targets);
        let top = describe_top_k(&remi, &targets, 3);
        assert!(!top.is_empty());
        assert_eq!(Some(top[0].cost), single.cost());
    }

    #[test]
    fn results_are_distinct_valid_and_sorted() {
        let kb = kb();
        let remi = remi(&kb);
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let top = describe_top_k(&remi, &targets, 5);
        assert!(top.len() >= 2, "multiple distinct REs exist");
        let eval = Evaluator::new(&kb, 64);
        let mut t: Vec<u32> = targets.iter().map(|n| n.0).collect();
        t.sort_unstable();
        for w in top.windows(2) {
            assert!(w[0].cost <= w[1].cost);
            assert_ne!(w[0].expr, w[1].expr);
        }
        for r in &top {
            assert!(eval.is_referring_expression(&r.expr.parts, &t));
        }
    }

    #[test]
    fn k_caps_the_result() {
        let kb = kb();
        let remi = remi(&kb);
        let targets = [
            kb.node_id_by_iri("e:Rennes").unwrap(),
            kb.node_id_by_iri("e:Nantes").unwrap(),
        ];
        let top = describe_top_k(&remi, &targets, 1);
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn no_solution_yields_empty() {
        let mut b = KbBuilder::new();
        b.add_iri("e:t1", "p:in", "e:Town");
        b.add_iri("e:t2", "p:in", "e:Town");
        let kb = b.build().unwrap();
        let remi = remi(&kb);
        let t1 = kb.node_id_by_iri("e:t1").unwrap();
        assert!(describe_top_k(&remi, &[t1], 3).is_empty());
    }
}
