//! Evaluation of subgraph expressions and referring expressions against
//! the KB: computing the set of entities the root variable `x` can bind to.
//!
//! The RE test of Algorithms 1–3 — `e′(K) = T` — reduces to computing the
//! sorted binding set of each conjunct and intersecting. Binding sets of
//! individual subgraph expressions are memoised in the §3.5.2 LRU cache,
//! because the DFS re-evaluates the same conjuncts along many branches.

use std::sync::Arc;

use parking_lot::Mutex;

use remi_kb::cache::LruCache;
use remi_kb::{Bindings, KnowledgeBase, NodeId};

use crate::expr::SubgraphExpr;

/// Intersects two sorted id lists (slices or backend [`Bindings`]).
pub fn intersect_sorted<'a>(a: impl Into<Bindings<'a>>, b: impl Into<Bindings<'a>>) -> Vec<u32> {
    let (a, b) = (a.into(), b.into());
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    if let (Bindings::Slice(a), Bindings::Slice(b)) = (a, b) {
        // Fast path for the CSR backend: direct slice indexing.
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        return out;
    }
    let (mut ai, mut bi) = (a.iter(), b.iter());
    let (mut x, mut y) = (ai.next(), bi.next());
    while let (Some(xa), Some(yb)) = (x, y) {
        match xa.cmp(&yb) {
            std::cmp::Ordering::Less => x = ai.next(),
            std::cmp::Ordering::Greater => y = bi.next(),
            std::cmp::Ordering::Equal => {
                out.push(xa);
                x = ai.next();
                y = bi.next();
            }
        }
    }
    out
}

/// True when two sorted id lists share at least one element.
pub fn sorted_intersects<'a>(a: impl Into<Bindings<'a>>, b: impl Into<Bindings<'a>>) -> bool {
    let (a, b) = (a.into(), b.into());
    let (mut ai, mut bi) = (a.iter(), b.iter());
    let (mut x, mut y) = (ai.next(), bi.next());
    while let (Some(xa), Some(yb)) = (x, y) {
        match xa.cmp(&yb) {
            std::cmp::Ordering::Less => x = ai.next(),
            std::cmp::Ordering::Greater => y = bi.next(),
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Computes the sorted root-variable bindings of a subgraph expression,
/// uncached. Exposed for testing; normal callers go through [`Evaluator`].
pub fn raw_bindings(kb: &KnowledgeBase, e: &SubgraphExpr) -> Vec<u32> {
    match *e {
        SubgraphExpr::Atom { p, o } => kb.subjects(p, o).to_vec(),
        SubgraphExpr::Path { p0, p1, o } => {
            // x : ∃y p0(x,y) ∧ p1(y,o)
            let mut xs: Vec<u32> = Vec::new();
            for y in kb.subjects(p1, o) {
                xs.extend(kb.subjects(p0, NodeId(y)));
            }
            xs.sort_unstable();
            xs.dedup();
            xs
        }
        SubgraphExpr::PathStar { p0, p1, o1, p2, o2 } => {
            // y must satisfy both star atoms.
            let ys = intersect_sorted(kb.subjects(p1, o1), kb.subjects(p2, o2));
            let mut xs: Vec<u32> = Vec::new();
            for &y in &ys {
                xs.extend(kb.subjects(p0, NodeId(y)));
            }
            xs.sort_unstable();
            xs.dedup();
            xs
        }
        SubgraphExpr::Closed2 { p0, p1 } => {
            // x : ∃y p0(x,y) ∧ p1(x,y) — iterate the smaller predicate.
            let (small, large) = if kb.index(p0).num_subjects() <= kb.index(p1).num_subjects() {
                (p0, p1)
            } else {
                (p1, p0)
            };
            let mut xs: Vec<u32> = Vec::new();
            for (s, objs) in kb.index(small).iter_subjects() {
                if sorted_intersects(objs, kb.objects(large, s)) {
                    xs.push(s.0);
                }
            }
            xs.sort_unstable();
            xs
        }
        SubgraphExpr::Closed3 { p0, p1, p2 } => {
            let mut preds = [p0, p1, p2];
            preds.sort_by_key(|&p| kb.index(p).num_subjects());
            let mut xs: Vec<u32> = Vec::new();
            for (s, objs) in kb.index(preds[0]).iter_subjects() {
                let both = intersect_sorted(objs, kb.objects(preds[1], s));
                if !both.is_empty() && sorted_intersects(&both, kb.objects(preds[2], s)) {
                    xs.push(s.0);
                }
            }
            xs.sort_unstable();
            xs
        }
    }
}

/// Statistics of an evaluator's life so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalStats {
    /// Cache hits on subgraph binding sets.
    pub cache_hits: u64,
    /// Cache misses (i.e. fresh evaluations).
    pub cache_misses: u64,
    /// Number of `e′(K) = T` referring-expression tests executed.
    pub re_tests: u64,
}

/// A caching evaluator shared by the (possibly parallel) search.
pub struct Evaluator<'kb> {
    kb: &'kb KnowledgeBase,
    cache: Mutex<LruCache<SubgraphExpr, Arc<Vec<u32>>>>,
    re_tests: std::sync::atomic::AtomicU64,
}

impl<'kb> Evaluator<'kb> {
    /// Creates an evaluator with the given LRU capacity.
    pub fn new(kb: &'kb KnowledgeBase, cache_capacity: usize) -> Self {
        Evaluator {
            kb,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            re_tests: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The underlying KB.
    pub fn kb(&self) -> &'kb KnowledgeBase {
        self.kb
    }

    /// Sorted bindings of one subgraph expression (cached).
    pub fn bindings(&self, e: &SubgraphExpr) -> Arc<Vec<u32>> {
        let mut cache = self.cache.lock();
        if let Some(hit) = cache.get(e) {
            return Arc::clone(hit);
        }
        drop(cache); // do not hold the lock during evaluation
        let fresh = Arc::new(raw_bindings(self.kb, e));
        self.cache.lock().put(*e, Arc::clone(&fresh));
        fresh
    }

    /// Sorted bindings of a conjunction (intersection of conjunct
    /// bindings), with cheap early exit on empty intermediate results.
    pub fn conjunction_bindings(&self, parts: &[SubgraphExpr]) -> Vec<u32> {
        match parts {
            [] => Vec::new(),
            [only] => self.bindings(only).as_ref().clone(),
            [first, rest @ ..] => {
                let mut acc = self.bindings(first).as_ref().clone();
                for part in rest {
                    if acc.is_empty() {
                        break;
                    }
                    let b = self.bindings(part);
                    acc = intersect_sorted(&acc, b.as_ref());
                }
                acc
            }
        }
    }

    /// The RE test `e′(K) = T`: do the bindings of the conjunction equal
    /// exactly the (sorted) target set?
    ///
    /// During search every conjunct matches every target by construction,
    /// so bindings ⊇ targets; testing the cardinality would suffice there.
    /// This method performs the full equality check so it is also correct
    /// for arbitrary expressions (e.g. in tests and the AMIE bridge).
    pub fn is_referring_expression(&self, parts: &[SubgraphExpr], sorted_targets: &[u32]) -> bool {
        self.re_tests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if parts.is_empty() {
            return false; // ⊤ matches everything, never an RE
        }
        let bindings = self.conjunction_bindings(parts);
        bindings == sorted_targets
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EvalStats {
        let cache = self.cache.lock();
        EvalStats {
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            re_tests: self.re_tests.load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_kb::KbBuilder;

    /// The paper's running example: Guyana and Suriname are the only South
    /// American countries with a Germanic official language.
    fn americas_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for (c, lang) in [
            ("Guyana", "English"),
            ("Suriname", "Dutch"),
            ("Brazil", "Portuguese"),
            ("Peru", "Spanish"),
            ("Argentina", "Spanish"),
        ] {
            b.add_iri(&format!("e:{c}"), "p:in", "e:SouthAmerica");
            b.add_iri(
                &format!("e:{c}"),
                "p:officialLanguage",
                &format!("e:{lang}"),
            );
        }
        b.add_iri("e:Germany", "p:in", "e:Europe");
        b.add_iri("e:Germany", "p:officialLanguage", "e:German");
        for l in ["English", "Dutch", "German"] {
            b.add_iri(&format!("e:{l}"), "p:langFamily", "e:Germanic");
        }
        for l in ["Portuguese", "Spanish"] {
            b.add_iri(&format!("e:{l}"), "p:langFamily", "e:Romance");
        }
        b.build().unwrap()
    }

    fn node(kb: &KnowledgeBase, iri: &str) -> NodeId {
        kb.node_id_by_iri(iri).unwrap()
    }

    #[test]
    fn atom_bindings() {
        let kb = americas_kb();
        let in_p = kb.pred_id("p:in").unwrap();
        let sa = node(&kb, "e:SouthAmerica");
        let e = SubgraphExpr::Atom { p: in_p, o: sa };
        let xs = raw_bindings(&kb, &e);
        assert_eq!(xs.len(), 5);
        assert!(xs.contains(&node(&kb, "e:Guyana").0));
        assert!(!xs.contains(&node(&kb, "e:Germany").0));
    }

    #[test]
    fn path_bindings_follow_existential() {
        let kb = americas_kb();
        let lang = kb.pred_id("p:officialLanguage").unwrap();
        let fam = kb.pred_id("p:langFamily").unwrap();
        let germanic = node(&kb, "e:Germanic");
        let e = SubgraphExpr::Path {
            p0: lang,
            p1: fam,
            o: germanic,
        };
        let xs = raw_bindings(&kb, &e);
        let expect: Vec<u32> = {
            let mut v = vec![
                node(&kb, "e:Guyana").0,
                node(&kb, "e:Suriname").0,
                node(&kb, "e:Germany").0,
            ];
            v.sort_unstable();
            v
        };
        assert_eq!(xs, expect);
    }

    #[test]
    fn paper_example_is_an_re() {
        let kb = americas_kb();
        let in_p = kb.pred_id("p:in").unwrap();
        let lang = kb.pred_id("p:officialLanguage").unwrap();
        let fam = kb.pred_id("p:langFamily").unwrap();
        let sa = node(&kb, "e:SouthAmerica");
        let germanic = node(&kb, "e:Germanic");

        let parts = [
            SubgraphExpr::Atom { p: in_p, o: sa },
            SubgraphExpr::Path {
                p0: lang,
                p1: fam,
                o: germanic,
            },
        ];
        let ev = Evaluator::new(&kb, 64);
        let mut targets = vec![node(&kb, "e:Guyana").0, node(&kb, "e:Suriname").0];
        targets.sort_unstable();
        assert!(ev.is_referring_expression(&parts, &targets));

        // Not an RE for Guyana alone (Suriname also matches).
        let solo = vec![node(&kb, "e:Guyana").0];
        assert!(!ev.is_referring_expression(&parts, &solo));
    }

    #[test]
    fn path_star_constrains_intermediate() {
        let mut b = KbBuilder::new();
        // x0 → a; a is red and round. x1 → b; b is red only.
        b.add_iri("e:x0", "p:has", "e:a");
        b.add_iri("e:x1", "p:has", "e:b");
        b.add_iri("e:a", "p:color", "e:Red");
        b.add_iri("e:a", "p:shape", "e:Round");
        b.add_iri("e:b", "p:color", "e:Red");
        let kb = b.build().unwrap();
        let has = kb.pred_id("p:has").unwrap();
        let color = kb.pred_id("p:color").unwrap();
        let shape = kb.pred_id("p:shape").unwrap();
        let red = node(&kb, "e:Red");
        let round = node(&kb, "e:Round");
        let e = SubgraphExpr::path_star(has, (color, red), (shape, round));
        let xs = raw_bindings(&kb, &e);
        assert_eq!(xs, vec![node(&kb, "e:x0").0]);
    }

    #[test]
    fn closed2_requires_shared_object() {
        let mut b = KbBuilder::new();
        b.add_iri("e:p1", "p:bornIn", "e:Paris");
        b.add_iri("e:p1", "p:diedIn", "e:Paris");
        b.add_iri("e:p2", "p:bornIn", "e:Paris");
        b.add_iri("e:p2", "p:diedIn", "e:Lyon");
        let kb = b.build().unwrap();
        let born = kb.pred_id("p:bornIn").unwrap();
        let died = kb.pred_id("p:diedIn").unwrap();
        let e = SubgraphExpr::closed2(born, died);
        let xs = raw_bindings(&kb, &e);
        assert_eq!(xs, vec![node(&kb, "e:p1").0]);
    }

    #[test]
    fn closed3_requires_triple_shared_object() {
        let mut b = KbBuilder::new();
        b.add_iri("e:p1", "p:bornIn", "e:Paris");
        b.add_iri("e:p1", "p:livedIn", "e:Paris");
        b.add_iri("e:p1", "p:diedIn", "e:Paris");
        b.add_iri("e:p2", "p:bornIn", "e:Lyon");
        b.add_iri("e:p2", "p:livedIn", "e:Lyon");
        b.add_iri("e:p2", "p:diedIn", "e:Paris");
        let kb = b.build().unwrap();
        let e = SubgraphExpr::closed3(
            kb.pred_id("p:bornIn").unwrap(),
            kb.pred_id("p:livedIn").unwrap(),
            kb.pred_id("p:diedIn").unwrap(),
        );
        let xs = raw_bindings(&kb, &e);
        assert_eq!(xs, vec![node(&kb, "e:p1").0]);
    }

    #[test]
    fn conjunction_intersects() {
        let kb = americas_kb();
        let ev = Evaluator::new(&kb, 64);
        let in_p = kb.pred_id("p:in").unwrap();
        let lang = kb.pred_id("p:officialLanguage").unwrap();
        let sa = node(&kb, "e:SouthAmerica");
        let english = node(&kb, "e:English");
        let xs = ev.conjunction_bindings(&[
            SubgraphExpr::Atom { p: in_p, o: sa },
            SubgraphExpr::Atom {
                p: lang,
                o: english,
            },
        ]);
        assert_eq!(xs, vec![node(&kb, "e:Guyana").0]);
    }

    #[test]
    fn cache_hits_accumulate() {
        let kb = americas_kb();
        let ev = Evaluator::new(&kb, 64);
        let in_p = kb.pred_id("p:in").unwrap();
        let sa = node(&kb, "e:SouthAmerica");
        let e = SubgraphExpr::Atom { p: in_p, o: sa };
        ev.bindings(&e);
        ev.bindings(&e);
        ev.bindings(&e);
        let stats = ev.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn top_is_never_an_re() {
        let kb = americas_kb();
        let ev = Evaluator::new(&kb, 4);
        assert!(!ev.is_referring_expression(&[], &[0]));
    }

    #[test]
    fn intersect_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert!(sorted_intersects(&[1, 9], &[9]));
        assert!(!sorted_intersects(&[1, 9], &[2, 8, 10]));
    }
}
