//! Configuration for the REMI miner.

use std::time::Duration;

use crate::complexity::{EntityCodeMode, Prominence};

/// Which language of subgraph expressions to mine in (§3.2, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LanguageBias {
    /// The state-of-the-art language: conjunctions of bound atoms
    /// `p(x, I)` only.
    Standard,
    /// REMI's extended language: Table 1 (single atom, path, path+star,
    /// 2-closed, 3-closed) — at most one extra variable, at most 3 atoms.
    Remi,
}

/// Knobs for the enumeration of subgraph expressions; the defaults encode
/// the paper's pruning heuristics (§3.5.2).
#[derive(Debug, Clone)]
pub struct EnumerationConfig {
    /// Language bias.
    pub language: LanguageBias,
    /// Skip multi-atom derivation from atoms whose object is among this
    /// top fraction of most frequent entities (paper: 0.05).
    pub prominent_cutoff: f64,
    /// Maximum (p, o) fact pairs considered per intermediate entity when
    /// deriving path+star shapes; bounds the quadratic blow-up.
    pub max_star_pairs: usize,
    /// Hard cap on the number of subgraph expressions enumerated per
    /// entity (a safety valve; the paper saw up to 25.2 k).
    pub max_exprs_per_entity: usize,
    /// Exclude `rdfs:label` (and similar identifier predicates) from
    /// expressions — labels trivially identify entities and produce
    /// degenerate REs.
    pub exclude_label: bool,
    /// Exclude `rdf:type` atoms (used by the Table 3 protocol, which
    /// removes `type` to match the gold-standard language).
    pub exclude_type: bool,
    /// Exclude materialised inverse predicates (also a Table 3 knob).
    pub exclude_inverse: bool,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig {
            language: LanguageBias::Remi,
            prominent_cutoff: 0.05,
            max_star_pairs: 64,
            max_exprs_per_entity: 50_000,
            exclude_label: true,
            exclude_type: false,
            exclude_inverse: false,
        }
    }
}

/// Full miner configuration.
#[derive(Debug, Clone)]
pub struct RemiConfig {
    /// Enumeration knobs.
    pub enumeration: EnumerationConfig,
    /// Prominence metric for `Ĉ` (§3.1).
    pub prominence: Prominence,
    /// Conditional entity-code computation (§3.5.3).
    pub entity_code: EntityCodeMode,
    /// LRU capacity for the binding-set cache (§3.5.2).
    pub cache_capacity: usize,
    /// Wall-clock timeout for one mining call (the paper uses 2 h per
    /// set; experiments here use seconds).
    pub timeout: Option<Duration>,
    /// Worker tasks for P-REMI (§3.4). `1` means sequential REMI. Values
    /// above 1 run on the process-wide [`remi_pool::global`] executor, so
    /// effective parallelism is additionally capped by the pool size
    /// (`REMI_THREADS`, or the machine's available parallelism).
    pub threads: usize,
    /// Cut the root loop of Algorithm 1 as soon as the next root alone is
    /// at least as complex as the incumbent solution (sound because costs
    /// only grow along a branch; P-REMI applies the equivalent rule via
    /// its shared-best backtracking). Disable for the ablation bench.
    pub incumbent_root_cutoff: bool,
}

impl Default for RemiConfig {
    fn default() -> Self {
        RemiConfig {
            enumeration: EnumerationConfig::default(),
            prominence: Prominence::Frequency,
            entity_code: EntityCodeMode::PowerLaw,
            cache_capacity: 16_384,
            timeout: None,
            threads: 1,
            incumbent_root_cutoff: true,
        }
    }
}

impl RemiConfig {
    /// A configuration using the state-of-the-art language bias.
    pub fn standard_language() -> Self {
        RemiConfig {
            enumeration: EnumerationConfig {
                language: LanguageBias::Standard,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Sets the number of P-REMI worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets `threads` to the shared executor's configured parallelism:
    /// `REMI_THREADS` if set, otherwise the machine's available
    /// parallelism. This is the one knob every parallel path (P-REMI,
    /// queue scoring, PageRank) shares.
    pub fn with_auto_threads(self) -> Self {
        self.with_threads(remi_pool::configured_threads())
    }

    /// Sets the timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the prominence metric.
    pub fn with_prominence(mut self, metric: Prominence) -> Self {
        self.prominence = metric;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = RemiConfig::default();
        assert_eq!(c.enumeration.language, LanguageBias::Remi);
        assert!((c.enumeration.prominent_cutoff - 0.05).abs() < 1e-12);
        assert_eq!(c.prominence, Prominence::Frequency);
        assert_eq!(c.entity_code, EntityCodeMode::PowerLaw);
        assert_eq!(c.threads, 1);
        assert!(c.incumbent_root_cutoff);
    }

    #[test]
    fn builders_compose() {
        let c = RemiConfig::standard_language()
            .with_threads(8)
            .with_timeout(Duration::from_secs(5))
            .with_prominence(Prominence::PageRank);
        assert_eq!(c.enumeration.language, LanguageBias::Standard);
        assert_eq!(c.threads, 8);
        assert_eq!(c.timeout, Some(Duration::from_secs(5)));
        assert_eq!(c.prominence, Prominence::PageRank);
    }

    #[test]
    fn thread_floor_is_one() {
        let c = RemiConfig::default().with_threads(0);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn auto_threads_matches_the_shared_executor_config() {
        let c = RemiConfig::default().with_auto_threads();
        assert_eq!(c.threads, remi_pool::configured_threads());
        assert!(c.threads >= 1);
    }
}
