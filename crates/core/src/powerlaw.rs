//! Power-law compression of conditional rankings (Eq. 1).
//!
//! §3.5.3: storing the exact rank `k(I | p)` for every entity–predicate
//! pair is expensive, but term frequencies follow a power law, so
//! `log2(k(I | p)) ≈ −α · log2(fr(I | p)) + β` — a linear model in log-log
//! space. The paper fits one `(α, β)` pair per predicate by least squares
//! and reports average R² of 0.85 (DBpedia/fr), 0.88 (Wikidata/fr), and
//! 0.91 (DBpedia/pr). This module implements the fit and the R² metric.

/// Result of fitting `y = −α·x + β` (with `x = log2(freq)`,
/// `y = log2(rank)`) by ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Slope magnitude `α` (the model predicts `−α·x + β`).
    pub alpha: f64,
    /// Intercept `β`.
    pub beta: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
    /// Number of points the fit was computed on.
    pub n: usize,
}

impl PowerLawFit {
    /// A degenerate fit used for predicates with fewer than two distinct
    /// object frequencies: predicts rank 1 (0 bits) regardless of frequency.
    pub fn degenerate() -> PowerLawFit {
        PowerLawFit {
            alpha: 0.0,
            beta: 0.0,
            r2: 1.0,
            n: 0,
        }
    }

    /// Predicted `log2(rank)` for a prominence value (frequency or
    /// PageRank score), clamped to be non-negative.
    pub fn bits_for(&self, prominence: f64) -> f64 {
        let x = prominence.max(f64::MIN_POSITIVE).log2();
        (-self.alpha * x + self.beta).max(0.0)
    }
}

/// Fits the Eq. 1 model to `(prominence, rank)` points, where `rank` is
/// 1-based. Points with non-positive prominence are skipped.
pub fn fit_power_law(points: &[(f64, u64)]) -> PowerLawFit {
    let data: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(freq, _)| freq > 0.0)
        .map(|&(freq, rank)| (freq.log2(), (rank.max(1) as f64).log2()))
        .collect();
    let n = data.len();
    if n < 2 {
        return PowerLawFit::degenerate();
    }
    let nf = n as f64;
    let sum_x: f64 = data.iter().map(|p| p.0).sum();
    let sum_y: f64 = data.iter().map(|p| p.1).sum();
    let mean_x = sum_x / nf;
    let mean_y = sum_y / nf;
    let sxx: f64 = data.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = data.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    if sxx == 0.0 {
        // All x identical: every object has the same frequency; rank is
        // arbitrary, predict the mean.
        return PowerLawFit {
            alpha: 0.0,
            beta: mean_y,
            r2: 1.0,
            n,
        };
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // R² against the fitted line.
    let ss_tot: f64 = data.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = data
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    PowerLawFit {
        alpha: -slope,
        beta: intercept,
        r2,
        n,
    }
}

/// Builds the `(prominence, rank)` points for a conditional ranking: input
/// is the multiset of prominence values of the ranked items, most prominent
/// first. Ties share the rank of their first member (competition ranking).
pub fn ranking_points(prominences_desc: &[f64]) -> Vec<(f64, u64)> {
    let mut out = Vec::with_capacity(prominences_desc.len());
    let mut rank_of_value = 1u64;
    for (i, &v) in prominences_desc.iter().enumerate() {
        if i > 0 && prominences_desc[i - 1] > v {
            rank_of_value = (i + 1) as u64;
        }
        debug_assert!(
            i == 0 || prominences_desc[i - 1] >= v,
            "input must be sorted descending"
        );
        out.push((v, rank_of_value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_power_law_fits_exactly() {
        // rank = C / freq^2  =>  log2(rank) = -2 log2(freq) + log2(C)
        let points: Vec<(f64, u64)> = (1..=64u64)
            .map(|rank| {
                let freq = (4096.0 / rank as f64).sqrt();
                (freq, rank)
            })
            .collect();
        let fit = fit_power_law(&points);
        assert!((fit.alpha - 2.0).abs() < 1e-9, "alpha = {}", fit.alpha);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_distribution_fits_well() {
        // Zipf: freq(k) = C / k  =>  perfect line with alpha = 1.
        let points: Vec<(f64, u64)> = (1..=1000u64).map(|k| (1000.0 / k as f64, k)).collect();
        let fit = fit_power_law(&points);
        assert!((fit.alpha - 1.0).abs() < 1e-9);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn noisy_data_reports_imperfect_r2() {
        let points: Vec<(f64, u64)> = (1..=100u64)
            .map(|k| {
                let noise = if k % 3 == 0 { 1.7 } else { 1.0 };
                (noise * 100.0 / k as f64, k)
            })
            .collect();
        let fit = fit_power_law(&points);
        assert!(fit.r2 < 1.0);
        assert!(fit.r2 > 0.5, "still broadly linear: {}", fit.r2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fit_power_law(&[]), PowerLawFit::degenerate());
        assert_eq!(fit_power_law(&[(5.0, 1)]), PowerLawFit::degenerate());
        // All-equal frequencies.
        let fit = fit_power_law(&[(3.0, 1), (3.0, 2), (3.0, 3)]);
        assert_eq!(fit.alpha, 0.0);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn bits_for_is_nonnegative_and_monotone() {
        let points: Vec<(f64, u64)> = (1..=200u64).map(|k| (200.0 / k as f64, k)).collect();
        let fit = fit_power_law(&points);
        assert!(fit.bits_for(1e9) >= 0.0); // extrapolation clamps at zero
        assert!(fit.bits_for(2.0) > fit.bits_for(100.0));
    }

    #[test]
    fn ranking_points_handles_ties() {
        let pts = ranking_points(&[10.0, 7.0, 7.0, 3.0]);
        assert_eq!(pts, vec![(10.0, 1), (7.0, 2), (7.0, 2), (3.0, 4)]);
    }

    #[test]
    fn ranking_points_empty() {
        assert!(ranking_points(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_r2_is_at_most_one(
            freqs in proptest::collection::vec(1.0f64..1e6, 2..50)
        ) {
            let mut sorted = freqs;
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let points = ranking_points(&sorted);
            let fit = fit_power_law(&points);
            prop_assert!(fit.r2 <= 1.0 + 1e-9);
            prop_assert!(fit.bits_for(sorted[0]) >= 0.0);
        }

        #[test]
        fn prop_ranks_are_weakly_increasing(
            freqs in proptest::collection::vec(1.0f64..1e6, 1..50)
        ) {
            let mut sorted = freqs;
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let pts = ranking_points(&sorted);
            for w in pts.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            // First rank is always 1.
            prop_assert_eq!(pts[0].1, 1);
        }
    }
}
