//! The top-level REMI miner: ties enumeration, complexity, and search into
//! the API a downstream user calls.

use std::time::{Duration, Instant};

use remi_kb::{KnowledgeBase, NodeId};

use crate::bits::Bits;
use crate::complexity::CostModel;
use crate::config::RemiConfig;
use crate::enumerate::{common_subgraph_expressions, EnumContext};
use crate::eval::{EvalStats, Evaluator};
use crate::expr::Expression;
use crate::search::{build_queue_parallel, parallel_or_sequential, ScoredExpr, SearchStatus};

/// Phase timings and counters of one mining call — the quantities §3.5.2
/// and §4.2.2 report (queue-construction share, cache behaviour, timeouts).
#[derive(Debug, Clone, Default)]
pub struct MiningStats {
    /// Number of common subgraph expressions (the queue size).
    pub queue_size: usize,
    /// Enumeration was truncated by a cap.
    pub truncated: bool,
    /// Time enumerating + scoring + sorting the queue (Alg. 1 lines 1–2).
    pub queue_time: Duration,
    /// Time in the DFS exploration (Alg. 1 lines 4–8).
    pub search_time: Duration,
    /// Search-tree nodes visited.
    pub nodes_visited: u64,
    /// RE tests executed.
    pub re_tests: u64,
    /// Binding-cache hits.
    pub cache_hits: u64,
    /// Binding-cache misses.
    pub cache_misses: u64,
}

/// The outcome of a mining call.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The least-complex RE found, with its `Ĉ` in bits.
    pub best: Option<(Expression, Bits)>,
    /// How the search ended.
    pub status: SearchStatus,
    /// Statistics.
    pub stats: MiningStats,
}

impl MiningOutcome {
    /// Convenience accessor for the expression.
    pub fn expression(&self) -> Option<&Expression> {
        self.best.as_ref().map(|(e, _)| e)
    }

    /// Convenience accessor for the cost.
    pub fn cost(&self) -> Option<Bits> {
        self.best.as_ref().map(|(_, c)| *c)
    }
}

/// The REMI miner. Construction precomputes the prominence rankings and
/// the §3.5.2 enumeration context; `describe` calls then mine REs for
/// arbitrary target sets.
pub struct Remi<'kb> {
    kb: &'kb KnowledgeBase,
    config: RemiConfig,
    model: CostModel<'kb>,
    ctx: EnumContext,
}

impl<'kb> Remi<'kb> {
    /// Builds a miner over `kb` with the given configuration.
    pub fn new(kb: &'kb KnowledgeBase, config: RemiConfig) -> Self {
        let model = CostModel::new(kb, config.prominence, config.entity_code);
        let ctx = EnumContext::new(kb, &config.enumeration);
        Remi {
            kb,
            config,
            model,
            ctx,
        }
    }

    /// The underlying KB.
    pub fn kb(&self) -> &'kb KnowledgeBase {
        self.kb
    }

    /// The cost model (exposed for experiments that inspect `Ĉ`).
    pub fn model(&self) -> &CostModel<'kb> {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &RemiConfig {
        &self.config
    }

    /// Line 1–2 of Algorithm 1: the priority queue of common subgraph
    /// expressions for `targets`, sorted by ascending `Ĉ`. Exposed because
    /// the Table 2 experiment ranks these directly.
    pub fn ranked_common_expressions(&self, targets: &[NodeId]) -> (Vec<ScoredExpr>, bool) {
        let (common, stats) =
            common_subgraph_expressions(self.kb, targets, &self.config.enumeration, &self.ctx);
        let queue = build_queue_parallel(&self.model, &common, self.config.threads);
        (queue, stats.truncated)
    }

    /// Mines the most intuitive RE for `targets` (Algorithm 1; P-REMI when
    /// `config.threads > 1`).
    pub fn describe(&self, targets: &[NodeId]) -> MiningOutcome {
        assert!(!targets.is_empty(), "need at least one target entity");
        // lint:allow(wallclock-in-mining): deadline enforcement for the opt-in timeout config — never affects scoring
        let deadline = self.config.timeout.map(|t| Instant::now() + t);

        // lint:allow(wallclock-in-mining): phase-duration instrumentation reported in MiningOutcome, not used in scoring
        let t0 = Instant::now();
        let (queue, truncated) = self.ranked_common_expressions(targets);
        let queue_time = t0.elapsed();

        let eval = Evaluator::new(self.kb, self.config.cache_capacity);
        // lint:allow(wallclock-in-mining): phase-duration instrumentation reported in MiningOutcome, not used in scoring
        let t1 = Instant::now();
        let result = parallel_or_sequential(
            &eval,
            &queue,
            targets,
            deadline,
            self.config.threads,
            self.config.incumbent_root_cutoff,
        );
        let search_time = t1.elapsed();
        let EvalStats {
            cache_hits,
            cache_misses,
            re_tests,
        } = eval.stats();

        MiningOutcome {
            best: result.best,
            status: result.status,
            stats: MiningStats {
                queue_size: queue.len(),
                truncated,
                queue_time,
                search_time,
                nodes_visited: result.counters.nodes_visited,
                re_tests,
                cache_hits,
                cache_misses,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EnumerationConfig, LanguageBias};
    use remi_kb::KbBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for (c, lang) in [
            ("Guyana", "English"),
            ("Suriname", "Dutch"),
            ("Brazil", "Portuguese"),
            ("Peru", "Spanish"),
            ("Argentina", "Spanish"),
        ] {
            b.add_iri(&format!("e:{c}"), "p:in", "e:SouthAmerica");
            b.add_iri(
                &format!("e:{c}"),
                "p:officialLanguage",
                &format!("e:{lang}"),
            );
        }
        for l in ["English", "Dutch"] {
            b.add_iri(&format!("e:{l}"), "p:langFamily", "e:Germanic");
        }
        for l in ["Portuguese", "Spanish"] {
            b.add_iri(&format!("e:{l}"), "p:langFamily", "e:Romance");
        }
        b.build().unwrap()
    }

    fn small_config() -> RemiConfig {
        RemiConfig {
            enumeration: EnumerationConfig {
                prominent_cutoff: 0.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn mines_the_guyana_suriname_example() {
        let kb = kb();
        let remi = Remi::new(&kb, small_config());
        let targets = [
            kb.node_id_by_iri("e:Guyana").unwrap(),
            kb.node_id_by_iri("e:Suriname").unwrap(),
        ];
        let outcome = remi.describe(&targets);
        assert_eq!(outcome.status, SearchStatus::Completed);
        let expr = outcome.expression().expect("the paper's §2.2.2 example");
        // Must be a genuine RE.
        let eval = Evaluator::new(&kb, 16);
        let mut t: Vec<u32> = targets.iter().map(|n| n.0).collect();
        t.sort_unstable();
        assert!(eval.is_referring_expression(&expr.parts, &t));
        assert!(outcome.stats.queue_size > 0);
        assert!(outcome.stats.re_tests > 0);
    }

    #[test]
    fn standard_language_may_fail_where_extended_succeeds() {
        // Guyana+Suriname share no single bound atom set that separates
        // them from the rest (their languages differ), but the Germanic
        // path describes them jointly — the motivating case for the
        // extended language bias.
        let kb = kb();
        let mut cfg = small_config();
        cfg.enumeration.language = LanguageBias::Standard;
        let remi_std = Remi::new(&kb, cfg);
        let targets = [
            kb.node_id_by_iri("e:Guyana").unwrap(),
            kb.node_id_by_iri("e:Suriname").unwrap(),
        ];
        let std_outcome = remi_std.describe(&targets);
        assert_eq!(std_outcome.status, SearchStatus::NoSolution);

        let remi_ext = Remi::new(&kb, small_config());
        let ext_outcome = remi_ext.describe(&targets);
        assert_eq!(ext_outcome.status, SearchStatus::Completed);
    }

    #[test]
    fn parallel_config_agrees_with_sequential() {
        let kb = kb();
        let targets = [
            kb.node_id_by_iri("e:Guyana").unwrap(),
            kb.node_id_by_iri("e:Suriname").unwrap(),
        ];
        let seq = Remi::new(&kb, small_config()).describe(&targets);
        let par = Remi::new(&kb, small_config().with_threads(4)).describe(&targets);
        assert_eq!(seq.cost(), par.cost());
    }

    #[test]
    fn ranked_expressions_are_sorted() {
        let kb = kb();
        let remi = Remi::new(&kb, small_config());
        let guyana = kb.node_id_by_iri("e:Guyana").unwrap();
        let (queue, truncated) = remi.ranked_common_expressions(&[guyana]);
        assert!(!truncated);
        assert!(!queue.is_empty());
        for w in queue.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_panic() {
        let kb = kb();
        let remi = Remi::new(&kb, small_config());
        remi.describe(&[]);
    }
}
