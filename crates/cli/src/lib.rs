//! `remi-cli` — library backing for the `remi` command-line tool.
//!
//! The CLI logic lives here (rather than in `main.rs`) so it is unit
//! testable: every subcommand is a function from parsed arguments to a
//! `Result<String>` of human-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

use remi_core::complexity::Prominence;
use remi_core::eval::Evaluator;
use remi_core::exceptions::{describe_with_exceptions, verbalize_with_exceptions};
use remi_core::{LanguageBias, Remi, RemiConfig, SearchStatus};
use remi_kb::binfmt::BinFormat;
use remi_kb::{Backend, KnowledgeBase, NodeId, PredId};

/// CLI errors: message + suggestion.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<remi_kb::KbError> for CliError {
    fn from(e: remi_kb::KbError) -> Self {
        CliError(e.to_string())
    }
}

/// Result alias for CLI operations.
pub type Result<T> = std::result::Result<T, CliError>;

/// Parses a `--backend` value.
pub fn parse_backend(s: &str) -> Result<Backend> {
    Backend::parse(s)
        .ok_or_else(|| CliError(format!("unknown backend {s:?} (expected csr or succinct)")))
}

/// Loads a KB from a path, dispatching on the extension:
/// `.nt`/`.ntriples` → N-Triples, anything else → a binary format (the
/// magic decides between `RKB1` and `RKB2`). Inverse predicates are
/// rebuilt for the top `inverse_fraction` where the format allows.
pub fn load_kb(path: &Path, inverse_fraction: f64) -> Result<KnowledgeBase> {
    remi_kb::load_path(path, inverse_fraction)
        .map_err(|e| CliError(format!("cannot read {}: {e}", path.display())))
}

/// Loads a KB and converts it to the requested backend (`None` keeps the
/// format-native one: CSR for N-Triples/`RKB1`, succinct for `RKB2`).
pub fn load_kb_as(
    path: &Path,
    inverse_fraction: f64,
    backend: Option<Backend>,
) -> Result<KnowledgeBase> {
    let kb = load_kb(path, inverse_fraction)?;
    Ok(match backend {
        Some(b) => kb.with_backend(b),
        None => kb,
    })
}

/// Saves a KB to a path: `.nt`/`.ntriples` → N-Triples, `.rkb2` → the
/// succinct `RKB2` format, anything else → `RKB1`. An explicit `format`
/// overrides the binary-extension dispatch.
pub fn save_kb_as(kb: &KnowledgeBase, path: &Path, format: Option<BinFormat>) -> Result<()> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    if ext == "nt" || ext == "ntriples" {
        let f = std::fs::File::create(path)
            .map_err(|e| CliError(format!("cannot create {}: {e}", path.display())))?;
        remi_kb::ntriples::write_kb(kb, std::io::BufWriter::new(f))?;
        return Ok(());
    }
    let format = format.unwrap_or(if ext == "rkb2" {
        BinFormat::Rkb2
    } else {
        BinFormat::Rkb1
    });
    Ok(remi_kb::binfmt::save_as(kb, path, format)?)
}

/// Saves a KB to a path, dispatching on the extension as in [`load_kb`].
pub fn save_kb(kb: &KnowledgeBase, path: &Path) -> Result<()> {
    save_kb_as(kb, path, None)
}

/// Formats the per-section store memory report shared by `stats` and
/// `describe`.
fn memory_report(kb: &KnowledgeBase) -> String {
    let mem = kb.store_memory();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store memory ({} backend): {} bytes",
        kb.backend(),
        mem.total()
    );
    for (name, bytes) in &mem.components {
        let _ = writeln!(out, "  {bytes:>12}  {name}");
    }
    let _ = writeln!(
        out,
        "  {:>12}  dictionaries (est.)",
        kb.node_dict().heap_bytes() + kb.pred_dict().heap_bytes()
    );
    out
}

/// `remi gen`: generates a synthetic KB and writes it out.
pub fn cmd_gen(profile: &str, scale: f64, seed: u64, out: &Path) -> Result<String> {
    let profile = match profile {
        "dbpedia" => remi_synth::dbpedia_like(),
        "wikidata" => remi_synth::wikidata_like(),
        other => {
            return Err(CliError(format!(
                "unknown profile {other:?} (expected dbpedia or wikidata)"
            )))
        }
    };
    let synth = remi_synth::generate(&profile, scale, seed);
    save_kb(&synth.kb, out)?;
    Ok(format!(
        "wrote {} ({} base triples, {} with inverses, {} nodes, {} predicates)",
        out.display(),
        synth.kb.num_triples(),
        synth.kb.num_triples_with_inverses(),
        synth.kb.num_nodes(),
        synth.kb.num_preds()
    ))
}

/// `remi convert`: transcodes between N-Triples and the binary formats
/// (`--format rkb1|rkb2` overrides the output-extension dispatch).
pub fn cmd_convert(input: &Path, output: &Path, format: Option<BinFormat>) -> Result<String> {
    let kb = load_kb(input, 0.0)?;
    save_kb_as(&kb, output, format)?;
    Ok(format!(
        "converted {} → {} ({} triples)",
        input.display(),
        output.display(),
        kb.num_triples()
    ))
}

/// `remi stats`: prints KB statistics — sizes, per-section store memory,
/// the most frequent predicates and entities (the head of the prominence
/// ranking `Ĉ` builds on).
pub fn cmd_stats(path: &Path, backend: Option<Backend>) -> Result<String> {
    let kb = load_kb_as(path, 0.01, backend)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} base triples ({} with inverses), {} nodes, {} predicates",
        path.display(),
        kb.num_triples(),
        kb.num_triples_with_inverses(),
        kb.num_nodes(),
        kb.num_preds()
    );
    let _ = writeln!(out);
    out.push_str(&memory_report(&kb));

    let mut preds: Vec<PredId> = kb.pred_ids().filter(|&p| !kb.is_inverse(p)).collect();
    preds.sort_by_key(|&p| std::cmp::Reverse(kb.pred_frequency(p)));
    let _ = writeln!(out, "\ntop predicates by frequency:");
    for &p in preds.iter().take(10) {
        let _ = writeln!(out, "  {:>8}  {}", kb.pred_frequency(p), kb.pred_name(p));
    }

    let top = kb.top_frequent_entities(1.0);
    let _ = writeln!(out, "\ntop entities by frequency:");
    for &e in top.iter().take(10) {
        let _ = writeln!(out, "  {:>8}  {}", kb.node_frequency(e), kb.node_name(e));
    }
    Ok(out)
}

/// Options for `remi describe`.
#[derive(Debug, Clone)]
pub struct DescribeOpts {
    /// Language bias.
    pub language: LanguageBias,
    /// Worker threads. Defaults to `REMI_THREADS` when that is set (the
    /// knob shared by every parallel path), else 1 (sequential REMI);
    /// `--threads` overrides both.
    pub threads: usize,
    /// Timeout in milliseconds (0 = none).
    pub timeout_ms: u64,
    /// Use PageRank prominence instead of frequency.
    pub pagerank: bool,
    /// Allow up to this many exceptions (§6 extension).
    pub exceptions: usize,
    /// Storage backend override (`None` keeps the format-native one).
    pub backend: Option<Backend>,
}

impl Default for DescribeOpts {
    fn default() -> Self {
        DescribeOpts {
            language: LanguageBias::Remi,
            threads: remi_pool::env_threads().unwrap_or(1),
            timeout_ms: 0,
            pagerank: false,
            exceptions: 0,
            backend: None,
        }
    }
}

/// `remi describe`: mines the most intuitive RE for the given entity IRIs.
pub fn cmd_describe(path: &Path, iris: &[String], opts: &DescribeOpts) -> Result<String> {
    let kb = load_kb_as(path, 0.01, opts.backend)?;
    let targets: Vec<NodeId> = iris
        .iter()
        .map(|iri| {
            kb.node_id_by_iri(iri)
                .ok_or_else(|| CliError(format!("entity not found in KB: {iri}")))
        })
        .collect::<Result<_>>()?;

    let mut config = RemiConfig {
        enumeration: remi_core::EnumerationConfig {
            language: opts.language,
            ..Default::default()
        },
        threads: opts.threads,
        ..Default::default()
    };
    if opts.timeout_ms > 0 {
        config.timeout = Some(std::time::Duration::from_millis(opts.timeout_ms));
    }
    if opts.pagerank {
        config.prominence = Prominence::PageRank;
    }
    let remi = Remi::new(&kb, config);
    let outcome = remi.describe(&targets);

    let mut out = String::new();
    match (&outcome.best, outcome.status) {
        (Some((expr, cost)), _) => {
            let _ = writeln!(out, "expression:  {}", expr.display(&kb));
            let _ = writeln!(
                out,
                "verbalised:  {}",
                remi_core::verbalize::verbalize(&kb, expr)
            );
            let _ = writeln!(out, "complexity:  {cost}");
        }
        (None, SearchStatus::NoSolution) if opts.exceptions > 0 => {
            let (queue, _) = remi.ranked_common_expressions(&targets);
            let eval = Evaluator::new(&kb, 4096);
            match describe_with_exceptions(
                &kb,
                remi.model(),
                &eval,
                &queue,
                &targets,
                opts.exceptions,
            ) {
                Some(re) => {
                    let _ = writeln!(out, "no exact RE; best with exceptions:");
                    let _ = writeln!(out, "expression:  {}", re.expr.display(&kb));
                    let _ = writeln!(out, "verbalised:  {}", verbalize_with_exceptions(&kb, &re));
                    let _ = writeln!(out, "complexity:  {}", re.cost);
                }
                None => {
                    let _ = writeln!(out, "no RE exists even with {} exceptions", opts.exceptions);
                }
            }
        }
        (None, status) => {
            let _ = writeln!(out, "no referring expression found ({status:?})");
        }
    }
    let _ = writeln!(
        out,
        "stats: queue {} | {} RE tests | cache {}/{} hits | {:.1?} queue + {:.1?} search",
        outcome.stats.queue_size,
        outcome.stats.re_tests,
        outcome.stats.cache_hits,
        outcome.stats.cache_hits + outcome.stats.cache_misses,
        outcome.stats.queue_time,
        outcome.stats.search_time,
    );
    let _ = writeln!(
        out,
        "memory: {} backend, {} store bytes",
        kb.backend(),
        kb.store_memory().total()
    );
    Ok(out)
}

/// `remi summarize`: prints a top-k summary of one entity.
pub fn cmd_summarize(
    path: &Path,
    iri: &str,
    k: usize,
    method: &str,
    backend: Option<Backend>,
) -> Result<String> {
    let kb = load_kb_as(path, 0.01, backend)?;
    let entity = kb
        .node_id_by_iri(iri)
        .ok_or_else(|| CliError(format!("entity not found in KB: {iri}")))?;
    let summary = match method {
        "remi" => {
            let model = remi_core::complexity::CostModel::new(
                &kb,
                Prominence::Frequency,
                remi_core::complexity::EntityCodeMode::PowerLaw,
            );
            remi_essum::remi_summary(&kb, &model, entity, k)
        }
        "faces" => remi_essum::faces_summary(&kb, entity, k),
        "linksum" => {
            let pr = remi_kb::pagerank::pagerank(&kb, remi_kb::pagerank::PageRankConfig::default());
            remi_essum::linksum_summary(&kb, &pr, entity, k)
        }
        other => {
            return Err(CliError(format!(
                "unknown method {other:?} (expected remi, faces, or linksum)"
            )))
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "summary of {} ({method}, top {k}):",
        kb.node_name(entity)
    );
    for (p, o) in summary {
        let _ = writeln!(out, "  {} → {}", kb.pred_name(p), kb.node_name(o));
    }
    Ok(out)
}

/// `remi query`: resolves a basic graph pattern (1–3 triple patterns,
/// slots starting with `?` are variables) against the KB and prints the
/// joined rows — the offline twin of the server's `POST /query`, sharing
/// the same `kb::query` engine, pattern syntax, and row order.
pub fn cmd_query(
    path: &Path,
    patterns: &[[String; 3]],
    limit: usize,
    backend: Option<Backend>,
) -> Result<String> {
    let kb = load_kb_as(path, 0.01, backend)?;
    let q = remi_kb::parse_patterns(&kb, patterns).map_err(|e| CliError(e.to_string()))?;
    let out = remi_kb::solve_bgp(kb.store(), &q.patterns, limit.max(1), None)
        .map_err(|e| CliError(e.to_string()))?;
    let mut msg = String::new();
    let names: Vec<String> = out
        .vars
        .iter()
        .filter_map(|&v| q.var_names.get(v as usize).map(|n| format!("?{n}")))
        .collect();
    if !names.is_empty() {
        let _ = writeln!(msg, "{}", names.join("\t"));
    }
    for row in &out.rows {
        let terms: Vec<&str> = out
            .vars
            .iter()
            .zip(row)
            .map(|(&v, &val)| {
                if q.pred_var.get(v as usize) == Some(&true) {
                    kb.pred_iri(PredId(val))
                } else {
                    kb.node_key(NodeId(val))
                }
            })
            .collect();
        let _ = writeln!(msg, "{}", terms.join("\t"));
    }
    let _ = writeln!(
        msg,
        "{} row(s){}",
        out.rows.len(),
        if out.truncated {
            " (truncated at --limit)"
        } else {
            ""
        }
    );
    Ok(msg)
}

/// Options for `remi serve`.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Bind address.
    pub addr: String,
    /// Storage backend override (`None` keeps the format-native one).
    pub backend: Option<Backend>,
    /// Response-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Admission-control watermark (503 load-shedding beyond it).
    pub max_inflight: usize,
    /// Default P-REMI task count per describe request.
    pub threads: usize,
    /// Delta-overlay size that triggers background compaction.
    pub compact_min_delta: usize,
    /// Log requests slower than this many milliseconds to stderr
    /// (`None` disables the slow-request log).
    pub slow_request_ms: Option<u64>,
    /// Flight-recorder ring capacity in events (bounds
    /// `GET /v1/debug/events`).
    pub event_capacity: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        let defaults = remi_serve::ServeConfig::default();
        ServeOpts {
            addr: "127.0.0.1:8080".to_string(),
            backend: None,
            cache_entries: defaults.cache_entries,
            max_inflight: defaults.max_inflight,
            threads: defaults.threads,
            compact_min_delta: defaults.compact_min_delta,
            slow_request_ms: defaults.slow_request_ms,
            event_capacity: defaults.event_capacity,
        }
    }
}

/// `remi serve`: loads the KB once and boots the embedded HTTP service.
/// Returns the running server handle plus the banner to print; the caller
/// decides whether to block on [`remi_serve::ServerHandle::wait`] (the
/// binary does) or to drive and shut it down programmatically (tests do).
pub fn cmd_serve(path: &Path, opts: &ServeOpts) -> Result<(remi_serve::ServerHandle, String)> {
    let kb = load_kb(path, 0.01)?;
    let config = remi_serve::ServeConfig {
        addr: opts.addr.clone(),
        backend: opts.backend,
        cache_entries: opts.cache_entries,
        max_inflight: opts.max_inflight,
        threads: opts.threads,
        compact_min_delta: opts.compact_min_delta,
        slow_request_ms: opts.slow_request_ms,
        event_capacity: opts.event_capacity,
    };
    let handle = remi_serve::serve(kb, config)
        .map_err(|e| CliError(format!("cannot serve on {}: {e}", opts.addr)))?;
    let banner = format!(
        "serving {} on http://{} ({} backend, cache {} entries, max-inflight {})\n\
         routes (also under /v1): GET /healthz | GET /stats | GET /metrics | \
         GET /debug/events | GET /describe/{{entity}} | POST /describe | \
         GET /summarize/{{entity}} | POST /ingest | POST /query",
        path.display(),
        handle.addr(),
        opts.backend.map(|b| b.name()).unwrap_or("format-native"),
        opts.cache_entries,
        opts.max_inflight,
    );
    Ok((handle, banner))
}

/// `remi ingest`: appends one or more N-Triples delta files to a KB
/// offline — the batch path through the same [`remi_kb::LiveKb`] overlay
/// the server uses — then compacts and writes the folded result.
pub fn cmd_ingest(
    kb_path: &Path,
    deltas: &[String],
    out: &Path,
    backend: Option<Backend>,
) -> Result<String> {
    let kb = load_kb_as(kb_path, 0.01, backend)?;
    let live = remi_kb::LiveKb::new(kb);
    let mut out_msg = String::new();
    let mut appended = 0usize;
    let mut duplicates = 0usize;
    for delta in deltas {
        let text = std::fs::read_to_string(delta)
            .map_err(|e| CliError(format!("cannot read {delta}: {e}")))?;
        let outcome = live
            .append_ntriples(&text)
            .map_err(|e| CliError(format!("{delta}: {e}")))?;
        appended += outcome.appended;
        duplicates += outcome.duplicates;
        let _ = writeln!(
            out_msg,
            "{delta}: +{} triples ({} duplicates, {} new nodes, {} new predicates) → epoch {}",
            outcome.appended,
            outcome.duplicates,
            outcome.new_nodes,
            outcome.new_preds,
            outcome.epoch,
        );
    }
    let compacted = live.compact();
    let snapshot = live.snapshot();
    save_kb(&snapshot.kb, out)?;
    let _ = writeln!(
        out_msg,
        "compacted {} delta triples in {:.1?}; wrote {} ({} base triples, {} with inverses)",
        compacted.folded,
        compacted.duration,
        out.display(),
        snapshot.kb.num_triples(),
        snapshot.kb.num_triples_with_inverses(),
    );
    let _ = writeln!(
        out_msg,
        "total: {appended} appended, {duplicates} duplicates across {} file(s)",
        deltas.len()
    );
    Ok(out_msg)
}

/// Usage text.
pub const USAGE: &str = "\
remi — mine intuitive referring expressions on RDF knowledge bases

USAGE:
  remi gen --profile dbpedia|wikidata [--scale F] [--seed N] -o <kb.{rkb,rkb2,nt}>
  remi convert <in.{rkb,rkb2,nt}> <out.{rkb,rkb2,nt}> [--format rkb1|rkb2]
  remi stats <kb> [--backend csr|succinct]
  remi describe <kb> <iri>... [--standard] [--threads N] [--timeout-ms N]
                              [--pagerank] [--exceptions N]
                              [--backend csr|succinct]
  remi summarize <kb> <iri> [--k N] [--method remi|faces|linksum]
                            [--backend csr|succinct]
  remi ingest <kb> <delta.nt>... -o <out.{rkb,rkb2,nt}>
                  [--backend csr|succinct]
  remi query <kb> <s> <p> <o> [<s> <p> <o> ...] [--limit N]
                  [--backend csr|succinct]
  remi serve <kb> [--addr HOST:PORT] [--backend csr|succinct]
                  [--cache-entries N] [--max-inflight N] [--threads N]
                  [--compact-threshold N] [--slow-request-ms N]
                  [--event-capacity N]

QUERYING:
  remi query evaluates 1-3 triple patterns joined on shared variables.
  A slot starting with '?' is a variable (e.g. remi query kb.rkb
  '?city' p:cityIn e:France '?city' p:capitalOf '?country'); everything
  else is an IRI. Rows print tab-separated under a ?var header, in a
  deterministic order that is identical across backends.

SERVING:
  remi serve keeps the KB resident and answers JSON over HTTP/1.1
  (canonical paths live under /v1/...; the unprefixed spellings remain
  as aliases): GET /healthz, GET /stats,
  GET /metrics (Prometheus text exposition),
  GET /describe/{entity}?k=&threads=&backend=,
  POST /describe {\"entities\": [...]}, GET /summarize/{entity}?k=&method=,
  POST /ingest (N-Triples body), POST /query {\"patterns\": [{\"s\": ...,
  \"p\": ..., \"o\": ...}], \"limit\": N}. Responses are cached (LRU,
  --cache-entries; 0 disables) and work beyond --max-inflight is shed
  with 503. Ingested batches publish a new epoch atomically; once the
  delta overlay exceeds --compact-threshold triples it is folded into a
  fresh base in the background.

OBSERVABILITY:
  GET /metrics exposes counters, gauges, and log2-bucketed latency
  histograms for every route, pool scheduling, and kb publish/compaction
  (per-route quantiles also appear in /stats under \"latency\" and
  \"phases\"); every route's per-status latency families are registered
  at boot, so scrapes before traffic already expose them. Appending
  ?trace=1 to any JSON endpoint embeds that request's per-phase timings
  in the response body; ?explain=1 on POST /query embeds the planner's
  plan trace (pattern order, estimated vs actual cardinalities, merge
  vs nested join path) — both applied after the cache, so cached bodies
  stay clean. A bounded in-memory flight recorder (--event-capacity N
  events, default 1024) collects structured events from the planner
  (query_plan, query_pattern), KB lifecycle (kb_publish, kb_compact),
  pool anomalies (park/revive storms, help-drain stalls), and 500s;
  GET /debug/events?channel=&severity=&since=&limit= reads it back as
  JSON. --slow-request-ms N logs any request slower than N ms to stderr
  with its phase breakdown plus the recorder tail (0 logs every
  request); every 500 dumps the same tail.

INGESTION:
  remi ingest appends N-Triples delta files to a KB through the same
  delta-overlay path the server uses (duplicates dropped, inverse
  predicates mirrored), compacts, and writes the folded KB to -o.
  Publishing an epoch costs O(batch), not O(KB): the dictionaries are
  segmented and snapshots share the sealed segments, so per-batch
  ingest latency stays flat as the KB grows (only the periodic
  background compaction scales with total size).

STORAGE:
  .rkb files are row-oriented RKB1 (loads into the CSR backend); .rkb2
  files are succinct RKB2 bitmap triples (zero-copy load). --backend
  converts after loading, so any command runs on either layout.

ENVIRONMENT:
  REMI_THREADS  sizes the shared worker pool and is the default for
                --threads (all parallel paths share one pool per process)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "remi_cli_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn gen_stats_describe_roundtrip() {
        let dir = tmpdir();
        let kb_path = dir.join("test.rkb");
        let msg = cmd_gen("dbpedia", 0.2, 5, &kb_path).unwrap();
        assert!(msg.contains("base triples"));

        let stats = cmd_stats(&kb_path, None).unwrap();
        assert!(stats.contains("top predicates"));

        let out = cmd_describe(
            &kb_path,
            &["e:Settlement_0".to_string()],
            &DescribeOpts::default(),
        )
        .unwrap();
        assert!(
            out.contains("expression:") || out.contains("no referring expression"),
            "{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_between_formats() {
        let dir = tmpdir();
        let bin = dir.join("kb.rkb");
        let nt = dir.join("kb.nt");
        cmd_gen("wikidata", 0.1, 3, &bin).unwrap();
        let msg = cmd_convert(&bin, &nt, None).unwrap();
        assert!(msg.contains("converted"));
        // And back.
        let bin2 = dir.join("kb2.rkb");
        cmd_convert(&nt, &bin2, None).unwrap();
        let kb1 = load_kb(&bin, 0.0).unwrap();
        let kb2 = load_kb(&bin2, 0.0).unwrap();
        assert_eq!(kb1.num_triples(), kb2.num_triples());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_entities_and_profiles_error() {
        let dir = tmpdir();
        let kb_path = dir.join("kb.rkb");
        cmd_gen("dbpedia", 0.1, 1, &kb_path).unwrap();
        assert!(cmd_gen("freebase", 1.0, 1, &kb_path).is_err());
        let err = cmd_describe(
            &kb_path,
            &["e:DoesNotExist".to_string()],
            &DescribeOpts::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not found"));
        assert!(cmd_summarize(&kb_path, "e:Person_0", 5, "magic", None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summarize_all_methods() {
        let dir = tmpdir();
        let kb_path = dir.join("kb.rkb");
        cmd_gen("dbpedia", 0.2, 9, &kb_path).unwrap();
        for method in ["remi", "faces", "linksum"] {
            let out = cmd_summarize(&kb_path, "e:Person_0", 5, method, None).unwrap();
            assert!(out.contains("summary of"), "{method}: {out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_appends_compacts_and_writes() {
        let dir = tmpdir();
        let kb_path = dir.join("base.nt");
        std::fs::write(
            &kb_path,
            "<e:Paris> <p:cityIn> <e:France> .\n<e:Lyon> <p:cityIn> <e:France> .\n",
        )
        .unwrap();
        let delta_path = dir.join("delta.nt");
        std::fs::write(
            &delta_path,
            "<e:Nice> <p:cityIn> <e:France> .\n<e:Paris> <p:cityIn> <e:France> .\n",
        )
        .unwrap();
        let out_path = dir.join("merged.rkb");
        let msg = cmd_ingest(
            &kb_path,
            &[delta_path.to_str().unwrap().to_string()],
            &out_path,
            None,
        )
        .unwrap();
        // +2: the appended base fact plus its mirror into the
        // materialised cityIn⁻¹ predicate (the base loads with the §4
        // top-1% inverse preprocessing).
        assert!(msg.contains("+2 triples"), "{msg}");
        assert!(msg.contains("1 duplicates"), "{msg}");
        assert!(msg.contains("compacted 2 delta"), "{msg}");

        let merged = load_kb(&out_path, 0.0).unwrap();
        assert_eq!(merged.num_triples(), 3);
        let p = merged.pred_id("p:cityIn").unwrap();
        let france = merged.node_id_by_iri("e:France").unwrap();
        assert_eq!(merged.subjects(p, france).len(), 3);

        // A malformed delta is rejected with a file-scoped error.
        let bad = dir.join("bad.nt");
        std::fs::write(&bad, "not ntriples\n").unwrap();
        let err = cmd_ingest(
            &kb_path,
            &[bad.to_str().unwrap().to_string()],
            &out_path,
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("bad.nt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_joins_patterns_and_honors_limit() {
        let dir = tmpdir();
        let kb_path = dir.join("kb.nt");
        std::fs::write(
            &kb_path,
            "<e:Paris> <p:cityIn> <e:France> .\n\
             <e:Lyon> <p:cityIn> <e:France> .\n\
             <e:Paris> <p:capitalOf> <e:France> .\n",
        )
        .unwrap();
        let pat = |s: &str, p: &str, o: &str| [s.to_string(), p.to_string(), o.to_string()];

        let out = cmd_query(&kb_path, &[pat("?city", "p:cityIn", "e:France")], 100, None).unwrap();
        assert!(out.starts_with("?city\n"), "{out}");
        assert!(out.contains("e:Paris") && out.contains("e:Lyon"), "{out}");
        assert!(out.ends_with("2 row(s)\n"), "{out}");

        // Two patterns joined on ?city: only the capital survives.
        let joined = cmd_query(
            &kb_path,
            &[
                pat("?city", "p:cityIn", "e:France"),
                pat("?city", "p:capitalOf", "?country"),
            ],
            100,
            None,
        )
        .unwrap();
        assert!(joined.contains("e:Paris\te:France"), "{joined}");
        assert!(joined.ends_with("1 row(s)\n"), "{joined}");

        let truncated =
            cmd_query(&kb_path, &[pat("?city", "p:cityIn", "e:France")], 1, None).unwrap();
        assert!(
            truncated.ends_with("1 row(s) (truncated at --limit)\n"),
            "{truncated}"
        );

        // Pattern errors surface as runtime CliErrors, not panics.
        let err = cmd_query(&kb_path, &[pat("?", "p:cityIn", "e:France")], 10, None).unwrap_err();
        assert!(err.to_string().contains("must not be empty"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn describe_with_exceptions_flag() {
        // Build a KB where the target has no exact RE.
        let dir = tmpdir();
        let nt_path = dir.join("twins.nt");
        std::fs::write(
            &nt_path,
            "<e:twin1> <p:in> <e:Town> .\n<e:twin2> <p:in> <e:Town> .\n<e:x> <p:in> <e:City> .\n",
        )
        .unwrap();
        let opts = DescribeOpts {
            exceptions: 1,
            ..Default::default()
        };
        let out = cmd_describe(&nt_path, &["e:twin1".to_string()], &opts).unwrap();
        assert!(out.contains("except"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
