//! The `remi` command-line entry point. Argument parsing only; the
//! subcommand logic lives in the library for testability.

use std::path::PathBuf;
use std::process::ExitCode;

use remi_cli::{
    cmd_convert, cmd_describe, cmd_gen, cmd_stats, cmd_summarize, DescribeOpts, USAGE,
};
use remi_core::LanguageBias;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> remi_cli::Result<String> {
    let err = |msg: &str| remi_cli::CliError(msg.to_string());
    let Some(cmd) = args.first() else {
        return Err(err("missing subcommand"));
    };
    match cmd.as_str() {
        "gen" => {
            let mut profile = "dbpedia".to_string();
            let mut scale = 1.0f64;
            let mut seed = 42u64;
            let mut out: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err("missing flag value"))
                };
                match flag.as_str() {
                    "--profile" => profile = value()?,
                    "--scale" => {
                        scale = value()?.parse().map_err(|_| err("--scale takes a float"))?
                    }
                    "--seed" => {
                        seed = value()?.parse().map_err(|_| err("--seed takes an int"))?
                    }
                    "-o" | "--out" => out = Some(PathBuf::from(value()?)),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            let out = out.ok_or_else(|| err("gen requires -o <path>"))?;
            cmd_gen(&profile, scale, seed, &out).map(|s| s + "\n")
        }
        "convert" => {
            let [input, output] = &args[1..] else {
                return Err(err("convert takes exactly two paths"));
            };
            cmd_convert(&PathBuf::from(input), &PathBuf::from(output)).map(|s| s + "\n")
        }
        "stats" => {
            let Some(path) = args.get(1) else {
                return Err(err("stats takes a KB path"));
            };
            cmd_stats(&PathBuf::from(path))
        }
        "describe" => {
            let Some(path) = args.get(1) else {
                return Err(err("describe takes a KB path and entity IRIs"));
            };
            let mut opts = DescribeOpts::default();
            let mut iris = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err("missing flag value"))
                };
                match a.as_str() {
                    "--standard" => opts.language = LanguageBias::Standard,
                    "--pagerank" => opts.pagerank = true,
                    "--threads" => {
                        opts.threads =
                            value()?.parse().map_err(|_| err("--threads takes an int"))?
                    }
                    "--timeout-ms" => {
                        opts.timeout_ms = value()?
                            .parse()
                            .map_err(|_| err("--timeout-ms takes an int"))?
                    }
                    "--exceptions" => {
                        opts.exceptions = value()?
                            .parse()
                            .map_err(|_| err("--exceptions takes an int"))?
                    }
                    iri if !iri.starts_with("--") => iris.push(iri.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            if iris.is_empty() {
                return Err(err("describe needs at least one entity IRI"));
            }
            cmd_describe(&PathBuf::from(path), &iris, &opts)
        }
        "summarize" => {
            let (Some(path), Some(iri)) = (args.get(1), args.get(2)) else {
                return Err(err("summarize takes a KB path and an entity IRI"));
            };
            let mut k = 5usize;
            let mut method = "remi".to_string();
            let mut it = args[3..].iter();
            while let Some(a) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| err("missing flag value"))
                };
                match a.as_str() {
                    "--k" => k = value()?.parse().map_err(|_| err("--k takes an int"))?,
                    "--method" => method = value()?,
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            cmd_summarize(&PathBuf::from(path), iri, k, &method)
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(err(&format!("unknown subcommand {other}"))),
    }
}
