//! The `remi` command-line entry point. Argument parsing only; the
//! subcommand logic lives in the library for testability.

use std::path::PathBuf;
use std::process::ExitCode;

use remi_cli::{cmd_convert, cmd_describe, cmd_gen, cmd_stats, cmd_summarize, DescribeOpts, USAGE};
use remi_core::LanguageBias;

fn main() -> ExitCode {
    // `std::env::args()` panics on non-UTF-8 arguments; surface those as a
    // normal usage error instead.
    let mut args = Vec::new();
    for (i, arg) in std::env::args_os().skip(1).enumerate() {
        match arg.into_string() {
            Ok(s) => args.push(s),
            Err(raw) => {
                eprintln!(
                    "error: argument {} is not valid UTF-8: {:?}\n\n{USAGE}",
                    i + 1,
                    raw
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> remi_cli::Result<String> {
    let err = |msg: &str| remi_cli::CliError(msg.to_string());
    // `--help` anywhere wins, so `remi gen --help` explains instead of
    // complaining about an unknown flag.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(USAGE.to_string());
    }
    let Some(cmd) = args.first() else {
        return Err(err("missing subcommand"));
    };
    match cmd.as_str() {
        "gen" => {
            let mut profile = "dbpedia".to_string();
            let mut scale = 1.0f64;
            let mut seed = 42u64;
            let mut out: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match flag.as_str() {
                    "--profile" => profile = value()?,
                    "--scale" => {
                        scale = value()?.parse().map_err(|_| err("--scale takes a float"))?
                    }
                    "--seed" => seed = value()?.parse().map_err(|_| err("--seed takes an int"))?,
                    "-o" | "--out" => out = Some(PathBuf::from(value()?)),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            let out = out.ok_or_else(|| err("gen requires -o <path>"))?;
            cmd_gen(&profile, scale, seed, &out).map(|s| s + "\n")
        }
        "convert" => {
            let mut format = None;
            let mut paths = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => {
                        let v = it.next().ok_or_else(|| err("missing flag value"))?;
                        format = Some(
                            remi_kb::binfmt::BinFormat::parse(v)
                                .ok_or_else(|| err("--format takes rkb1 or rkb2"))?,
                        );
                    }
                    p if !p.starts_with("--") => paths.push(p.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            let [input, output] = &paths[..] else {
                return Err(err("convert takes exactly two paths"));
            };
            cmd_convert(&PathBuf::from(input), &PathBuf::from(output), format).map(|s| s + "\n")
        }
        "stats" => {
            let Some(path) = args.get(1) else {
                return Err(err("stats takes a KB path"));
            };
            let mut backend = None;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--backend" => {
                        let v = it.next().ok_or_else(|| err("missing flag value"))?;
                        backend = Some(remi_cli::parse_backend(v)?);
                    }
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            cmd_stats(&PathBuf::from(path), backend)
        }
        "describe" => {
            let Some(path) = args.get(1) else {
                return Err(err("describe takes a KB path and entity IRIs"));
            };
            let mut opts = DescribeOpts::default();
            let mut iris = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "--standard" => opts.language = LanguageBias::Standard,
                    "--pagerank" => opts.pagerank = true,
                    "--threads" => {
                        opts.threads = value()?
                            .parse()
                            .map_err(|_| err("--threads takes an int"))?
                    }
                    "--timeout-ms" => {
                        opts.timeout_ms = value()?
                            .parse()
                            .map_err(|_| err("--timeout-ms takes an int"))?
                    }
                    "--exceptions" => {
                        opts.exceptions = value()?
                            .parse()
                            .map_err(|_| err("--exceptions takes an int"))?
                    }
                    "--backend" => opts.backend = Some(remi_cli::parse_backend(&value()?)?),
                    iri if !iri.starts_with("--") => iris.push(iri.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            if iris.is_empty() {
                return Err(err("describe needs at least one entity IRI"));
            }
            cmd_describe(&PathBuf::from(path), &iris, &opts)
        }
        "summarize" => {
            let (Some(path), Some(iri)) = (args.get(1), args.get(2)) else {
                return Err(err("summarize takes a KB path and an entity IRI"));
            };
            let mut k = 5usize;
            let mut method = "remi".to_string();
            let mut backend = None;
            let mut it = args[3..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "--k" => k = value()?.parse().map_err(|_| err("--k takes an int"))?,
                    "--method" => method = value()?,
                    "--backend" => backend = Some(remi_cli::parse_backend(&value()?)?),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            cmd_summarize(&PathBuf::from(path), iri, k, &method, backend)
        }
        "help" => Ok(USAGE.to_string()),
        other => Err(err(&format!("unknown subcommand {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_prints_usage_from_anywhere() {
        for line in [
            vec!["--help"],
            vec!["-h"],
            vec!["help"],
            vec!["gen", "--help"],
            vec!["describe", "kb.rkb", "-h"],
        ] {
            let out = run(&args(&line)).unwrap();
            assert_eq!(out, USAGE, "{line:?}");
        }
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        let e = run(&[]).unwrap_err();
        assert!(e.to_string().contains("missing subcommand"), "{e}");
    }

    #[test]
    fn unknown_subcommand_and_flags_error_clearly() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("unknown subcommand"), "{e}");
        let e = run(&args(&["gen", "--bogus"])).unwrap_err();
        assert!(e.to_string().contains("unknown flag --bogus"), "{e}");
        let e = run(&args(&["summarize", "kb.rkb", "e:x", "--k"])).unwrap_err();
        assert!(e.to_string().contains("missing flag value"), "{e}");
    }

    #[test]
    fn malformed_flag_values_error_clearly() {
        let e = run(&args(&["gen", "--scale", "fast", "-o", "kb.rkb"])).unwrap_err();
        assert!(e.to_string().contains("--scale takes a float"), "{e}");
        let e = run(&args(&["describe", "kb.rkb", "e:x", "--threads", "many"])).unwrap_err();
        assert!(e.to_string().contains("--threads takes an int"), "{e}");
    }

    #[test]
    fn gen_requires_an_output_path() {
        let e = run(&args(&["gen", "--profile", "dbpedia"])).unwrap_err();
        assert!(e.to_string().contains("requires -o"), "{e}");
    }
}
