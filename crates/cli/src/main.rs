//! The `remi` command-line entry point. Argument parsing only; the
//! subcommand logic lives in the library for testability.
//!
//! Error-path contract: every failure prints one `error: ...` line to
//! stderr and exits non-zero. Usage errors (unknown subcommand/flag,
//! missing or malformed flag value) additionally print the usage text and
//! exit 2; runtime errors (unreadable KB, unknown entity, bind failure)
//! exit 1 without the usage noise.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use remi_cli::{
    cmd_convert, cmd_describe, cmd_gen, cmd_ingest, cmd_query, cmd_serve, cmd_stats, cmd_summarize,
    DescribeOpts, ServeOpts, USAGE,
};
use remi_core::LanguageBias;

/// What a successfully parsed invocation does.
enum Action {
    /// Print this output and exit.
    Print(String),
    /// A booted server to block on (the banner prints first).
    Serve(Box<remi_serve::ServerHandle>, String),
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Print(out) => f.debug_tuple("Print").field(out).finish(),
            Action::Serve(handle, _) => write!(f, "Serve({})", handle.addr()),
        }
    }
}

/// A failed invocation, split by whether the usage text helps.
#[derive(Debug)]
enum Failure {
    /// Bad command line: print `error:` + usage, exit 2.
    Usage(String),
    /// The command itself failed: print `error:` only, exit 1.
    Runtime(remi_cli::CliError),
}

impl From<remi_cli::CliError> for Failure {
    fn from(e: remi_cli::CliError) -> Self {
        Failure::Runtime(e)
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Usage(msg) => write!(f, "{msg}"),
            Failure::Runtime(e) => write!(f, "{e}"),
        }
    }
}

fn main() -> ExitCode {
    // `std::env::args()` panics on non-UTF-8 arguments; surface those as a
    // normal usage error instead.
    let mut args = Vec::new();
    for (i, arg) in std::env::args_os().skip(1).enumerate() {
        match arg.into_string() {
            Ok(s) => args.push(s),
            Err(raw) => {
                eprintln!(
                    "error: argument {} is not valid UTF-8: {:?}\n\n{USAGE}",
                    i + 1,
                    raw
                );
                return ExitCode::from(2);
            }
        }
    }
    match run(&args) {
        Ok(Action::Print(output)) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Ok(Action::Serve(mut handle, banner)) => {
            println!("{banner}");
            // Foreground server: block until something shuts it down
            // (process signal / supervisor kill).
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(Failure::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(Failure::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<Action, Failure> {
    let err = |msg: &str| Failure::Usage(msg.to_string());
    // `--help` anywhere wins, so `remi gen --help` explains instead of
    // complaining about an unknown flag.
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(Action::Print(USAGE.to_string()));
    }
    let Some(cmd) = args.first() else {
        return Err(err("missing subcommand"));
    };
    let print = |result: remi_cli::Result<String>| -> Result<Action, Failure> {
        Ok(Action::Print(result?))
    };
    match cmd.as_str() {
        "gen" => {
            let mut profile = "dbpedia".to_string();
            let mut scale = 1.0f64;
            let mut seed = 42u64;
            let mut out: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match flag.as_str() {
                    "--profile" => {
                        profile = value()?;
                        if !matches!(profile.as_str(), "dbpedia" | "wikidata") {
                            return Err(err(&format!(
                                "unknown profile {profile:?} (expected dbpedia or wikidata)"
                            )));
                        }
                    }
                    "--scale" => {
                        scale = value()?.parse().map_err(|_| err("--scale takes a float"))?
                    }
                    "--seed" => seed = value()?.parse().map_err(|_| err("--seed takes an int"))?,
                    "-o" | "--out" => out = Some(PathBuf::from(value()?)),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            let out = out.ok_or_else(|| err("gen requires -o <path>"))?;
            print(cmd_gen(&profile, scale, seed, &out).map(|s| s + "\n"))
        }
        "convert" => {
            let mut format = None;
            let mut paths = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--format" => {
                        let v = it.next().ok_or_else(|| err("missing flag value"))?;
                        format = Some(
                            remi_kb::binfmt::BinFormat::parse(v)
                                .ok_or_else(|| err("--format takes rkb1 or rkb2"))?,
                        );
                    }
                    p if !p.starts_with("--") => paths.push(p.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            let [input, output] = &paths[..] else {
                return Err(err("convert takes exactly two paths"));
            };
            print(
                cmd_convert(&PathBuf::from(input), &PathBuf::from(output), format)
                    .map(|s| s + "\n"),
            )
        }
        "stats" => {
            let Some(path) = args.get(1) else {
                return Err(err("stats takes a KB path"));
            };
            let mut backend = None;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--backend" => {
                        let v = it.next().ok_or_else(|| err("missing flag value"))?;
                        backend = Some(parse_backend_usage(v)?);
                    }
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            print(cmd_stats(&PathBuf::from(path), backend))
        }
        "describe" => {
            let Some(path) = args.get(1) else {
                return Err(err("describe takes a KB path and entity IRIs"));
            };
            let mut opts = DescribeOpts::default();
            let mut iris = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "--standard" => opts.language = LanguageBias::Standard,
                    "--pagerank" => opts.pagerank = true,
                    "--threads" => {
                        opts.threads = value()?
                            .parse()
                            .map_err(|_| err("--threads takes an int"))?
                    }
                    "--timeout-ms" => {
                        opts.timeout_ms = value()?
                            .parse()
                            .map_err(|_| err("--timeout-ms takes an int"))?
                    }
                    "--exceptions" => {
                        opts.exceptions = value()?
                            .parse()
                            .map_err(|_| err("--exceptions takes an int"))?
                    }
                    "--backend" => opts.backend = Some(parse_backend_usage(&value()?)?),
                    iri if !iri.starts_with("--") => iris.push(iri.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            if iris.is_empty() {
                return Err(err("describe needs at least one entity IRI"));
            }
            print(cmd_describe(&PathBuf::from(path), &iris, &opts))
        }
        "summarize" => {
            let (Some(path), Some(iri)) = (args.get(1), args.get(2)) else {
                return Err(err("summarize takes a KB path and an entity IRI"));
            };
            let mut k = 5usize;
            let mut method = "remi".to_string();
            let mut backend = None;
            let mut it = args[3..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "--k" => k = value()?.parse().map_err(|_| err("--k takes an int"))?,
                    "--method" => {
                        method = value()?;
                        if !matches!(method.as_str(), "remi" | "faces" | "linksum") {
                            return Err(err(&format!(
                                "unknown method {method:?} (expected remi, faces, or linksum)"
                            )));
                        }
                    }
                    "--backend" => backend = Some(parse_backend_usage(&value()?)?),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            print(cmd_summarize(
                &PathBuf::from(path),
                iri,
                k,
                &method,
                backend,
            ))
        }
        "ingest" => {
            let Some(path) = args.get(1) else {
                return Err(err("ingest takes a KB path and delta .nt files"));
            };
            let mut out: Option<PathBuf> = None;
            let mut backend = None;
            let mut deltas = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "-o" | "--out" => out = Some(PathBuf::from(value()?)),
                    "--backend" => backend = Some(parse_backend_usage(&value()?)?),
                    p if !p.starts_with("--") => deltas.push(p.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            if deltas.is_empty() {
                return Err(err("ingest needs at least one delta .nt file"));
            }
            let out = out.ok_or_else(|| err("ingest requires -o <path>"))?;
            print(cmd_ingest(&PathBuf::from(path), &deltas, &out, backend))
        }
        "serve" => {
            let Some(path) = args.get(1) else {
                return Err(err("serve takes a KB path"));
            };
            let mut opts = ServeOpts::default();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "--addr" => opts.addr = value()?,
                    "--backend" => opts.backend = Some(parse_backend_usage(&value()?)?),
                    "--cache-entries" => {
                        opts.cache_entries = value()?
                            .parse()
                            .map_err(|_| err("--cache-entries takes an int"))?
                    }
                    "--max-inflight" => {
                        opts.max_inflight = value()?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| err("--max-inflight takes a positive int"))?
                    }
                    "--threads" => {
                        opts.threads = value()?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| err("--threads takes a positive int"))?
                    }
                    "--compact-threshold" => {
                        opts.compact_min_delta = value()?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| err("--compact-threshold takes a positive int"))?
                    }
                    "--slow-request-ms" => {
                        opts.slow_request_ms = Some(
                            value()?
                                .parse::<u64>()
                                .map_err(|_| err("--slow-request-ms takes a millisecond count"))?,
                        )
                    }
                    "--event-capacity" => {
                        opts.event_capacity = value()?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| err("--event-capacity takes a positive int"))?
                    }
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            let (handle, banner) = cmd_serve(&PathBuf::from(path), &opts)?;
            Ok(Action::Serve(Box::new(handle), banner))
        }
        "query" => {
            let Some(path) = args.get(1) else {
                return Err(err("query takes a KB path and s p o pattern triples"));
            };
            let mut limit = 100usize;
            let mut backend = None;
            let mut slots = Vec::new();
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = || it.next().cloned().ok_or_else(|| err("missing flag value"));
                match a.as_str() {
                    "--limit" => {
                        limit = value()?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| err("--limit takes a positive int"))?
                    }
                    "--backend" => backend = Some(parse_backend_usage(&value()?)?),
                    p if !p.starts_with("--") => slots.push(p.to_string()),
                    other => return Err(err(&format!("unknown flag {other}"))),
                }
            }
            if slots.is_empty() || slots.len() % 3 != 0 {
                return Err(err("query takes patterns as s p o triples (1-3 of them)"));
            }
            let patterns: Vec<[String; 3]> = slots
                .chunks_exact(3)
                .map(|c| [c[0].clone(), c[1].clone(), c[2].clone()])
                .collect();
            print(cmd_query(&PathBuf::from(path), &patterns, limit, backend))
        }
        "help" => Ok(Action::Print(USAGE.to_string())),
        other => Err(err(&format!("unknown subcommand {other}"))),
    }
}

/// `--backend` parsing at the argument layer: a bad value is a usage
/// error.
fn parse_backend_usage(v: &str) -> Result<remi_kb::Backend, Failure> {
    remi_cli::parse_backend(v).map_err(|e| Failure::Usage(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn output(result: Result<Action, Failure>) -> String {
        match result {
            Ok(Action::Print(out)) => out,
            Ok(Action::Serve(..)) => panic!("expected printed output, got a server"),
            Err(e) => panic!("expected success, got error: {e}"),
        }
    }

    #[test]
    fn help_prints_usage_from_anywhere() {
        for line in [
            vec!["--help"],
            vec!["-h"],
            vec!["help"],
            vec!["gen", "--help"],
            vec!["describe", "kb.rkb", "-h"],
            vec!["serve", "kb.rkb", "--help"],
        ] {
            let out = output(run(&args(&line)));
            assert_eq!(out, USAGE, "{line:?}");
        }
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        let e = run(&[]).unwrap_err();
        assert!(
            matches!(&e, Failure::Usage(m) if m.contains("missing subcommand")),
            "{e}"
        );
    }

    #[test]
    fn unknown_subcommand_and_flags_are_usage_errors() {
        for (line, needle) in [
            (vec!["frobnicate"], "unknown subcommand"),
            (vec!["gen", "--bogus"], "unknown flag --bogus"),
            (
                vec!["summarize", "kb.rkb", "e:x", "--k"],
                "missing flag value",
            ),
            (vec!["serve", "kb.rkb", "--bogus"], "unknown flag --bogus"),
            (vec!["serve"], "serve takes a KB path"),
            (
                vec!["serve", "kb.rkb", "--max-inflight", "0"],
                "--max-inflight",
            ),
            (
                vec!["describe", "kb.rkb", "e:x", "--backend", "hologram"],
                "unknown backend",
            ),
            (
                vec!["gen", "--profile", "freebase", "-o", "x.rkb"],
                "unknown profile",
            ),
            (
                vec!["summarize", "kb.rkb", "e:x", "--method", "magic"],
                "unknown method",
            ),
            (vec!["query"], "query takes a KB path"),
            (vec!["query", "kb.rkb", "?s", "p:x"], "s p o triples"),
            (
                vec!["query", "kb.rkb", "?s", "p:x", "?o", "--limit", "0"],
                "--limit takes a positive int",
            ),
        ] {
            let e = run(&args(&line)).unwrap_err();
            assert!(
                matches!(&e, Failure::Usage(m) if m.contains(needle)),
                "{line:?}: {e}"
            );
        }
    }

    #[test]
    fn malformed_flag_values_error_clearly() {
        let e = run(&args(&["gen", "--scale", "fast", "-o", "kb.rkb"])).unwrap_err();
        assert!(
            matches!(&e, Failure::Usage(m) if m.contains("--scale takes a float")),
            "{e}"
        );
        let e = run(&args(&["describe", "kb.rkb", "e:x", "--threads", "many"])).unwrap_err();
        assert!(
            matches!(&e, Failure::Usage(m) if m.contains("--threads takes an int")),
            "{e}"
        );
    }

    #[test]
    fn gen_requires_an_output_path() {
        let e = run(&args(&["gen", "--profile", "dbpedia"])).unwrap_err();
        assert!(
            matches!(&e, Failure::Usage(m) if m.contains("requires -o")),
            "{e}"
        );
    }

    #[test]
    fn unreadable_kb_paths_are_runtime_errors() {
        // The same `error:` contract, but without the usage text: the
        // command line was fine, the file was not.
        for line in [
            vec!["stats", "/no/such/file.rkb"],
            vec!["describe", "/no/such/file.rkb", "e:x"],
            vec!["summarize", "/no/such/file.rkb", "e:x"],
            vec!["serve", "/no/such/file.rkb"],
        ] {
            let e = run(&args(&line)).unwrap_err();
            assert!(matches!(&e, Failure::Runtime(_)), "{line:?}: {e}");
        }
    }

    #[test]
    fn serve_boots_from_the_command_line() {
        let dir = std::env::temp_dir().join(format!("remi_main_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let kb_path = dir.join("kb.rkb");
        cmd_gen("dbpedia", 0.1, 3, &kb_path).unwrap();
        let line = args(&[
            "serve",
            kb_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--cache-entries",
            "16",
        ]);
        let Ok(Action::Serve(mut handle, banner)) = run(&line) else {
            panic!("serve did not boot");
        };
        assert!(banner.contains("serving"), "{banner}");
        let mut c = remi_serve::client::Client::connect(handle.addr()).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
