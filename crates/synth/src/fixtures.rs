//! Process-wide memoised synthetic-KB fixtures.
//!
//! Generating an evaluation-scale KB takes seconds in debug builds, and
//! the slow suites (`remi-eval` unit tests, `tests/cross_system.rs`) used
//! to regenerate the same `(profile, scale, seed)` KB once per test. This
//! cache builds each distinct fixture once per process and hands out
//! shared ownership; tests that want the same world simply ask for the
//! same key.
//!
//! Generation stays fully deterministic — the cache changes *when* a KB
//! is built, never *what* is built.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::generator::SynthKb;
use crate::profiles::{dbpedia_like, wikidata_like};

type Key = (&'static str, u64, u64); // (profile, scale bits, seed)
type Cell = Arc<OnceLock<Arc<SynthKb>>>;

fn cache() -> &'static Mutex<HashMap<Key, Cell>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Cell>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn memoised(profile: &'static str, scale: f64, seed: u64) -> Arc<SynthKb> {
    let key = (profile, scale.to_bits(), seed);
    // The map lock is only held to fetch the per-key cell; the (slow)
    // generation happens inside the cell, so concurrent tests asking for
    // the *same* fixture build it once (the rest block on the cell) while
    // *different* fixtures still build in parallel.
    let cell: Cell = Arc::clone(cache().lock().entry(key).or_default());
    Arc::clone(cell.get_or_init(|| {
        Arc::new(crate::generate(
            &match profile {
                "dbpedia" => dbpedia_like(),
                _ => wikidata_like(),
            },
            scale,
            seed,
        ))
    }))
}

/// The DBpedia-like fixture for `(scale, seed)`, built at most once per
/// process.
pub fn dbpedia(scale: f64, seed: u64) -> Arc<SynthKb> {
    memoised("dbpedia", scale, seed)
}

/// The Wikidata-like fixture for `(scale, seed)`, built at most once per
/// process.
pub fn wikidata(scale: f64, seed: u64) -> Arc<SynthKb> {
    memoised("wikidata", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_the_same_allocation() {
        let a = dbpedia(0.1, 7);
        let b = dbpedia(0.1, 7);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_keys_get_distinct_kbs() {
        let a = dbpedia(0.1, 7);
        let b = dbpedia(0.1, 8);
        let c = wikidata(0.1, 7);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.profile, "wikidata");
    }

    #[test]
    fn memoised_matches_direct_generation() {
        let cached = dbpedia(0.1, 9);
        let direct = crate::generate(&dbpedia_like(), 0.1, 9);
        assert_eq!(cached.kb.num_triples(), direct.kb.num_triples());
        assert_eq!(cached.seed, direct.seed);
    }
}
