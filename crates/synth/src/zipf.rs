//! Zipf-distributed sampling.
//!
//! The complexity model of the paper rests on the empirical observation
//! that concept frequencies in KBs follow a power law (§3.5.3, citing
//! Manning et al.). The synthetic generators therefore draw object choices
//! from a Zipf distribution so that the rank/frequency regression of Eq. 1
//! holds on generated data the same way it does on DBpedia and Wikidata.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank = k) ∝ 1 / (k + 1)^s`.
///
/// Sampling precomputes the cumulative distribution once and then draws in
/// `O(log n)` via binary search, which is plenty fast for generator-scale
/// pools (≤ 10⁶ elements).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    /// `s = 0` degenerates to the uniform distribution.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        let norm = total;
        for v in &mut cdf {
            *v /= norm;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        false // n >= 1 is enforced at construction
    }

    /// Draws a rank in `0..n`; rank 0 is the most probable.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[1] > counts[50]);
        // Top rank should dominate: for s=1.2, n=100, p(0) ≈ 0.26.
        assert!(counts[0] as f64 / 20_000.0 > 0.15);
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max / min < 1.2,
            "uniform counts spread too wide: {counts:?}"
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.5);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(50), 0.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let z = Zipf::new(1000, 1.0);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    proptest! {
        #[test]
        fn prop_samples_in_range(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
            let z = Zipf::new(n, s);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn prop_pmf_is_monotone_decreasing(n in 2usize..200, s in 0.1f64..3.0) {
            let z = Zipf::new(n, s);
            for k in 1..n {
                prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
            }
        }
    }
}
