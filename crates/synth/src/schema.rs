//! Declarative schemas for synthetic knowledge bases.
//!
//! A [`Profile`] declares entity classes, their populations, and the
//! predicates connecting them. The generator materialises a profile into a
//! concrete KB whose statistical shape (power-law prominence, join
//! structure, class mix) mirrors the KBs the paper evaluates on.

/// What the objects of a predicate are drawn from.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectSpec {
    /// Objects are entities of the named class, drawn Zipf-skewed so that
    /// low-index entities of the class are prominent.
    Class(&'static str),
    /// Objects are literals of a kind.
    Literal(LiteralKind),
}

/// Kinds of literal object pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiteralKind {
    /// A year in 1800–2020, as `"1987"^^xsd:gYear`-style plain literal.
    Year,
    /// A population-style integer.
    Population,
    /// A short alphanumeric code (small shared pool, e.g. time zones).
    Code,
}

/// One predicate attached to a subject class.
#[derive(Debug, Clone)]
pub struct PredSpec {
    /// Local predicate name; the IRI becomes `p:<name>`.
    pub name: &'static str,
    /// Where objects come from.
    pub object: ObjectSpec,
    /// Fraction of subjects that carry at least one fact of this predicate.
    pub coverage: f64,
    /// Maximum objects per subject (1 = functional).
    pub max_card: u32,
    /// Zipf exponent for object selection (higher = more skew toward the
    /// prominent entities of the object class).
    pub zipf: f64,
}

impl PredSpec {
    /// Convenience constructor for an entity-valued predicate.
    pub fn entity(
        name: &'static str,
        class: &'static str,
        coverage: f64,
        max_card: u32,
        zipf: f64,
    ) -> Self {
        PredSpec {
            name,
            object: ObjectSpec::Class(class),
            coverage,
            max_card,
            zipf,
        }
    }

    /// Convenience constructor for a literal-valued predicate.
    pub fn literal(name: &'static str, kind: LiteralKind, coverage: f64) -> Self {
        PredSpec {
            name,
            object: ObjectSpec::Literal(kind),
            coverage,
            max_card: 1,
            zipf: 0.8,
        }
    }
}

/// An entity class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name; entities become `e:<name>_<i>`, the class node `c:<name>`.
    pub name: &'static str,
    /// Population at scale 1.0.
    pub count: usize,
    /// Pool classes keep a fixed population regardless of scale — as the KB
    /// grows, pool entities (countries, parties, genres…) become relatively
    /// more prominent, exactly like real KBs.
    pub fixed: bool,
    /// Predicates whose subjects are entities of this class.
    pub predicates: Vec<PredSpec>,
}

/// A complete KB profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Profile name (reported in experiment output).
    pub name: &'static str,
    /// Entity classes.
    pub classes: Vec<ClassSpec>,
    /// Number of rare "long-tail" filler predicates, mimicking the large
    /// predicate vocabularies of real KBs (DBpedia: 1 951, Wikidata: 752).
    pub tail_predicates: usize,
    /// Expected tail facts per thousand entities per tail predicate.
    pub tail_rate: f64,
    /// Probability that a functional fact gets a duplicate object — the
    /// "Paris is also the capital of the Kingdom of France" noise of §4.1.3.
    pub ambiguity_noise: f64,
    /// Fraction of top-frequency entities for which inverse predicates are
    /// materialised at build time (the paper uses 0.01).
    pub inverse_fraction: f64,
}

impl Profile {
    /// Total entity count at the given scale.
    pub fn entity_count(&self, scale: f64) -> usize {
        self.classes.iter().map(|c| c.scaled_count(scale)).sum()
    }

    /// Looks up a class spec by name.
    pub fn class(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.name == name)
    }
}

impl ClassSpec {
    /// Population at the given scale (fixed classes ignore scale).
    pub fn scaled_count(&self, scale: f64) -> usize {
        if self.fixed {
            self.count
        } else {
            ((self.count as f64) * scale).round().max(1.0) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> Profile {
        Profile {
            name: "tiny",
            classes: vec![
                ClassSpec {
                    name: "Country",
                    count: 10,
                    fixed: true,
                    predicates: vec![],
                },
                ClassSpec {
                    name: "Person",
                    count: 100,
                    fixed: false,
                    predicates: vec![PredSpec::entity("citizenOf", "Country", 0.9, 1, 1.0)],
                },
            ],
            tail_predicates: 0,
            tail_rate: 0.0,
            ambiguity_noise: 0.0,
            inverse_fraction: 0.0,
        }
    }

    #[test]
    fn scaled_counts() {
        let p = tiny_profile();
        assert_eq!(p.class("Country").unwrap().scaled_count(3.0), 10);
        assert_eq!(p.class("Person").unwrap().scaled_count(3.0), 300);
        assert_eq!(p.entity_count(3.0), 310);
        assert_eq!(p.entity_count(0.0), 11); // non-fixed classes floor at 1
    }

    #[test]
    fn constructors() {
        let e = PredSpec::entity("birthPlace", "Settlement", 0.9, 1, 1.1);
        assert_eq!(e.object, ObjectSpec::Class("Settlement"));
        assert_eq!(e.max_card, 1);
        let l = PredSpec::literal("birthYear", LiteralKind::Year, 0.8);
        assert_eq!(l.object, ObjectSpec::Literal(LiteralKind::Year));
    }

    #[test]
    fn class_lookup() {
        let p = tiny_profile();
        assert!(p.class("Person").is_some());
        assert!(p.class("Robot").is_none());
    }
}
