//! The two KB profiles used throughout the evaluation, mirroring the
//! paper's datasets (§4): DBpedia 2016-10 and the Wikidata dump of [6].
//!
//! Absolute sizes are scaled to laptop experiments; the *relative* shape is
//! what matters: DBpedia-like has a richer predicate vocabulary and more
//! classes, Wikidata-like has fewer predicates and denser per-entity facts.

use crate::schema::{ClassSpec, LiteralKind, PredSpec, Profile};

/// DBpedia-like profile. At scale 1.0: ~1 500 scaling entities + ~350 pool
/// entities, ~15–20 facts per scaling entity including labels and types.
pub fn dbpedia_like() -> Profile {
    Profile {
        name: "dbpedia",
        classes: vec![
            // ---- fixed pools (prominent head entities) ----
            ClassSpec {
                name: "Country",
                count: 25,
                fixed: true,
                predicates: vec![
                    PredSpec::entity("capital", "Settlement", 1.0, 1, 1.3),
                    PredSpec::entity("officialLanguage", "Language", 0.95, 2, 1.0),
                    PredSpec::entity("currency", "Currency", 0.9, 1, 1.0),
                ],
            },
            ClassSpec {
                name: "HistoricalCountry",
                count: 8,
                fixed: true,
                // Historical capitals overlap with live ones — the source of
                // the "Paris is also the capital of the Kingdom of France"
                // ambiguity the paper reports.
                predicates: vec![PredSpec::entity("capital", "Settlement", 1.0, 1, 1.2)],
            },
            ClassSpec {
                name: "Region",
                count: 40,
                fixed: true,
                predicates: vec![PredSpec::entity("partOf", "Country", 1.0, 1, 1.0)],
            },
            ClassSpec {
                name: "Party",
                count: 18,
                fixed: true,
                predicates: vec![PredSpec::entity("activeIn", "Country", 0.9, 1, 1.0)],
            },
            ClassSpec {
                name: "Language",
                count: 20,
                fixed: true,
                predicates: vec![PredSpec::entity("langFamily", "LangFamily", 1.0, 1, 0.8)],
            },
            ClassSpec {
                name: "LangFamily",
                count: 8,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Currency",
                count: 15,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Genre",
                count: 24,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Award",
                count: 25,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "University",
                count: 35,
                fixed: true,
                predicates: vec![PredSpec::entity("locatedIn", "Settlement", 0.95, 1, 1.1)],
            },
            ClassSpec {
                name: "Occupation",
                count: 28,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Industry",
                count: 20,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Religion",
                count: 12,
                fixed: true,
                predicates: vec![],
            },
            // ---- scaling classes (the four classes of §4.1) ----
            ClassSpec {
                name: "Person",
                count: 400,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("birthPlace", "Settlement", 0.9, 1, 1.1),
                    PredSpec::entity("deathPlace", "Settlement", 0.45, 1, 1.1),
                    PredSpec::entity("citizenship", "Country", 0.85, 1, 1.2),
                    PredSpec::entity("party", "Party", 0.25, 1, 1.0),
                    PredSpec::entity("almaMater", "University", 0.4, 2, 1.0),
                    PredSpec::entity("award", "Award", 0.2, 2, 1.1),
                    PredSpec::entity("occupation", "Occupation", 0.8, 2, 1.0),
                    PredSpec::entity("religion", "Religion", 0.15, 1, 1.0),
                    PredSpec::entity("supervisor", "Person", 0.12, 1, 1.3),
                    PredSpec::entity("spouse", "Person", 0.2, 1, 0.6),
                    PredSpec::literal("birthYear", LiteralKind::Year, 0.9),
                    PredSpec::literal("deathYear", LiteralKind::Year, 0.4),
                ],
            },
            ClassSpec {
                name: "Settlement",
                count: 250,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("country", "Country", 1.0, 1, 1.2),
                    PredSpec::entity("belongsTo", "Region", 0.85, 1, 1.0),
                    PredSpec::entity("mayor", "Person", 0.45, 1, 0.8),
                    PredSpec::entity("twinCity", "Settlement", 0.3, 3, 1.0),
                    PredSpec::literal("population", LiteralKind::Population, 0.95),
                    PredSpec::literal("timeZone", LiteralKind::Code, 0.9),
                ],
            },
            ClassSpec {
                name: "Album",
                count: 100,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("artist", "Person", 1.0, 1, 1.2),
                    PredSpec::entity("genre", "Genre", 0.9, 2, 1.1),
                    PredSpec::entity("recordLabel", "Organization", 0.6, 1, 1.2),
                    PredSpec::literal("releaseYear", LiteralKind::Year, 0.95),
                ],
            },
            ClassSpec {
                name: "Film",
                count: 100,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("director", "Person", 0.95, 1, 1.1),
                    PredSpec::entity("starring", "Person", 0.9, 3, 1.2),
                    PredSpec::entity("country", "Country", 0.9, 1, 1.3),
                    PredSpec::entity("genre", "Genre", 0.9, 2, 1.1),
                    PredSpec::literal("releaseYear", LiteralKind::Year, 0.95),
                ],
            },
            ClassSpec {
                name: "Organization",
                count: 150,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("headquarters", "Settlement", 0.9, 1, 1.1),
                    PredSpec::entity("industry", "Industry", 0.8, 1, 1.0),
                    PredSpec::entity("foundedBy", "Person", 0.35, 2, 1.0),
                    PredSpec::entity("ceo", "Person", 0.5, 1, 0.8),
                    PredSpec::entity("country", "Country", 0.9, 1, 1.2),
                    PredSpec::literal("foundingYear", LiteralKind::Year, 0.8),
                ],
            },
        ],
        tail_predicates: 60,
        tail_rate: 2.0,
        ambiguity_noise: 0.04,
        inverse_fraction: 0.01,
    }
}

/// Wikidata-like profile: fewer predicates, flatter class structure, denser
/// facts per entity, matching the relative shape of the Wikidata dump used
/// in the paper (15.9 M facts, 752 predicates vs DBpedia's 1 951).
pub fn wikidata_like() -> Profile {
    Profile {
        name: "wikidata",
        classes: vec![
            ClassSpec {
                name: "Country",
                count: 30,
                fixed: true,
                predicates: vec![
                    PredSpec::entity("capital", "City", 1.0, 1, 1.3),
                    PredSpec::entity("officialLanguage", "Language", 0.95, 2, 1.0),
                ],
            },
            ClassSpec {
                name: "Language",
                count: 22,
                fixed: true,
                predicates: vec![PredSpec::entity("langFamily", "LangFamily", 1.0, 1, 0.8)],
            },
            ClassSpec {
                name: "LangFamily",
                count: 8,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Genre",
                count: 20,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Industry",
                count: 18,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Religion",
                count: 10,
                fixed: true,
                predicates: vec![],
            },
            ClassSpec {
                name: "Human",
                count: 500,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("placeOfBirth", "City", 0.95, 1, 1.1),
                    PredSpec::entity("placeOfDeath", "City", 0.5, 1, 1.1),
                    PredSpec::entity("countryOfCitizenship", "Country", 0.95, 1, 1.2),
                    PredSpec::entity("religion", "Religion", 0.2, 1, 1.0),
                    PredSpec::entity("doctoralAdvisor", "Human", 0.1, 1, 1.3),
                    PredSpec::entity("spouse", "Human", 0.25, 1, 0.6),
                    PredSpec::literal("dateOfBirth", LiteralKind::Year, 0.95),
                    PredSpec::literal("dateOfDeath", LiteralKind::Year, 0.45),
                ],
            },
            ClassSpec {
                name: "City",
                count: 200,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("country", "Country", 1.0, 1, 1.2),
                    PredSpec::entity("headOfGovernment", "Human", 0.5, 1, 0.8),
                    PredSpec::literal("population", LiteralKind::Population, 0.95),
                ],
            },
            ClassSpec {
                name: "Company",
                count: 120,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("headquartersLocation", "City", 0.95, 1, 1.1),
                    PredSpec::entity("industry", "Industry", 0.85, 1, 1.0),
                    PredSpec::entity("chiefExecutiveOfficer", "Human", 0.55, 1, 0.8),
                    PredSpec::entity("country", "Country", 0.95, 1, 1.2),
                    PredSpec::literal("inception", LiteralKind::Year, 0.85),
                ],
            },
            ClassSpec {
                name: "Film",
                count: 120,
                fixed: false,
                predicates: vec![
                    PredSpec::entity("director", "Human", 0.95, 1, 1.1),
                    PredSpec::entity("castMember", "Human", 0.95, 4, 1.2),
                    PredSpec::entity("countryOfOrigin", "Country", 0.95, 1, 1.3),
                    PredSpec::entity("genre", "Genre", 0.95, 2, 1.1),
                    PredSpec::literal("publicationDate", LiteralKind::Year, 0.95),
                ],
            },
        ],
        tail_predicates: 20,
        tail_rate: 1.5,
        ambiguity_noise: 0.03,
        inverse_fraction: 0.01,
    }
}

/// The four DBpedia evaluation classes of §4.1 (Album ∪ Film are listed
/// separately here; experiment drivers merge them when needed).
pub const DBPEDIA_EVAL_CLASSES: [&str; 5] =
    ["Person", "Settlement", "Album", "Film", "Organization"];

/// The five Wikidata evaluation classes of §4.1.3.
pub const WIKIDATA_EVAL_CLASSES: [&str; 4] = ["Company", "City", "Film", "Human"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_reference_only_declared_classes() {
        for profile in [dbpedia_like(), wikidata_like()] {
            for class in &profile.classes {
                for pred in &class.predicates {
                    if let crate::schema::ObjectSpec::Class(target) = &pred.object {
                        assert!(
                            profile.class(target).is_some(),
                            "{}: predicate {} references unknown class {}",
                            profile.name,
                            pred.name,
                            target
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dbpedia_has_more_predicates_than_wikidata() {
        let count = |p: &Profile| -> usize {
            p.classes.iter().map(|c| c.predicates.len()).sum::<usize>() + p.tail_predicates
        };
        assert!(count(&dbpedia_like()) > count(&wikidata_like()));
    }

    #[test]
    fn eval_classes_exist() {
        let db = dbpedia_like();
        for c in DBPEDIA_EVAL_CLASSES {
            assert!(db.class(c).is_some(), "missing {c}");
        }
        let wd = wikidata_like();
        for c in WIKIDATA_EVAL_CLASSES {
            assert!(wd.class(c).is_some(), "missing {c}");
        }
    }

    #[test]
    fn coverage_and_cardinality_are_sane() {
        for profile in [dbpedia_like(), wikidata_like()] {
            for class in &profile.classes {
                for pred in &class.predicates {
                    assert!((0.0..=1.0).contains(&pred.coverage));
                    assert!(pred.max_card >= 1);
                    assert!(pred.zipf >= 0.0);
                }
            }
        }
    }
}
