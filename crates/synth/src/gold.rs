//! Gold-standard entity summaries for the Table 3 evaluation.
//!
//! The paper evaluates REMI against the FACES/LinkSUM benchmark: reference
//! summaries of 5 and 10 predicate–object pairs for 80 prominent DBpedia
//! entities, manually built by 7 semantic-web experts using *diversity,
//! prominence, and uniqueness* as selection criteria (§4.1.4).
//!
//! We do not have the human experts, so we simulate them (DESIGN.md §2):
//! each synthetic expert scores an entity's facts by exactly those three
//! criteria plus individual lognormal noise, then picks the top 5/10
//! greedily with a diversity constraint. Inter-expert disagreement comes
//! from the noise, mirroring the partial overlap of real reference
//! summaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remi_kb::{KnowledgeBase, NodeId, PredId};

use crate::generator::SynthKb;

/// A reference summary: the chosen predicate–object pairs of one expert.
pub type Summary = Vec<(PredId, NodeId)>;

/// Gold-standard data for one entity.
#[derive(Debug, Clone)]
pub struct GoldEntry {
    /// The summarised entity.
    pub entity: NodeId,
    /// Per-expert summaries of size ≤ 5.
    pub top5: Vec<Summary>,
    /// Per-expert summaries of size ≤ 10.
    pub top10: Vec<Summary>,
}

/// The complete gold standard.
#[derive(Debug, Clone)]
pub struct GoldStandard {
    /// One entry per benchmark entity.
    pub entries: Vec<GoldEntry>,
    /// Number of simulated experts.
    pub num_experts: usize,
}

/// Collects the candidate facts of an entity for summarisation: base
/// (non-inverse) predicates, excluding `rdf:type` and `rdfs:label`,
/// matching the language of the FACES/LinkSUM gold standard.
pub fn candidate_facts(kb: &KnowledgeBase, entity: NodeId) -> Vec<(PredId, NodeId)> {
    let mut out = Vec::new();
    for p in kb.preds_of_subject(entity) {
        let p = PredId(p);
        if kb.is_inverse(p) {
            continue;
        }
        if Some(p) == kb.type_pred() || Some(p) == kb.label_pred() {
            continue;
        }
        for o in kb.objects(p, entity) {
            out.push((p, NodeId(o)));
        }
    }
    out
}

fn expert_scores(
    kb: &KnowledgeBase,
    entity: NodeId,
    facts: &[(PredId, NodeId)],
    rng: &mut StdRng,
    noise: f64,
) -> Vec<f64> {
    facts
        .iter()
        .map(|&(p, o)| {
            // Prominence: log-frequency of the object.
            let prominence = f64::from(kb.node_frequency(o)).max(1.0).ln();
            // Uniqueness: how discriminating (p, o) is for this entity.
            let holders = kb.subjects(p, o).len().max(1);
            let uniqueness = 1.0 / holders as f64;
            // Mild preference for frequent predicates (experts pick
            // well-known attributes).
            let pred_prom = f64::from(kb.pred_frequency(p)).max(1.0).ln() * 0.3;
            let base = prominence + 3.0 * uniqueness + pred_prom;
            let factor: f64 = (rng.gen::<f64>() * 2.0 - 1.0) * noise;
            let _ = entity;
            base * (1.0 + factor)
        })
        .collect()
}

fn greedy_pick(
    facts: &[(PredId, NodeId)],
    scores: &[f64],
    k: usize,
    max_per_pred: usize,
) -> Summary {
    let mut order: Vec<usize> = (0..facts.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores are finite")
            .then(facts[a].cmp(&facts[b]))
    });
    let mut picked = Vec::with_capacity(k);
    let mut pred_counts: remi_kb::fx::FxHashMap<PredId, usize> = Default::default();
    for i in order {
        let (p, _) = facts[i];
        let c = pred_counts.entry(p).or_insert(0);
        // Diversity: at most `max_per_pred` facts per predicate.
        if *c >= max_per_pred {
            continue;
        }
        *c += 1;
        picked.push(facts[i]);
        if picked.len() == k {
            break;
        }
    }
    picked
}

/// Builds a gold standard over the `n_entities` most prominent entities of
/// the given classes (mirroring the 80 hand-picked prominent entities).
pub fn build_gold_standard(
    synth: &SynthKb,
    classes: &[&str],
    n_entities: usize,
    num_experts: usize,
    seed: u64,
) -> GoldStandard {
    let mut rng = StdRng::seed_from_u64(seed);
    let kb = &synth.kb;

    // Prominent entities: round-robin over classes, most prominent first.
    let mut chosen: Vec<NodeId> = Vec::new();
    let mut idx = 0usize;
    while chosen.len() < n_entities {
        let mut advanced = false;
        for &class in classes {
            let members = synth.members(class);
            if idx < members.len() && chosen.len() < n_entities {
                chosen.push(members[idx]);
                advanced = true;
            }
        }
        if !advanced {
            break; // classes exhausted
        }
        idx += 1;
    }

    let entries = chosen
        .into_iter()
        .map(|entity| {
            let facts = candidate_facts(kb, entity);
            let mut top5 = Vec::with_capacity(num_experts);
            let mut top10 = Vec::with_capacity(num_experts);
            for _ in 0..num_experts {
                let scores = expert_scores(kb, entity, &facts, &mut rng, 0.65);
                top5.push(greedy_pick(&facts, &scores, 5, 2));
                top10.push(greedy_pick(&facts, &scores, 10, 3));
            }
            GoldEntry {
                entity,
                top5,
                top10,
            }
        })
        .collect();

    GoldStandard {
        entries,
        num_experts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::profiles::dbpedia_like;

    fn gold() -> (SynthKb, GoldStandard) {
        let s = generate(&dbpedia_like(), 0.2, 21);
        let g = build_gold_standard(&s, &["Person", "Settlement", "Film"], 20, 7, 5);
        (s, g)
    }

    #[test]
    fn builds_requested_entities_and_experts() {
        let (_, g) = gold();
        assert_eq!(g.entries.len(), 20);
        assert_eq!(g.num_experts, 7);
        for entry in &g.entries {
            assert_eq!(entry.top5.len(), 7);
            assert_eq!(entry.top10.len(), 7);
        }
    }

    #[test]
    fn summaries_respect_sizes() {
        let (_, g) = gold();
        for entry in &g.entries {
            for s in &entry.top5 {
                assert!(s.len() <= 5);
            }
            for s in &entry.top10 {
                assert!(s.len() <= 10);
            }
        }
    }

    #[test]
    fn summaries_contain_real_facts_of_the_entity() {
        let (s, g) = gold();
        for entry in &g.entries {
            for summary in entry.top5.iter().chain(entry.top10.iter()) {
                for &(p, o) in summary {
                    assert!(s.kb.contains(entry.entity, p, o));
                }
            }
        }
    }

    #[test]
    fn summaries_exclude_type_label_and_inverses() {
        let (s, g) = gold();
        for entry in &g.entries {
            for summary in entry.top5.iter().chain(entry.top10.iter()) {
                for &(p, _) in summary {
                    assert_ne!(Some(p), s.kb.type_pred());
                    assert_ne!(Some(p), s.kb.label_pred());
                    assert!(!s.kb.is_inverse(p));
                }
            }
        }
    }

    #[test]
    fn experts_disagree_but_overlap() {
        let (_, g) = gold();
        let mut any_disagreement = false;
        let mut any_overlap = false;
        for entry in &g.entries {
            for i in 0..entry.top5.len() {
                for j in (i + 1)..entry.top5.len() {
                    let a: std::collections::HashSet<_> = entry.top5[i].iter().collect();
                    let b: std::collections::HashSet<_> = entry.top5[j].iter().collect();
                    if a != b {
                        any_disagreement = true;
                    }
                    if a.intersection(&b).next().is_some() {
                        any_overlap = true;
                    }
                }
            }
        }
        assert!(any_disagreement, "noise should create disagreement");
        assert!(any_overlap, "criteria should create overlap");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = generate(&dbpedia_like(), 0.2, 21);
        let a = build_gold_standard(&s, &["Person"], 10, 3, 9);
        let b = build_gold_standard(&s, &["Person"], 10, 3, 9);
        for (ea, eb) in a.entries.iter().zip(b.entries.iter()) {
            assert_eq!(ea.entity, eb.entity);
            assert_eq!(ea.top5, eb.top5);
            assert_eq!(ea.top10, eb.top10);
        }
    }

    #[test]
    fn diversity_limits_per_predicate() {
        let (_, g) = gold();
        for entry in &g.entries {
            for s in &entry.top5 {
                let mut counts: std::collections::HashMap<PredId, usize> = Default::default();
                for &(p, _) in s {
                    *counts.entry(p).or_default() += 1;
                }
                for (_, c) in counts {
                    assert!(
                        c <= 2,
                        "top-5 summaries allow at most 2 facts per predicate"
                    );
                }
            }
        }
    }
}
