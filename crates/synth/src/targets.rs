//! Sampling of target entity sets for the experiments.
//!
//! §4.2.2: *"We tested the systems on 100 sets of DBpedia and Wikidata
//! entities taken from the same classes used in the qualitative evaluation.
//! The sets were randomly chosen so that they consist of 1, 2, and 3
//! entities of the same class in proportions of 50%, 30%, and 20%."*
//!
//! §4.1.1 samples sets (sizes 1–3) from the 5 % most frequent entities of
//! each class, "to ensure the entities have enough subgraph expressions".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use remi_kb::NodeId;

use crate::generator::SynthKb;

/// A sampled target set: entities of one class to describe jointly.
#[derive(Debug, Clone)]
pub struct TargetSet {
    /// The class all members share.
    pub class: String,
    /// The entities (1–3 of them).
    pub entities: Vec<NodeId>,
}

/// Configuration for target-set sampling.
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// Number of sets to draw.
    pub count: usize,
    /// Proportions of set sizes 1, 2, 3 (normalised internally).
    pub size_proportions: [f64; 3],
    /// Restrict sampling to the top fraction of each class by frequency
    /// (1.0 = whole class). §4.1 uses 0.05 for the user studies.
    pub top_fraction: f64,
}

impl Default for TargetSpec {
    fn default() -> Self {
        // The §4.2.2 runtime-evaluation mix.
        TargetSpec {
            count: 100,
            size_proportions: [0.5, 0.3, 0.2],
            top_fraction: 1.0,
        }
    }
}

/// Draws target sets from the given classes of a synthetic KB.
///
/// Entities within a class are ordered by descending prominence (generation
/// order), so "top fraction" is a prefix. Sets never contain duplicates.
pub fn sample_target_sets(
    synth: &SynthKb,
    classes: &[&str],
    spec: &TargetSpec,
    seed: u64,
) -> Vec<TargetSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total_prop: f64 = spec.size_proportions.iter().sum();
    assert!(total_prop > 0.0, "size proportions must not all be zero");

    let pools: Vec<(&str, Vec<NodeId>)> = classes
        .iter()
        .filter_map(|&c| {
            let members = synth.members(c);
            if members.is_empty() {
                return None;
            }
            let k = ((members.len() as f64) * spec.top_fraction).ceil() as usize;
            let k = k.clamp(1, members.len());
            Some((c, members[..k].to_vec()))
        })
        .collect();
    assert!(!pools.is_empty(), "no usable classes to sample from");

    let mut out = Vec::with_capacity(spec.count);
    for _ in 0..spec.count {
        // Pick a size according to the proportions.
        let u: f64 = rng.gen::<f64>() * total_prop;
        let size = if u < spec.size_proportions[0] {
            1
        } else if u < spec.size_proportions[0] + spec.size_proportions[1] {
            2
        } else {
            3
        };
        // Pick a class able to provide `size` distinct entities.
        let eligible: Vec<usize> = pools
            .iter()
            .enumerate()
            .filter(|(_, (_, p))| p.len() >= size)
            .map(|(i, _)| i)
            .collect();
        let &pick = eligible
            .choose(&mut rng)
            .expect("at least one class can satisfy the smallest size");
        let (class, pool) = &pools[pick];
        let entities: Vec<NodeId> = pool.choose_multiple(&mut rng, size).copied().collect();
        out.push(TargetSet {
            class: class.to_string(),
            entities,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::profiles::dbpedia_like;

    fn synth() -> SynthKb {
        generate(&dbpedia_like(), 0.2, 99)
    }

    #[test]
    fn produces_requested_count_and_sizes() {
        let s = synth();
        let spec = TargetSpec {
            count: 200,
            ..Default::default()
        };
        let sets = sample_target_sets(&s, &["Person", "Settlement"], &spec, 1);
        assert_eq!(sets.len(), 200);
        for set in &sets {
            assert!((1..=3).contains(&set.entities.len()));
            // No duplicates inside a set.
            let mut sorted = set.entities.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), set.entities.len());
        }
    }

    #[test]
    fn size_mix_approximates_proportions() {
        let s = synth();
        let spec = TargetSpec {
            count: 1000,
            ..Default::default()
        };
        let sets = sample_target_sets(&s, &["Person"], &spec, 2);
        let count_of = |n: usize| sets.iter().filter(|t| t.entities.len() == n).count();
        let (c1, c2, c3) = (count_of(1), count_of(2), count_of(3));
        assert!((400..600).contains(&c1), "size-1 count {c1}");
        assert!((220..380).contains(&c2), "size-2 count {c2}");
        assert!((130..270).contains(&c3), "size-3 count {c3}");
    }

    #[test]
    fn top_fraction_restricts_to_prominent_prefix() {
        let s = synth();
        let spec = TargetSpec {
            count: 50,
            size_proportions: [1.0, 0.0, 0.0],
            top_fraction: 0.05,
        };
        let sets = sample_target_sets(&s, &["Person"], &spec, 3);
        let members = s.members("Person");
        let cutoff = ((members.len() as f64) * 0.05).ceil() as usize;
        let allowed: std::collections::HashSet<_> = members[..cutoff].iter().collect();
        for set in &sets {
            for e in &set.entities {
                assert!(allowed.contains(e), "{e:?} outside the top 5%");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = synth();
        let spec = TargetSpec::default();
        let a = sample_target_sets(&s, &["Person", "Film"], &spec, 7);
        let b = sample_target_sets(&s, &["Person", "Film"], &spec, 7);
        let flat = |v: &[TargetSet]| -> Vec<(String, Vec<u32>)> {
            v.iter()
                .map(|t| (t.class.clone(), t.entities.iter().map(|e| e.0).collect()))
                .collect()
        };
        assert_eq!(flat(&a), flat(&b));
    }

    #[test]
    fn members_share_the_reported_class() {
        let s = synth();
        let spec = TargetSpec {
            count: 30,
            ..Default::default()
        };
        let sets = sample_target_sets(&s, &["Album", "Film"], &spec, 5);
        for set in sets {
            let members = s.members(&set.class);
            for e in set.entities {
                assert!(members.contains(&e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no usable classes")]
    fn unknown_classes_panic() {
        let s = synth();
        sample_target_sets(&s, &["Nonexistent"], &TargetSpec::default(), 1);
    }
}
