//! `remi-synth` — synthetic knowledge bases for the REMI reproduction.
//!
//! The paper evaluates on DBpedia (42.07 M facts) and Wikidata (15.9 M
//! facts). Those dumps are not shippable here, so this crate generates KBs
//! with the same *statistical shape*: Zipf-distributed entity and predicate
//! prominence (the power law Eq. 1 depends on), a realistic class schema
//! with multi-hop join structure, literals, long-tail predicates, and the
//! functional-fact noise responsible for the paper's ambiguity anecdotes.
//! See DESIGN.md §2 for the substitution rationale.
//!
//! * [`zipf`] — power-law sampling.
//! * [`schema`] / [`profiles`] — declarative KB profiles (`dbpedia_like`,
//!   `wikidata_like`).
//! * [`generator`] — profile → [`remi_kb::KnowledgeBase`].
//! * [`targets`] — target-set sampling (§4.1/§4.2 protocols).
//! * [`gold`] — simulated expert gold standard for Table 3.
//! * [`scenes`] — NLG-style scene micro-KBs.
//! * [`fixtures`] — process-wide memoised KBs for the slow test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixtures;
pub mod generator;
pub mod gold;
pub mod profiles;
pub mod scenes;
pub mod schema;
pub mod targets;
pub mod zipf;

pub use generator::{generate, SynthKb};
pub use profiles::{dbpedia_like, wikidata_like};
pub use targets::{sample_target_sets, TargetSet, TargetSpec};
