//! Materialises a [`Profile`](crate::schema::Profile) into a concrete KB.
//!
//! Determinism: the same `(profile, scale, seed)` triple always produces an
//! identical KB, fact for fact. All randomness flows from one seeded
//! `StdRng`; iteration orders are the declared schema orders.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remi_kb::fx::FxHashMap;
use remi_kb::store::{KbBuilder, RDFS_LABEL, RDF_TYPE};
use remi_kb::term::Term;
use remi_kb::{KnowledgeBase, NodeId};

use crate::schema::{LiteralKind, ObjectSpec, Profile};
use crate::zipf::Zipf;

/// A generated KB plus the bookkeeping experiments need: which entities
/// belong to which class, in prominence order (index 0 = most prominent).
#[derive(Debug, Clone)]
pub struct SynthKb {
    /// The built knowledge base (with inverse predicates materialised per
    /// the profile's `inverse_fraction`).
    pub kb: KnowledgeBase,
    /// Class name → member entity ids, ordered by generation index, which
    /// coincides with descending within-class target prominence.
    pub class_members: FxHashMap<String, Vec<NodeId>>,
    /// Name of the profile that produced this KB.
    pub profile: String,
    /// The scale factor used.
    pub scale: f64,
    /// The seed used.
    pub seed: u64,
}

impl SynthKb {
    /// Members of a class (empty slice if the class does not exist).
    pub fn members(&self, class: &str) -> &[NodeId] {
        self.class_members
            .get(class)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Generates a KB from a profile.
///
/// `scale` multiplies the population of non-fixed classes; `seed` drives all
/// randomness.
pub fn generate(profile: &Profile, scale: f64, seed: u64) -> SynthKb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = KbBuilder::new();

    // Pass 1: create every entity with type + label, so cross-class
    // references in pass 2 can point anywhere.
    let mut members: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
    for class in &profile.classes {
        let n = class.scaled_count(scale);
        let class_node = b.entity(&format!("c:{}", class.name));
        let mut ids = Vec::with_capacity(n);
        let type_p = b.pred(RDF_TYPE);
        let label_p = b.pred(RDFS_LABEL);
        for i in 0..n {
            let e = b.entity(&format!("e:{}_{i}", class.name));
            b.add_ids(e, type_p, class_node);
            let label = b.node(&Term::literal(format!("{} {i}", class.name)));
            b.add_ids(e, label_p, label);
            ids.push(e);
        }
        members.insert(class.name.to_string(), ids);
    }

    // Literal pools, shared across predicates of the same kind so literal
    // objects also exhibit reuse (years repeat, time zones repeat).
    let year_pool: Vec<NodeId> = (1800..2021)
        .map(|y| b.node(&Term::literal(y.to_string())))
        .collect();
    let code_pool: Vec<NodeId> = (0..12)
        .map(|i| b.node(&Term::literal(format!("Zone{i:+}"))))
        .collect();
    let year_zipf = Zipf::new(year_pool.len(), 0.3);
    let code_zipf = Zipf::new(code_pool.len(), 0.8);

    // Pass 2: facts. The most prominent entities of each scaling class
    // (the "head") are richly described — full predicate coverage and
    // maximal cardinality — mirroring how head entities in DBpedia carry
    // far more facts than tail entities.
    for class in &profile.classes {
        let subjects: Vec<NodeId> = members[class.name].clone();
        let head = if class.fixed {
            0
        } else {
            (subjects.len() / 10).max(3).min(subjects.len())
        };
        for pred in &class.predicates {
            let p = b.pred(&format!("p:{}", pred.name));
            match &pred.object {
                ObjectSpec::Class(target) => {
                    let pool = members
                        .get(*target)
                        .unwrap_or_else(|| panic!("unknown object class {target}"))
                        .clone();
                    if pool.is_empty() {
                        continue;
                    }
                    let zipf = Zipf::new(pool.len(), pred.zipf);
                    for (si, &s) in subjects.iter().enumerate() {
                        let boosted = si < head;
                        if !boosted && rng.gen::<f64>() >= pred.coverage {
                            continue;
                        }
                        // Head entities carry roughly 3× the objects on
                        // multi-valued predicates (functional predicates
                        // stay functional).
                        let card = if boosted && pred.max_card > 1 {
                            pred.max_card * 3
                        } else if boosted {
                            1
                        } else {
                            rng.gen_range(1..=pred.max_card)
                        };
                        let mut chosen: Vec<NodeId> = Vec::with_capacity(card as usize);
                        for _ in 0..card {
                            let o = pool[zipf.sample(&mut rng)];
                            if o != s && !chosen.contains(&o) {
                                chosen.push(o);
                            }
                        }
                        // Ambiguity noise: functional predicates sometimes
                        // carry a stale second value.
                        if pred.max_card == 1 && rng.gen::<f64>() < profile.ambiguity_noise {
                            let o = pool[zipf.sample(&mut rng)];
                            if o != s && !chosen.contains(&o) {
                                chosen.push(o);
                            }
                        }
                        for o in chosen {
                            b.add_ids(s, p, o);
                        }
                    }
                }
                ObjectSpec::Literal(kind) => {
                    for (si, &s) in subjects.iter().enumerate() {
                        if si >= head && rng.gen::<f64>() >= pred.coverage {
                            continue;
                        }
                        let o = match kind {
                            LiteralKind::Year => year_pool[year_zipf.sample(&mut rng)],
                            LiteralKind::Code => code_pool[code_zipf.sample(&mut rng)],
                            LiteralKind::Population => {
                                // Log-uniform population, rounded — rarely reused.
                                let exp = rng.gen_range(2.0..7.0);
                                let v = 10f64.powf(exp).round() as u64;
                                b.node(&Term::literal(v.to_string()))
                            }
                        };
                        b.add_ids(s, p, o);
                    }
                }
            }
        }
    }

    // Pass 3: long-tail predicates connecting random entity pairs, giving
    // the KB its large sparse predicate vocabulary.
    let all_entities: Vec<NodeId> = profile
        .classes
        .iter()
        .flat_map(|c| members[c.name].iter().copied())
        .collect();
    if profile.tail_predicates > 0 && all_entities.len() >= 2 {
        let per_pred = ((all_entities.len() as f64 / 1000.0) * profile.tail_rate).ceil() as usize;
        for t in 0..profile.tail_predicates {
            let p = b.pred(&format!("p:tail{t}"));
            for _ in 0..per_pred.max(1) {
                let s = all_entities[rng.gen_range(0..all_entities.len())];
                let o = all_entities[rng.gen_range(0..all_entities.len())];
                if s != o {
                    b.add_ids(s, p, o);
                }
            }
        }
    }

    let kb = b
        .build_with_inverses(profile.inverse_fraction)
        .expect("generated KB is never empty");

    SynthKb {
        kb,
        class_members: members,
        profile: profile.name.to_string(),
        scale,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{dbpedia_like, wikidata_like};

    fn tiny() -> SynthKb {
        generate(&dbpedia_like(), 0.1, 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&dbpedia_like(), 0.1, 7);
        let b = generate(&dbpedia_like(), 0.1, 7);
        assert_eq!(a.kb.num_triples(), b.kb.num_triples());
        assert_eq!(a.kb.num_nodes(), b.kb.num_nodes());
        let mut la = Vec::new();
        remi_kb::ntriples::write_kb(&a.kb, &mut la).unwrap();
        let mut lb = Vec::new();
        remi_kb::ntriples::write_kb(&b.kb, &mut lb).unwrap();
        assert_eq!(la, lb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&dbpedia_like(), 0.1, 7);
        let b = generate(&dbpedia_like(), 0.1, 8);
        let mut la = Vec::new();
        remi_kb::ntriples::write_kb(&a.kb, &mut la).unwrap();
        let mut lb = Vec::new();
        remi_kb::ntriples::write_kb(&b.kb, &mut lb).unwrap();
        assert_ne!(la, lb);
    }

    #[test]
    fn every_entity_has_type_and_label() {
        let s = tiny();
        let tp = s.kb.type_pred().expect("rdf:type present");
        let lp = s.kb.label_pred().expect("rdfs:label present");
        for (_class, ids) in s.class_members.iter() {
            for &e in ids {
                assert!(!s.kb.objects(tp, e).is_empty());
                assert!(!s.kb.objects(lp, e).is_empty());
            }
        }
    }

    #[test]
    fn scale_grows_population() {
        let small = generate(&dbpedia_like(), 0.1, 1);
        let large = generate(&dbpedia_like(), 0.3, 1);
        assert!(large.kb.num_triples() > small.kb.num_triples());
        assert!(large.members("Person").len() > small.members("Person").len());
        // Fixed pools keep their size.
        assert_eq!(
            small.members("Country").len(),
            large.members("Country").len()
        );
    }

    #[test]
    fn inverse_predicates_are_materialised() {
        let s = generate(&dbpedia_like(), 0.2, 3);
        let n_inverse = s.kb.pred_ids().filter(|&p| s.kb.is_inverse(p)).count();
        assert!(n_inverse > 0, "profile requests 1% inverse materialisation");
    }

    #[test]
    fn wikidata_profile_generates() {
        let s = generate(&wikidata_like(), 0.1, 5);
        assert!(s.kb.num_triples() > 500);
        assert!(!s.members("Human").is_empty());
        assert!(!s.members("City").is_empty());
    }

    #[test]
    fn prominence_is_skewed_within_class() {
        let s = generate(&dbpedia_like(), 0.5, 11);
        // Country_0 should be far more frequent than the median country:
        // object choices are Zipf-skewed toward low indices.
        let countries = s.members("Country");
        let f0 = s.kb.node_frequency(countries[0]);
        let fmid = s.kb.node_frequency(countries[countries.len() / 2]);
        assert!(
            f0 > fmid * 2,
            "expected strong skew, got f0={f0}, fmid={fmid}"
        );
    }

    #[test]
    fn tail_predicates_expand_vocabulary() {
        let s = tiny();
        // Inverse-materialised predicates keep the base IRI as a prefix, so
        // they must be excluded or the count depends on which entities the
        // RNG happened to make prominent.
        let tails =
            s.kb.pred_ids()
                .filter(|&p| !s.kb.is_inverse(p) && s.kb.pred_iri(p).starts_with("p:tail"))
                .count();
        assert_eq!(tails, dbpedia_like().tail_predicates);
    }

    #[test]
    fn facts_per_entity_in_realistic_band() {
        let s = generate(&dbpedia_like(), 0.5, 13);
        let per_entity = s.kb.num_triples() as f64 / s.kb.num_nodes() as f64;
        assert!(
            per_entity > 1.0 && per_entity < 30.0,
            "facts/node = {per_entity}"
        );
    }
}
