//! Scene-style micro-KBs.
//!
//! Classic referring-expression generation (Dale's full brevity, Krahmer's
//! graph-based method) was evaluated on *scenes*: exhaustive descriptions
//! of a small set of objects and their attributes — "the small red cube on
//! the table". The paper notes these datasets have far fewer predicates and
//! instances than modern KBs (§1, §5; the largest graph in [10] had 256
//! vertices). This module generates such scenes so the suite can (a) sanity
//! check REMI on the historical workload and (b) show the scalability gap
//! benchmarked in the paper's related-work discussion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remi_kb::store::{KbBuilder, RDF_TYPE};
use remi_kb::{KnowledgeBase, NodeId};

const TYPES: [&str; 5] = ["Cube", "Sphere", "Pyramid", "Cylinder", "Cone"];
const COLORS: [&str; 6] = ["Red", "Green", "Blue", "Yellow", "Black", "White"];
const SIZES: [&str; 3] = ["Small", "Medium", "Large"];

/// A generated scene.
#[derive(Debug)]
pub struct Scene {
    /// The scene KB (objects, attribute values, spatial relations).
    pub kb: KnowledgeBase,
    /// The object entities in generation order.
    pub objects: Vec<NodeId>,
}

/// Generates a scene with `n` objects. Each object gets a shape type, a
/// color, a size, and `nextTo`/`leftOf` relations to its neighbours on a
/// line — a faithful miniature of the NLG scene datasets.
pub fn generate_scene(n: usize, seed: u64) -> Scene {
    assert!(n >= 1, "a scene needs at least one object");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = KbBuilder::new();

    let type_p = b.pred(RDF_TYPE);
    let color_p = b.pred("p:color");
    let size_p = b.pred("p:size");
    let next_to = b.pred("p:nextTo");
    let left_of = b.pred("p:leftOf");

    let type_nodes: Vec<NodeId> = TYPES.iter().map(|t| b.entity(&format!("c:{t}"))).collect();
    let color_nodes: Vec<NodeId> = COLORS.iter().map(|c| b.entity(&format!("v:{c}"))).collect();
    let size_nodes: Vec<NodeId> = SIZES.iter().map(|s| b.entity(&format!("v:{s}"))).collect();

    let mut objects = Vec::with_capacity(n);
    for i in 0..n {
        let obj = b.entity(&format!("o:obj{i}"));
        b.add_ids(obj, type_p, type_nodes[rng.gen_range(0..type_nodes.len())]);
        b.add_ids(
            obj,
            color_p,
            color_nodes[rng.gen_range(0..color_nodes.len())],
        );
        b.add_ids(obj, size_p, size_nodes[rng.gen_range(0..size_nodes.len())]);
        objects.push(obj);
    }
    for w in objects.windows(2) {
        b.add_ids(w[0], next_to, w[1]);
        b.add_ids(w[1], next_to, w[0]);
        b.add_ids(w[0], left_of, w[1]);
    }

    let kb = b.build().expect("scene is never empty");
    Scene { kb, objects }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_has_expected_shape() {
        let s = generate_scene(10, 3);
        assert_eq!(s.objects.len(), 10);
        // 3 attribute facts per object + 3 relations per adjacent pair.
        assert_eq!(s.kb.num_triples(), 10 * 3 + 9 * 3);
        // Few predicates, as in historical scene datasets.
        assert_eq!(s.kb.num_preds(), 5);
    }

    #[test]
    fn every_object_has_all_attributes() {
        let s = generate_scene(25, 9);
        let color = s.kb.pred_id("p:color").unwrap();
        let size = s.kb.pred_id("p:size").unwrap();
        let tp = s.kb.type_pred().unwrap();
        for &o in &s.objects {
            assert_eq!(s.kb.objects(color, o).len(), 1);
            assert_eq!(s.kb.objects(size, o).len(), 1);
            assert_eq!(s.kb.objects(tp, o).len(), 1);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_scene(15, 4);
        let b = generate_scene(15, 4);
        let dump = |s: &Scene| {
            let mut v = Vec::new();
            remi_kb::ntriples::write_kb(&s.kb, &mut v).unwrap();
            v
        };
        assert_eq!(dump(&a), dump(&b));
    }

    #[test]
    fn single_object_scene() {
        let s = generate_scene(1, 0);
        assert_eq!(s.objects.len(), 1);
        assert_eq!(s.kb.num_triples(), 3);
    }
}
