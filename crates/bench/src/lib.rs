//! `remi-bench` — shared fixtures for the Criterion benchmark harness.
//!
//! Each bench target regenerates one artifact of the paper:
//!
//! | bench target          | paper artifact                         |
//! |-----------------------|----------------------------------------|
//! | `tab2_user_agreement` | Table 2 (p@k of Ĉ vs users)            |
//! | `tab3_summarization`  | Table 3 (summary quality)              |
//! | `tab4_runtime`        | Table 4 (AMIE+ vs REMI vs P-REMI)      |
//! | `eq1_powerlaw_fit`    | Eq. 1 R² fits                          |
//! | `space_growth`        | §3.2 language-bias growth              |
//! | `fig1_search_tree`    | Figure 1 DFS behaviour                 |
//! | `ablations`           | §3.5 design-choice ablations           |
//! | `kb_micro`            | substrate microbenchmarks              |
//! | `pool_overhead`       | pooled executor vs spawn-per-call      |
//! | `backend_bindings`    | CSR vs succinct storage backends       |
//!
//! Every bench prints the regenerated table once before timing, so
//! `cargo bench` output doubles as the experimental record.

#![forbid(unsafe_code)]

use std::sync::OnceLock;

use remi_synth::SynthKb;

/// The shared DBpedia-like benchmark KB (built once per process).
pub fn dbpedia() -> &'static SynthKb {
    static KB: OnceLock<SynthKb> = OnceLock::new();
    KB.get_or_init(|| remi_synth::generate(&remi_synth::dbpedia_like(), 2.0, 42))
}

/// The shared Wikidata-like benchmark KB.
pub fn wikidata() -> &'static SynthKb {
    static KB: OnceLock<SynthKb> = OnceLock::new();
    KB.get_or_init(|| remi_synth::generate(&remi_synth::wikidata_like(), 2.0, 42))
}

/// The DBpedia evaluation classes of §4.1.
pub const DBPEDIA_CLASSES: [&str; 5] = ["Person", "Settlement", "Album", "Film", "Organization"];

/// The Wikidata evaluation classes of §4.1.3.
pub const WIKIDATA_CLASSES: [&str; 4] = ["Company", "City", "Film", "Human"];
