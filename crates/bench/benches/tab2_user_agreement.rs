//! Table 2 — the Ĉ-vs-users agreement experiment as a benchmark: how fast
//! the queue construction + candidate ranking protocol runs, printing the
//! regenerated table once.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::{dbpedia, DBPEDIA_CLASSES};
use remi_eval::experiments::table2;

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let result = table2::run(synth, &DBPEDIA_CLASSES, 24, 2, 42);
    println!("\n{result}");

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("protocol_24_sets", |b| {
        b.iter(|| table2::run(synth, &DBPEDIA_CLASSES, 24, 2, 42))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
