//! Ablations of the design choices DESIGN.md calls out (§3.5):
//! * LRU binding cache on/off;
//! * prominent-object pruning on/off;
//! * exact-rank vs power-law entity codes;
//! * incumbent root cutoff on/off;
//! * P-REMI thread scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_core::complexity::EntityCodeMode;
use remi_core::{EnumerationConfig, Remi, RemiConfig};

fn config(
    cache: usize,
    prominent_cutoff: f64,
    entity_code: EntityCodeMode,
    cutoff: bool,
    threads: usize,
) -> RemiConfig {
    RemiConfig {
        enumeration: EnumerationConfig {
            prominent_cutoff,
            ..Default::default()
        },
        entity_code,
        cache_capacity: cache,
        threads,
        incumbent_root_cutoff: cutoff,
        // Bounded per call: the no_root_cutoff variant is deliberately
        // quadratic in the queue size without this.
        timeout: Some(std::time::Duration::from_millis(250)),
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;
    let targets: Vec<_> = synth.members("Person")[5..10].to_vec();

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    let variants: Vec<(&str, RemiConfig)> = vec![
        (
            "baseline",
            config(16_384, 0.05, EntityCodeMode::PowerLaw, true, 1),
        ),
        (
            "cache_off",
            config(1, 0.05, EntityCodeMode::PowerLaw, true, 1),
        ),
        (
            "no_prominent_pruning",
            config(16_384, 0.0, EntityCodeMode::PowerLaw, true, 1),
        ),
        (
            "exact_rank_codes",
            config(16_384, 0.05, EntityCodeMode::ExactRank, true, 1),
        ),
        (
            "no_root_cutoff",
            config(16_384, 0.05, EntityCodeMode::PowerLaw, false, 1),
        ),
        (
            "threads_2",
            config(16_384, 0.05, EntityCodeMode::PowerLaw, true, 2),
        ),
        (
            "threads_8",
            config(16_384, 0.05, EntityCodeMode::PowerLaw, true, 8),
        ),
    ];
    for (name, cfg) in variants {
        let remi = Remi::new(kb, cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                for &t in &targets {
                    criterion::black_box(remi.describe(&[t]));
                }
            })
        });
    }
    group.finish();

    // Report the effect of the pruning heuristics on queue sizes once.
    let pruned = Remi::new(kb, config(16_384, 0.05, EntityCodeMode::PowerLaw, true, 1));
    let unpruned = Remi::new(kb, config(16_384, 0.0, EntityCodeMode::PowerLaw, true, 1));
    let t = targets[0];
    let (qp, _) = pruned.ranked_common_expressions(&[t]);
    let (qu, _) = unpruned.ranked_common_expressions(&[t]);
    println!(
        "\nqueue size with §3.5.2 prominent pruning: {} — without: {}",
        qp.len(),
        qu.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
