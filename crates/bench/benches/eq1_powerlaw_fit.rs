//! Eq. 1 — the power-law compression: R² regenerated, fit construction
//! benchmarked.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::{dbpedia, wikidata};
use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_eval::experiments::fit;

fn bench(c: &mut Criterion) {
    println!("\n{}", fit::run(dbpedia(), 10));
    println!("{}", fit::run(wikidata(), 10));

    let kb = &dbpedia().kb;
    let mut group = c.benchmark_group("eq1_fit");
    group.sample_size(20);
    group.bench_function("build_cost_model_powerlaw_fr", |b| {
        b.iter(|| CostModel::new(kb, Prominence::Frequency, EntityCodeMode::PowerLaw))
    });
    group.bench_function("build_cost_model_exact_fr", |b| {
        b.iter(|| CostModel::new(kb, Prominence::Frequency, EntityCodeMode::ExactRank))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
