//! Table 3 — entity-summarisation quality, regenerated and benchmarked
//! per summariser.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_core::complexity::{CostModel, EntityCodeMode, Prominence};
use remi_essum::{faces_summary, linksum_summary, remi_summary};
use remi_eval::experiments::table3;
use remi_kb::pagerank::{pagerank, PageRankConfig};

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;
    let result = table3::run(
        synth,
        &["Person", "Settlement", "Film", "Organization"],
        80,
        42,
    );
    println!("\n{result}");

    let pr = pagerank(kb, PageRankConfig::default());
    let model = CostModel::new(kb, Prominence::Frequency, EntityCodeMode::PowerLaw);
    let entity = synth.members("Person")[0];

    let mut group = c.benchmark_group("table3");
    group.bench_function("faces_top10", |b| b.iter(|| faces_summary(kb, entity, 10)));
    group.bench_function("linksum_top10", |b| {
        b.iter(|| linksum_summary(kb, &pr, entity, 10))
    });
    group.bench_function("remi_top10", |b| {
        b.iter(|| remi_summary(kb, &model, entity, 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
