//! Live-ingestion benchmarks: the delta-overlay subsystem end to end.
//!
//! Four costs bound the live-serving story:
//!
//! * `snapshot_pin` — pinning an epoch (what every request pays).
//! * `layered_objects_lookup` — a merged base+delta point lookup, the
//!   read-path tax of the overlay (compare `backend_bindings/
//!   csr_objects_lookup` for the frozen-store floor).
//! * `append_publish_100` — one 100-triple batch through dedup, delta
//!   index rebuild, and epoch publish (periodic folds keep the overlay
//!   bounded, so occasional samples absorb a compaction).
//! * `append_publish_fixed100` — the same batch against a [`LiveKb::fork`]
//!   of one pristine writer each iteration, so the KB size is *fixed*:
//!   this is the pure per-publish latency at constant dictionary size,
//!   the number the segmented-dictionary O(batch) claim is about.
//! * `http_ingest` — `POST /ingest` round-trips against a live server
//!   with background compaction enabled: the full production write path.
//!
//! The one-shot smoke print shows an ingested fact becoming describable
//! in the very next request, plus the epoch/purge accounting. A second
//! smoke forks writers over a small and a 4× KB and asserts the publish
//! medians stay near-flat — the segmented dictionaries make publish cost
//! O(batch), not O(KB). Both the scaling ratio and the dictionaries'
//! heap footprint are appended to `CRITERION_JSON` as value-only records
//! (no `median_ns`, so the trend gate skips them but the perf-trajectory
//! artifact keeps them visible).

use std::io::Write as _;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use remi_kb::delta::CompactionPolicy;
use remi_kb::term::Term;
use remi_kb::LiveKb;
use remi_serve::client::Client;
use remi_serve::{serve, ServeConfig};

/// A unique batch of `n` synthetic triples (seeded by `tag`).
fn batch(tag: u64, n: usize) -> Vec<(Term, String, Term)> {
    (0..n)
        .map(|i| {
            (
                Term::iri(format!("e:ingest_{tag}_{i}")),
                "p:ingested".to_string(),
                Term::iri(format!("e:batch_{tag}")),
            )
        })
        .collect()
}

/// Median wall-clock of one forked 100-triple append+publish, over
/// `samples` forks of `proto`. Each fork starts from the same pristine
/// writer, so the KB size under measurement never drifts.
fn fork_publish_median_ns(proto: &LiveKb, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples as u64)
        .map(|i| {
            let fork = proto.fork();
            let t = Instant::now();
            fork.append(batch(9_000_000 + i, 100));
            t.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Append a value-only JSON record (`id` + `value`, no `median_ns`) to
/// the `CRITERION_JSON` file, if set. The bench-trend gate only loads
/// records carrying `median_ns`, so these ride along in the artifact
/// without becoming regression-gated timings.
fn emit_value_record(id: &str, value: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let r = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{{\"id\":\"{id}\",\"value\":{value:.1}}}"));
    if let Err(e) = r {
        eprintln!("delta_ingest: cannot append to {path}: {e}");
    }
}

fn bench(c: &mut Criterion) {
    // A small fixed-seed world so per-publish dictionary clones stay
    // proportionate to what an ingest batch costs.
    let synth = remi_synth::generate(&remi_synth::dbpedia_like(), 0.2, 42);

    // --- one-shot smoke: ingest → describe visibility + accounting -----
    let live = LiveKb::new(synth.kb.clone());
    let before = live.snapshot();
    let out = live.append(batch(0, 100));
    let after = live.snapshot();
    let p = after.kb.pred_id("p:ingested").expect("ingested predicate");
    println!(
        "\ndelta smoke: +{} triples → epoch {} (fingerprint {:016x} → {:016x}), \
         delta {} facts, merged lookup sees {}",
        out.appended,
        out.epoch,
        before.fingerprint,
        after.fingerprint,
        out.delta_triples,
        after.kb.index(p).num_facts(),
    );
    assert_eq!(after.kb.index(p).num_facts(), 100);
    assert_eq!(before.kb.pred_id("p:ingested"), None);

    let compacted = live.compact();
    println!(
        "delta smoke: compaction folded {} triples in {:.1?}; fingerprint stable: {}",
        compacted.folded,
        compacted.duration,
        live.snapshot().fingerprint == after.fingerprint,
    );

    let mut group = c.benchmark_group("delta_ingest");

    // --- snapshot_pin ---------------------------------------------------
    group.bench_function("snapshot_pin", |b| {
        b.iter(|| live.snapshot().epoch);
    });

    // --- layered_objects_lookup ------------------------------------------
    // A layered view with a real overlay: appended facts attach fresh
    // objects to *existing* subjects so lookups genuinely merge.
    let overlay = LiveKb::new(synth.kb.clone());
    let subjects: Vec<String> = synth
        .kb
        .entity_ids()
        .filter(|&e| !synth.kb.preds_of_subject(e).is_empty())
        .take(64)
        .map(|e| synth.kb.node_key(e).to_string())
        .collect();
    overlay.append(
        subjects
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    Term::iri(s.clone()),
                    "p:ingested".to_string(),
                    Term::iri(format!("e:tag_{i}")),
                )
            })
            .collect::<Vec<_>>(),
    );
    let snap = overlay.snapshot();
    let probes: Vec<(remi_kb::PredId, remi_kb::NodeId)> = subjects
        .iter()
        .map(|s| {
            let n = snap.kb.node_id_by_iri(s).expect("subject interned");
            let p = remi_kb::PredId(snap.kb.preds_of_subject(n).first().expect("has preds"));
            (p, n)
        })
        .collect();
    group.bench_function("layered_objects_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (p, s) = probes[i % probes.len()];
            i += 1;
            snap.kb.objects(p, s).len()
        });
    });

    // --- append_publish_100 ----------------------------------------------
    // Publish cost scales with the dictionaries (each epoch clones them),
    // and unique batches grow the KB for the whole run — keep samples
    // short so the drift stays bounded.
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    let writer = LiveKb::with_policy(
        synth.kb.clone(),
        CompactionPolicy {
            min_delta: usize::MAX, // folds are explicit below
            ..CompactionPolicy::default()
        },
    );
    group.bench_function("append_publish_100", |b| {
        let mut tag = 1_000_000u64;
        b.iter(|| {
            tag += 1;
            let out = writer.append(batch(tag, 100));
            // Bound the overlay so publish cost stays representative;
            // the occasional sample absorbs the fold, which is exactly
            // what a steady-state ingester pays.
            if out.delta_triples >= 8_000 {
                writer.compact();
            }
            out.appended
        });
    });

    // --- append_publish_fixed100 -----------------------------------------
    // Fork a pristine writer every iteration: the dictionaries under
    // measurement stay at their seed size, so this isolates one batch's
    // dedup + delta rebuild + publish without the KB growth the variant
    // above accumulates across samples.
    let proto = LiveKb::with_policy(
        synth.kb.clone(),
        CompactionPolicy {
            min_delta: usize::MAX,
            ..CompactionPolicy::default()
        },
    );
    group.bench_function("append_publish_fixed100", |b| {
        let mut tag = 2_000_000u64;
        b.iter(|| {
            tag += 1;
            proto.fork().append(batch(tag, 100)).appended
        });
    });

    // --- http_ingest ------------------------------------------------------
    let mut server = serve(
        synth.kb.clone(),
        ServeConfig {
            compact_min_delta: 2_000, // let background compaction run
            ..ServeConfig::default()
        },
    )
    .expect("ingest server boots");
    let mut client = Client::connect(server.addr()).expect("connect");
    group.bench_function("http_ingest", |b| {
        let mut tag = 0u64;
        b.iter(|| {
            tag += 1;
            let body = format!(
                "<e:http_{tag}> <p:loadIngested> <e:httpBatch_{}> .\n\
                 <e:http_{tag}> <p:loadSeq> <e:seq_{}> .\n",
                tag % 97,
                tag % 31,
            );
            let r = client.post("/ingest", &body).expect("ingest");
            assert_eq!(r.status, 200, "{}", r.body);
            r.body.len()
        });
    });
    group.finish();

    // Throughput smoke for the job log.
    let t0 = Instant::now();
    let n = 200usize;
    for tag in 0..n as u64 {
        let body = format!("<e:smoke_{tag}> <p:loadIngested> <e:smokeBatch> .\n");
        let r = client.post("/ingest", &body).expect("ingest");
        assert_eq!(r.status, 200);
    }
    println!(
        "ingest smoke: {n} single-triple POSTs in {:.1?} ({:.0} ingests/s)",
        t0.elapsed(),
        n as f64 / t0.elapsed().as_secs_f64()
    );
    server.shutdown();

    // --- publish-scaling smoke: O(batch), not O(KB) -----------------------
    // Publish cost under the segmented dictionaries is bounded by the
    // batch (tail copy + touched segments), so quadrupling the KB must
    // leave the per-publish median near-flat. Warm both worlds with one
    // throwaway fork before sampling.
    // The profile grows sub-linearly in scale; 2.0 lands at ≳4× the
    // nodes of the 0.2-scale world above.
    let big = remi_synth::generate(&remi_synth::dbpedia_like(), 2.0, 42);
    let policy = CompactionPolicy {
        min_delta: usize::MAX,
        ..CompactionPolicy::default()
    };
    let small_proto = LiveKb::with_policy(synth.kb.clone(), policy);
    let big_proto = LiveKb::with_policy(big.kb.clone(), policy);
    fork_publish_median_ns(&small_proto, 1);
    fork_publish_median_ns(&big_proto, 1);
    let small_ns = fork_publish_median_ns(&small_proto, 9);
    let big_ns = fork_publish_median_ns(&big_proto, 9);
    let ratio = big_ns / small_ns;
    println!(
        "publish scaling smoke: {} nodes {:.0}µs vs {} nodes {:.0}µs → ratio {ratio:.2}",
        synth.kb.num_nodes(),
        small_ns / 1e3,
        big.kb.num_nodes(),
        big_ns / 1e3,
    );
    assert!(
        ratio < 1.5,
        "publish cost must stay near-flat in KB size: 4× KB took {ratio:.2}× \
         ({small_ns:.0}ns → {big_ns:.0}ns)"
    );
    emit_value_record("delta_ingest/publish_scaling_ratio", ratio);
    let dict_heap = big.kb.node_dict().heap_bytes() + big.kb.pred_dict().heap_bytes();
    emit_value_record("delta_ingest/dict_heap_bytes", dict_heap as f64);
}

criterion_group!(benches, bench);
criterion_main!(benches);
