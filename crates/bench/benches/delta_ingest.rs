//! Live-ingestion benchmarks: the delta-overlay subsystem end to end.
//!
//! Four costs bound the live-serving story:
//!
//! * `snapshot_pin` — pinning an epoch (what every request pays).
//! * `layered_objects_lookup` — a merged base+delta point lookup, the
//!   read-path tax of the overlay (compare `backend_bindings/
//!   csr_objects_lookup` for the frozen-store floor).
//! * `append_publish_100` — one 100-triple batch through dedup, delta
//!   index rebuild, and epoch publish (periodic folds keep the overlay
//!   bounded, so occasional samples absorb a compaction).
//! * `http_ingest` — `POST /ingest` round-trips against a live server
//!   with background compaction enabled: the full production write path.
//!
//! The one-shot smoke print shows an ingested fact becoming describable
//! in the very next request, plus the epoch/purge accounting.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use remi_kb::delta::CompactionPolicy;
use remi_kb::term::Term;
use remi_kb::LiveKb;
use remi_serve::client::Client;
use remi_serve::{serve, ServeConfig};

/// A unique batch of `n` synthetic triples (seeded by `tag`).
fn batch(tag: u64, n: usize) -> Vec<(Term, String, Term)> {
    (0..n)
        .map(|i| {
            (
                Term::iri(format!("e:ingest_{tag}_{i}")),
                "p:ingested".to_string(),
                Term::iri(format!("e:batch_{tag}")),
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    // A small fixed-seed world so per-publish dictionary clones stay
    // proportionate to what an ingest batch costs.
    let synth = remi_synth::generate(&remi_synth::dbpedia_like(), 0.2, 42);

    // --- one-shot smoke: ingest → describe visibility + accounting -----
    let live = LiveKb::new(synth.kb.clone());
    let before = live.snapshot();
    let out = live.append(batch(0, 100));
    let after = live.snapshot();
    let p = after.kb.pred_id("p:ingested").expect("ingested predicate");
    println!(
        "\ndelta smoke: +{} triples → epoch {} (fingerprint {:016x} → {:016x}), \
         delta {} facts, merged lookup sees {}",
        out.appended,
        out.epoch,
        before.fingerprint,
        after.fingerprint,
        out.delta_triples,
        after.kb.index(p).num_facts(),
    );
    assert_eq!(after.kb.index(p).num_facts(), 100);
    assert_eq!(before.kb.pred_id("p:ingested"), None);

    let compacted = live.compact();
    println!(
        "delta smoke: compaction folded {} triples in {:.1?}; fingerprint stable: {}",
        compacted.folded,
        compacted.duration,
        live.snapshot().fingerprint == after.fingerprint,
    );

    let mut group = c.benchmark_group("delta_ingest");

    // --- snapshot_pin ---------------------------------------------------
    group.bench_function("snapshot_pin", |b| {
        b.iter(|| live.snapshot().epoch);
    });

    // --- layered_objects_lookup ------------------------------------------
    // A layered view with a real overlay: appended facts attach fresh
    // objects to *existing* subjects so lookups genuinely merge.
    let overlay = LiveKb::new(synth.kb.clone());
    let subjects: Vec<String> = synth
        .kb
        .entity_ids()
        .filter(|&e| !synth.kb.preds_of_subject(e).is_empty())
        .take(64)
        .map(|e| synth.kb.node_key(e).to_string())
        .collect();
    overlay.append(
        subjects
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    Term::iri(s.clone()),
                    "p:ingested".to_string(),
                    Term::iri(format!("e:tag_{i}")),
                )
            })
            .collect::<Vec<_>>(),
    );
    let snap = overlay.snapshot();
    let probes: Vec<(remi_kb::PredId, remi_kb::NodeId)> = subjects
        .iter()
        .map(|s| {
            let n = snap.kb.node_id_by_iri(s).expect("subject interned");
            let p = remi_kb::PredId(snap.kb.preds_of_subject(n).first().expect("has preds"));
            (p, n)
        })
        .collect();
    group.bench_function("layered_objects_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (p, s) = probes[i % probes.len()];
            i += 1;
            snap.kb.objects(p, s).len()
        });
    });

    // --- append_publish_100 ----------------------------------------------
    // Publish cost scales with the dictionaries (each epoch clones them),
    // and unique batches grow the KB for the whole run — keep samples
    // short so the drift stays bounded.
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    let writer = LiveKb::with_policy(
        synth.kb.clone(),
        CompactionPolicy {
            min_delta: usize::MAX, // folds are explicit below
            ..CompactionPolicy::default()
        },
    );
    group.bench_function("append_publish_100", |b| {
        let mut tag = 1_000_000u64;
        b.iter(|| {
            tag += 1;
            let out = writer.append(batch(tag, 100));
            // Bound the overlay so publish cost stays representative;
            // the occasional sample absorbs the fold, which is exactly
            // what a steady-state ingester pays.
            if out.delta_triples >= 8_000 {
                writer.compact();
            }
            out.appended
        });
    });

    // --- http_ingest ------------------------------------------------------
    let mut server = serve(
        synth.kb.clone(),
        ServeConfig {
            compact_min_delta: 2_000, // let background compaction run
            ..ServeConfig::default()
        },
    )
    .expect("ingest server boots");
    let mut client = Client::connect(server.addr()).expect("connect");
    group.bench_function("http_ingest", |b| {
        let mut tag = 0u64;
        b.iter(|| {
            tag += 1;
            let body = format!(
                "<e:http_{tag}> <p:loadIngested> <e:httpBatch_{}> .\n\
                 <e:http_{tag}> <p:loadSeq> <e:seq_{}> .\n",
                tag % 97,
                tag % 31,
            );
            let r = client.post("/ingest", &body).expect("ingest");
            assert_eq!(r.status, 200, "{}", r.body);
            r.body.len()
        });
    });
    group.finish();

    // Throughput smoke for the job log.
    let t0 = Instant::now();
    let n = 200usize;
    for tag in 0..n as u64 {
        let body = format!("<e:smoke_{tag}> <p:loadIngested> <e:smokeBatch> .\n");
        let r = client.post("/ingest", &body).expect("ingest");
        assert_eq!(r.status, 200);
    }
    println!(
        "ingest smoke: {n} single-triple POSTs in {:.1?} ({:.0} ingests/s)",
        t0.elapsed(),
        n as f64 / t0.elapsed().as_secs_f64()
    );
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
