//! Storage-backend comparison: binding-lookup latency, membership tests,
//! group iteration, and load time for the CSR vs succinct layouts, plus a
//! one-shot memory report.
//!
//! The succinct backend trades a few extra instructions per lookup
//! (packed-word extraction, `select1` probes) for a 2–3× smaller resident
//! store and a zero-copy `RKB2` load path. This bench quantifies both
//! sides of that trade on the shared seed-42 DBpedia-like KB.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_kb::{Backend, KnowledgeBase, NodeId};

/// A deterministic spread of (pred, subject, object) probes drawn from the
/// KB's own facts, so every lookup hits a non-empty run.
fn probes(kb: &KnowledgeBase, n: usize) -> Vec<(remi_kb::PredId, NodeId, NodeId)> {
    let mut out = Vec::with_capacity(n);
    let triples: Vec<_> = kb.iter_triples().collect();
    if triples.is_empty() {
        return out;
    }
    let stride = (triples.len() / n).max(1);
    for t in triples.iter().step_by(stride).take(n) {
        out.push((t.p, t.s, t.o));
    }
    out
}

fn bench_backend(c: &mut Criterion, name: &str, kb: &KnowledgeBase) {
    let probes = probes(kb, 512);
    let mut group = c.benchmark_group("backend_bindings");

    group.bench_function(&format!("{name}_objects_lookup"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(p, s, _) in &probes {
                total += criterion::black_box(kb.objects(p, s)).len();
            }
            total
        })
    });

    group.bench_function(&format!("{name}_subjects_lookup"), |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &(p, _, o) in &probes {
                total += criterion::black_box(kb.subjects(p, o)).len();
            }
            total
        })
    });

    group.bench_function(&format!("{name}_contains"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(p, s, o) in &probes {
                hits += usize::from(kb.contains(s, p, o));
            }
            criterion::black_box(hits)
        })
    });

    group.bench_function(&format!("{name}_group_scan"), |b| {
        // Full subject-group sweep over the busiest predicate: the shape
        // of the Closed2/Closed3 evaluation loops.
        let busiest = kb
            .pred_ids()
            .max_by_key(|&p| kb.index(p).num_facts())
            .expect("non-empty KB");
        b.iter(|| {
            let mut total = 0usize;
            for (_, objs) in kb.index(busiest).iter_subjects() {
                total += objs.iter().count();
            }
            criterion::black_box(total)
        })
    });

    group.finish();
}

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let csr = &synth.kb;
    let succinct = csr.clone().with_backend(Backend::Succinct);

    let csr_bytes = csr.store_memory().total();
    let succinct_bytes = succinct.store_memory().total();
    println!(
        "\nstore memory: csr {} bytes, succinct {} bytes ({:.1}% of csr)",
        csr_bytes,
        succinct_bytes,
        100.0 * succinct_bytes as f64 / csr_bytes as f64
    );

    bench_backend(c, "csr", csr);
    bench_backend(c, "succinct", &succinct);

    // Load times: RKB1 → CSR rebuild vs RKB2 → zero-copy succinct.
    let rkb1 = remi_kb::binfmt::write_bytes(csr);
    let rkb2 = remi_kb::binfmt::write_bytes_v2(csr);
    println!(
        "file sizes: rkb1 {} bytes, rkb2 {} bytes",
        rkb1.len(),
        rkb2.len()
    );
    let mut group = c.benchmark_group("backend_bindings");
    group.sample_size(10);
    group.bench_function("csr_load_rkb1", |b| {
        b.iter(|| {
            remi_kb::binfmt::read_shared(&rkb1, 0.0)
                .unwrap()
                .num_triples()
        })
    });
    group.bench_function("succinct_load_rkb2", |b| {
        b.iter(|| {
            remi_kb::binfmt::read_shared(&rkb2, 0.0)
                .unwrap()
                .num_triples()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
