//! Query-engine benchmarks: the triple-pattern resolver and the BGP
//! executor on the shared DBpedia-like KB, no HTTP in the loop.
//!
//! Three shapes bound the engine's cost model:
//!
//! * `pattern_bound_pred` — one predicate's full extent through
//!   `SolutionIter` (the streaming fast path over `Bindings`).
//! * `pattern_full_scan` — the worst case: every group of every
//!   predicate, still zero-materialisation.
//! * `bgp_join2` — a 2-pattern chain join with the default row limit,
//!   the same plan `POST /query` executes per cache miss.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_kb::{parse_patterns, solve_bgp, Slot, SolutionIter, TriplePattern};

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;
    let pred = kb
        .pred_ids()
        .filter(|&p| !kb.is_inverse(p))
        .max_by_key(|&p| kb.index(p).num_facts())
        .expect("fixture has predicates");
    let pred_iri = kb.pred_iri(pred).to_string();

    let chain = parse_patterns(
        kb,
        &[
            ["?a".to_string(), pred_iri.clone(), "?b".to_string()],
            ["?b".to_string(), pred_iri.clone(), "?c".to_string()],
        ],
    )
    .expect("chain patterns parse");

    let mut group = c.benchmark_group("query_engine");
    group.bench_function("pattern_bound_pred", |b| {
        let pat = TriplePattern::new(Slot::Var(0), Slot::Bound(pred.0), Slot::Var(1));
        b.iter(|| SolutionIter::new(kb.store(), pat).count())
    });
    group.bench_function("pattern_full_scan", |b| {
        let pat = TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        b.iter(|| SolutionIter::new(kb.store(), pat).count())
    });
    group.bench_function("bgp_join2", |b| {
        b.iter(|| {
            solve_bgp(kb.store(), &chain.patterns, 100, None)
                .expect("join runs")
                .rows
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
