//! Substrate microbenchmarks: dictionary interning, CSR lookups,
//! N-Triples parsing, binary-format round trips, PageRank, LRU cache.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_kb::cache::LruCache;
use remi_kb::pagerank::{pagerank, PageRankConfig};
use remi_kb::{KbBuilder, PredId, Term};

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;

    let mut group = c.benchmark_group("kb_micro");

    group.bench_function("dictionary_intern_1k", |b| {
        b.iter(|| {
            let mut builder = KbBuilder::new();
            for i in 0..1000 {
                builder.node(&Term::iri(format!("http://example.org/resource/E{i}")));
            }
            builder.len()
        })
    });

    let settlement = synth.members("Settlement")[0];
    let country = kb.pred_id("p:country").expect("profile predicate");
    group.bench_function("csr_objects_lookup", |b| {
        b.iter(|| criterion::black_box(kb.objects(country, settlement)))
    });
    let country0 = kb.objects(country, settlement).first();
    if let Some(o) = country0 {
        group.bench_function("csr_subjects_lookup", |b| {
            b.iter(|| criterion::black_box(kb.subjects(country, remi_kb::NodeId(o))))
        });
    }

    let mut nt = Vec::new();
    remi_kb::ntriples::write_kb(kb, &mut nt).unwrap();
    let doc = String::from_utf8(nt).unwrap();
    group.sample_size(10);
    group.bench_function("ntriples_parse_full_kb", |b| {
        b.iter(|| remi_kb::ntriples::parse_document(&doc).unwrap().len())
    });

    let bytes = remi_kb::binfmt::write_bytes(kb);
    println!(
        "\nbinary size: {} bytes vs {} bytes N-Triples ({}x compression)",
        bytes.len(),
        doc.len(),
        doc.len() / bytes.len().max(1)
    );
    group.bench_function("binfmt_write", |b| {
        b.iter(|| remi_kb::binfmt::write_bytes(kb))
    });
    group.bench_function("binfmt_read", |b| {
        b.iter(|| remi_kb::binfmt::read_bytes(&bytes, 0.0).unwrap())
    });

    group.bench_function("pagerank_50_iters", |b| {
        b.iter(|| pagerank(kb, PageRankConfig::default()))
    });

    group.bench_function("lru_cache_churn", |b| {
        b.iter(|| {
            let mut cache: LruCache<u32, u32> = LruCache::new(256);
            for i in 0..4096u32 {
                cache.put(i % 512, i);
                criterion::black_box(cache.get(&(i % 512)));
            }
            cache.len()
        })
    });

    let _ = PredId(0);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
