//! Overhead of the observability substrate itself.
//!
//! Counter bumps, histogram records, and span lifecycles sit directly
//! on the serve hot path (every request records one latency sample and
//! up to six phase boundaries), so their cost budget is tens of
//! nanoseconds, not microseconds. `histogram_record` is the headline
//! number: the issue gate is a ≤ ~50ns median for one record.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use remi_obs::{
    Channel, Counter, EventSpec, FieldKind, FieldSpec, Histogram, MonoClock, Recorder, Severity,
    Span,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let counter = Counter::new();
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    // A cheap LCG varies the recorded value so every bucket index path
    // is exercised, not just one hot cache line.
    let hist = Histogram::new();
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            hist.record(black_box(state >> 24));
        })
    });

    let clock = MonoClock::new();
    group.bench_function("span_start_finish", |b| {
        b.iter(|| Span::start(black_box(&clock)).finish())
    });

    // The shape of a full served request: span, three phase marks, and
    // the final record into a latency histogram.
    let latency = Histogram::new();
    group.bench_function("span_request_shape", |b| {
        b.iter(|| {
            let mut span = Span::start(black_box(&clock));
            span.phase("parse");
            span.phase("mine");
            span.phase("write");
            span.finish_into(&latency)
        })
    });

    // One flight-recorder emit: a seq claim plus a seqlock-guarded slot
    // write. It rides the kb/pool/serve hot paths (every solved BGP and
    // every slow request emits), so the issue gate is a ≤ 100ns median.
    let recorder = Recorder::new(1024);
    let plan = recorder.define(EventSpec {
        name: "bench_plan",
        channel: Channel::Query,
        severity: Severity::Info,
        fields: &[
            FieldSpec {
                key: "patterns",
                kind: FieldKind::U64,
            },
            FieldSpec {
                key: "rows",
                kind: FieldKind::U64,
            },
        ],
    });
    let mut ts = 0u64;
    group.bench_function("event_record", |b| {
        b.iter(|| {
            ts = ts.wrapping_add(17);
            recorder.emit(plan, black_box(ts), black_box(&[3, 128]));
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
