//! Serving benchmarks: end-to-end HTTP round trips against a live
//! `remi-serve` instance on loopback, keep-alive, one request per
//! iteration.
//!
//! Three paths bound the serving cost model:
//!
//! * `healthz` — the floor: parse + route + respond, no KB work.
//! * `warm_describe` — a cache hit: the full production fast path.
//! * `warm_query` — a `POST /query` cache hit (2-pattern join): must
//!   stay within an order of magnitude of `warm_describe`.
//! * `cold_describe` — cache disabled: every request pays queue
//!   construction + mining.
//!
//! The one-shot smoke print compares warm and cold throughput on the same
//! workload — the ROADMAP's caching claim (warm ≥ 10× cold) made
//! measurable per commit via the `BENCH_*.json` trajectory.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_serve::client::Client;
use remi_serve::http::percent_encode;
use remi_serve::{serve, ServeConfig};

fn throughput(client: &mut Client, target: &str, requests: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..requests {
        let r = client.get(target).expect("request failed");
        assert_eq!(r.status, 200, "{}", r.body);
    }
    requests as f64 / t0.elapsed().as_secs_f64()
}

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let entity = synth.kb.node_key(synth.members("Person")[0]).to_string();
    let target = format!("/describe/{}", percent_encode(&entity));

    let mut warm_server =
        serve(synth.kb.clone(), ServeConfig::default()).expect("warm server boots");
    let mut warm_client = Client::connect(warm_server.addr()).expect("connect");
    let primed = warm_client.get(&target).expect("prime request");
    assert_eq!(primed.status, 200, "{}", primed.body);

    // A 2-pattern chain join over the fattest predicate, primed into the
    // same cache.
    let pred = synth
        .kb
        .pred_ids()
        .filter(|&p| !synth.kb.is_inverse(p))
        .max_by_key(|&p| synth.kb.index(p).num_facts())
        .map(|p| synth.kb.pred_iri(p).to_string())
        .expect("fixture has predicates");
    let query_payload = format!(
        "{{\"patterns\":[{{\"s\":\"?a\",\"p\":{p},\"o\":\"?b\"}},\
         {{\"s\":\"?b\",\"p\":{p},\"o\":\"?c\"}}]}}",
        p = remi_serve::json::escape(&pred)
    );
    let primed = warm_client
        .post("/query", &query_payload)
        .expect("prime query");
    assert_eq!(primed.status, 200, "{}", primed.body);

    let mut cold_server = serve(
        synth.kb.clone(),
        ServeConfig {
            cache_entries: 0, // every request mines
            ..ServeConfig::default()
        },
    )
    .expect("cold server boots");
    let mut cold_client = Client::connect(cold_server.addr()).expect("connect");
    assert_eq!(cold_client.get(&target).expect("cold request").status, 200);

    // One-shot smoke: same workload, warm vs cold throughput, plus warm
    // query vs warm describe (both cache hits — same order of magnitude).
    let warm_rps = throughput(&mut warm_client, &target, 200);
    let cold_rps = throughput(&mut cold_client, &target, 20);
    println!(
        "\nserve smoke ({entity}): warm {warm_rps:.0} req/s, cold {cold_rps:.0} req/s \
         ({:.1}x speedup from the response cache)",
        warm_rps / cold_rps
    );
    let t0 = Instant::now();
    let query_requests = 200;
    for _ in 0..query_requests {
        let r = warm_client
            .post("/query", &query_payload)
            .expect("warm query");
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let query_rps = query_requests as f64 / t0.elapsed().as_secs_f64();
    println!(
        "query smoke: warm query {query_rps:.0} req/s vs warm describe {warm_rps:.0} req/s \
         ({:.2}x)",
        query_rps / warm_rps
    );

    let mut group = c.benchmark_group("serve_http");
    group.bench_function("healthz", |b| {
        b.iter(|| warm_client.get("/healthz").expect("healthz").body.len())
    });
    group.bench_function("warm_describe", |b| {
        b.iter(|| warm_client.get(&target).expect("warm describe").body.len())
    });
    group.bench_function("warm_query", |b| {
        b.iter(|| {
            warm_client
                .post("/query", &query_payload)
                .expect("warm query")
                .body
                .len()
        })
    });
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("cold_describe", |b| {
        b.iter(|| cold_client.get(&target).expect("cold describe").body.len())
    });
    group.finish();

    warm_server.shutdown();
    cold_server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
