//! §3.2 — search-space growth across language-bias tiers, regenerated and
//! benchmarked (enumeration throughput per tier).

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_core::enumerate::{space_growth_counts, subgraph_expressions, EnumContext};
use remi_core::{EnumerationConfig, LanguageBias};
use remi_eval::experiments::space;

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;
    let result = space::run(
        synth,
        &["Person", "Settlement", "Organization"],
        20,
        500_000,
        42,
    );
    println!("\n{result}");

    let t = synth.members("Person")[0];
    let remi_cfg = EnumerationConfig::default();
    let std_cfg = EnumerationConfig {
        language: LanguageBias::Standard,
        ..Default::default()
    };
    let ctx = EnumContext::new(kb, &remi_cfg);

    let mut group = c.benchmark_group("space_growth");
    group.bench_function("enumerate_standard", |b| {
        b.iter(|| subgraph_expressions(kb, t, &std_cfg, &ctx))
    });
    group.bench_function("enumerate_remi_language", |b| {
        b.iter(|| subgraph_expressions(kb, t, &remi_cfg, &ctx))
    });
    group.bench_function("count_two_var_tier", |b| {
        b.iter(|| space_growth_counts(kb, t, &remi_cfg, &ctx, 100_000))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
