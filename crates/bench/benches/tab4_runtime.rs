//! Table 4 — the headline runtime comparison: AMIE+ vs REMI vs P-REMI on
//! both KB profiles and both language biases. The full table is printed
//! once; Criterion then times representative single-set minings.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use remi_amie::{mine_re, AmieConfig, AmieLanguage};
use remi_bench::{dbpedia, wikidata, DBPEDIA_CLASSES, WIKIDATA_CLASSES};
use remi_core::{LanguageBias, Remi, RemiConfig};
use remi_eval::experiments::table4;

fn bench(c: &mut Criterion) {
    let cfg = table4::Table4Config {
        n_sets: 30,
        timeout: Duration::from_millis(300),
        threads: 8,
        seed: 42,
        include_amie: true,
    };
    for (synth, classes) in [
        (dbpedia(), &DBPEDIA_CLASSES[..]),
        (wikidata(), &WIKIDATA_CLASSES[..]),
    ] {
        for language in [LanguageBias::Standard, LanguageBias::Remi] {
            let block = table4::run_block(synth, classes, language, &cfg);
            println!("\n{block}");
        }
    }

    // Per-system single-set timings on a fixed target.
    let synth = dbpedia();
    let kb = &synth.kb;
    let target = [synth.members("Settlement")[3]];
    let remi1 = Remi::new(kb, RemiConfig::default());
    let remi8 = Remi::new(kb, RemiConfig::default().with_threads(8));

    let mut group = c.benchmark_group("table4_single_set");
    group.sample_size(20);
    group.bench_function("remi_sequential", |b| b.iter(|| remi1.describe(&target)));
    group.bench_function("p_remi_8_threads", |b| b.iter(|| remi8.describe(&target)));
    group.bench_function("amie_standard", |b| {
        b.iter(|| {
            mine_re(
                kb,
                &target,
                AmieConfig {
                    language: AmieLanguage::Standard,
                    timeout: Some(Duration::from_millis(200)),
                    ..Default::default()
                },
                None,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
