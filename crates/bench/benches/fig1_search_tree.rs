//! Figure 1 — the DFS over conjunctions: pruning-by-depth and side
//! pruning exercised on a Rennes/Nantes-style workload, benchmarked for
//! the three search variants.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_core::eval::Evaluator;
use remi_core::search::{parallel_or_sequential, remi_search};
use remi_core::{Remi, RemiConfig};

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());
    // A pair of same-class prominent entities — the Figure 1 situation.
    let targets = [
        synth.members("Settlement")[0],
        synth.members("Settlement")[1],
    ];
    let (queue, _) = remi.ranked_common_expressions(&targets);
    println!(
        "\nfig1 workload: {} common subgraph expressions",
        queue.len()
    );

    let mut group = c.benchmark_group("fig1_search");
    group.bench_function("queue_construction", |b| {
        b.iter(|| remi.ranked_common_expressions(&targets))
    });
    group.bench_function("dfs_sequential", |b| {
        b.iter(|| {
            let eval = Evaluator::new(kb, 4096);
            remi_search(&eval, &queue, &targets, None, true)
        })
    });
    group.bench_function("dfs_parallel_8", |b| {
        b.iter(|| {
            let eval = Evaluator::new(kb, 4096);
            parallel_or_sequential(&eval, &queue, &targets, None, 8, true)
        })
    });
    group.finish();

    // Show the rebuilt queue head once, mirroring the figure.
    let model = remi.model();
    let _ = model;
    for (i, s) in queue.iter().take(3).enumerate() {
        println!(
            "  ρ{} ({:.1} bits): {}",
            i + 1,
            s.cost.value(),
            s.expr.display(kb)
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
