//! Executor comparison — the pooled work-stealing executor vs the seed's
//! spawn-per-call `std::thread::scope` baseline.
//!
//! Two angles:
//! * `premi_*`: P-REMI on the fig1 workload (small KB, short search) —
//!   the regime where per-call OS-thread spawning dominated.
//! * `broadcast_*`: raw 8-task fan-out with a trivial body — the pure
//!   coordination overhead of each executor.

use criterion::{criterion_group, criterion_main, Criterion};
use remi_bench::dbpedia;
use remi_core::eval::Evaluator;
use remi_core::parallel::parallel_remi_search_on;
use remi_core::{Remi, RemiConfig};
use remi_pool::{Executor, SpawnExecutor};

fn bench(c: &mut Criterion) {
    let synth = dbpedia();
    let kb = &synth.kb;
    let remi = Remi::new(kb, RemiConfig::default());
    let targets = [
        synth.members("Settlement")[0],
        synth.members("Settlement")[1],
    ];
    let (queue, _) = remi.ranked_common_expressions(&targets);
    println!("\npool_overhead workload: {} queue entries", queue.len());

    let pool = remi_pool::global();
    let mut group = c.benchmark_group("pool_overhead");

    group.bench_function("premi_pooled_8", |b| {
        b.iter(|| {
            let eval = Evaluator::new(kb, 4096);
            parallel_remi_search_on(pool, &eval, &queue, &targets, None, 8)
        })
    });
    group.bench_function("premi_spawn_8", |b| {
        b.iter(|| {
            let eval = Evaluator::new(kb, 4096);
            parallel_remi_search_on(&SpawnExecutor, &eval, &queue, &targets, None, 8)
        })
    });

    group.bench_function("broadcast_pooled_8", |b| {
        b.iter(|| {
            pool.broadcast(8, &|i| {
                criterion::black_box(i);
            })
        })
    });
    group.bench_function("broadcast_spawn_8", |b| {
        b.iter(|| {
            SpawnExecutor.broadcast(8, &|i| {
                criterion::black_box(i);
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
