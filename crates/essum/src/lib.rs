//! `remi-essum` — entity-summarization baselines and metrics for the
//! Table 3 evaluation (§4.1.4).
//!
//! The paper compares REMI's top-k subgraph expressions against FACES
//! (diversity-aware conceptual clustering) and LinkSUM (link-analysis
//! ranking) on a gold standard of expert summaries. Both baselines are
//! reimplemented here in their algorithmic essence:
//!
//! * [`faces_summary`] — facts are grouped into *facets* by clustering
//!   predicates on subject-set similarity; the summary picks the most
//!   prominent fact of each facet round-robin (diversity first).
//! * [`linksum_summary`] — facts are scored by the PageRank of their
//!   object with a backlink bonus, deduplicated per predicate
//!   (uniqueness), then ranked.
//! * [`remi_summary`] — REMI under the Table 3 protocol: the standard
//!   language bias, `rdf:type` and inverse predicates excluded, top-k
//!   single atoms by `Ĉ`.
//!
//! The [`quality`] module implements the overlap metrics of the FACES
//! evaluation: average overlap with the expert summaries at the
//! predicate–object (PO) and object (O) levels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use remi_core::complexity::CostModel;
use remi_core::expr::SubgraphExpr;
use remi_kb::fx::FxHashMap;
use remi_kb::pagerank::PageRank;
use remi_kb::{KnowledgeBase, NodeId, PredId};

/// A summary: predicate–object pairs describing one entity.
pub type Summary = Vec<(PredId, NodeId)>;

/// Collects the candidate facts of `entity` under the Table 3 protocol:
/// base predicates only, no `rdf:type`, no `rdfs:label`.
pub fn candidate_facts(kb: &KnowledgeBase, entity: NodeId) -> Vec<(PredId, NodeId)> {
    let mut out = Vec::new();
    for p in kb.preds_of_subject(entity) {
        let p = PredId(p);
        if kb.is_inverse(p) || Some(p) == kb.type_pred() || Some(p) == kb.label_pred() {
            continue;
        }
        for o in kb.objects(p, entity) {
            out.push((p, NodeId(o)));
        }
    }
    out
}

fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = remi_core::eval::intersect_sorted(a, b).len();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn find(c: &mut [usize], mut i: usize) -> usize {
    while c[i] != i {
        i = c[i];
    }
    i
}

/// Groups the predicates of the candidate facts into facets by
/// single-linkage clustering on subject-set Jaccard similarity — the
/// conceptual-clustering core of FACES.
fn facets(kb: &KnowledgeBase, preds: &[PredId], threshold: f64) -> Vec<Vec<PredId>> {
    let subjects: Vec<Vec<u32>> = preds
        .iter()
        .map(|&p| kb.index(p).iter_subjects().map(|(s, _)| s.0).collect())
        .collect();
    let mut cluster_of: Vec<usize> = (0..preds.len()).collect();
    for i in 0..preds.len() {
        for j in (i + 1)..preds.len() {
            if jaccard(&subjects[i], &subjects[j]) >= threshold {
                let (ri, rj) = (find(&mut cluster_of, i), find(&mut cluster_of, j));
                if ri != rj {
                    cluster_of[rj] = ri;
                }
            }
        }
    }
    let mut groups: FxHashMap<usize, Vec<PredId>> = FxHashMap::default();
    for (i, &p) in preds.iter().enumerate() {
        let root = find(&mut cluster_of, i);
        groups.entry(root).or_default().push(p);
    }
    let mut out: Vec<Vec<PredId>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort();
    out
}

/// A FACES-style summary: diversity across facets, prominence within.
pub fn faces_summary(kb: &KnowledgeBase, entity: NodeId, k: usize) -> Summary {
    let facts = candidate_facts(kb, entity);
    if facts.is_empty() {
        return Vec::new();
    }
    let mut preds: Vec<PredId> = facts.iter().map(|&(p, _)| p).collect();
    preds.sort_unstable();
    preds.dedup();
    let facets = facets(kb, &preds, 0.4);

    // Within each facet, order facts by object prominence (descending).
    let mut per_facet: Vec<Vec<(PredId, NodeId)>> = facets
        .iter()
        .map(|facet| {
            let mut fs: Vec<(PredId, NodeId)> = facts
                .iter()
                .filter(|(p, _)| facet.contains(p))
                .copied()
                .collect();
            fs.sort_by_key(|&(p, o)| (std::cmp::Reverse(kb.node_frequency(o)), p, o));
            fs
        })
        .collect();
    // Facet order: most prominent leading fact first (deterministic).
    per_facet.sort_by_key(|fs| {
        fs.first()
            .map(|&(p, o)| (std::cmp::Reverse(kb.node_frequency(o)), p, o))
            .unwrap_or((std::cmp::Reverse(0), PredId(u32::MAX), NodeId(u32::MAX)))
    });

    // Round-robin across facets (diversity), then refill deeper.
    let mut out = Vec::with_capacity(k);
    let mut depth = 0usize;
    while out.len() < k {
        let mut advanced = false;
        for facet in &per_facet {
            if let Some(&fact) = facet.get(depth) {
                out.push(fact);
                advanced = true;
                if out.len() == k {
                    break;
                }
            }
        }
        if !advanced {
            break;
        }
        depth += 1;
    }
    out
}

/// A LinkSUM-style summary: PageRank of the object plus a backlink bonus,
/// at most one object per predicate (uniqueness), top-k.
pub fn linksum_summary(kb: &KnowledgeBase, pr: &PageRank, entity: NodeId, k: usize) -> Summary {
    let facts = candidate_facts(kb, entity);
    // Score: object PageRank, doubled if the object links back to the
    // entity through any base predicate (the "backlink" feature).
    let mut scored: Vec<((PredId, NodeId), f64)> = facts
        .into_iter()
        .map(|(p, o)| {
            let mut score = pr.score(o);
            let backlink = kb.preds_of_subject(o).iter().any(|q| {
                let q = PredId(q);
                !kb.is_inverse(q) && kb.contains(o, q, entity)
            });
            if backlink {
                score *= 2.0;
            }
            ((p, o), score)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("scores are finite")
            .then(a.0.cmp(&b.0))
    });
    // Per-predicate dedup: keep the best-scored object of each predicate
    // first; refill with the remainder if k is not reached.
    let mut out: Summary = Vec::with_capacity(k);
    let mut used_preds: remi_kb::fx::FxHashSet<PredId> = Default::default();
    for &((p, o), _) in &scored {
        if out.len() == k {
            break;
        }
        if used_preds.insert(p) {
            out.push((p, o));
        }
    }
    for &((p, o), _) in &scored {
        if out.len() == k {
            break;
        }
        if !out.contains(&(p, o)) {
            out.push((p, o));
        }
    }
    out
}

/// REMI as a summariser (the Table 3 protocol): rank the entity's single
/// atoms by `Ĉ` ascending and take the top k.
pub fn remi_summary(
    kb: &KnowledgeBase,
    model: &CostModel<'_>,
    entity: NodeId,
    k: usize,
) -> Summary {
    let facts = candidate_facts(kb, entity);
    let mut scored: Vec<((PredId, NodeId), remi_core::Bits)> = facts
        .into_iter()
        .map(|(p, o)| {
            let cost = model.subgraph_cost(&SubgraphExpr::Atom { p, o });
            ((p, o), cost)
        })
        .collect();
    scored.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.into_iter().take(k).map(|(f, _)| f).collect()
}

/// Overlap metrics of the FACES evaluation.
pub mod quality {
    use super::Summary;

    /// Overlap at the predicate–object level: |S ∩ G|.
    pub fn overlap_po(summary: &Summary, gold: &Summary) -> usize {
        summary.iter().filter(|f| gold.contains(f)).count()
    }

    /// Overlap at the object level: |objects(S) ∩ objects(G)|.
    pub fn overlap_o(summary: &Summary, gold: &Summary) -> usize {
        let gold_objs: Vec<_> = gold.iter().map(|&(_, o)| o).collect();
        let mut seen = Vec::new();
        summary
            .iter()
            .filter(|&&(_, o)| {
                if gold_objs.contains(&o) && !seen.contains(&o) {
                    seen.push(o);
                    true
                } else {
                    false
                }
            })
            .count()
    }

    /// The FACES quality of one summary against one entity's expert
    /// summaries: the average overlap across experts.
    pub fn quality(summary: &Summary, experts: &[Summary], po_level: bool) -> f64 {
        if experts.is_empty() {
            return 0.0;
        }
        let total: usize = experts
            .iter()
            .map(|g| {
                if po_level {
                    overlap_po(summary, g)
                } else {
                    overlap_o(summary, g)
                }
            })
            .sum();
        total as f64 / experts.len() as f64
    }

    /// Mean and (population) standard deviation helper.
    pub fn mean_std(values: &[f64]) -> (f64, f64) {
        if values.is_empty() {
            return (0.0, 0.0);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remi_core::complexity::{EntityCodeMode, Prominence};
    use remi_kb::pagerank::{pagerank, PageRankConfig};
    use remi_kb::KbBuilder;

    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        // A "company" with several facts of varying prominence.
        b.add_iri("e:Acme", "p:hq", "e:Paris");
        b.add_iri("e:Acme", "p:industry", "e:Software");
        b.add_iri("e:Acme", "p:ceo", "e:Alice");
        b.add_iri("e:Acme", "p:founded", "e:Bob");
        b.add_iri("e:Acme", remi_kb::store::RDF_TYPE, "e:Company");
        // Prominence: Paris is a hub.
        for i in 0..10 {
            b.add_iri(&format!("e:x{i}"), "p:hq", "e:Paris");
            b.add_iri(&format!("e:x{i}"), "p:industry", "e:Software");
        }
        // Alice links back to Acme.
        b.add_iri("e:Alice", "p:worksFor", "e:Acme");
        b.build().unwrap()
    }

    #[test]
    fn candidate_facts_exclude_type() {
        let kb = kb();
        let acme = kb.node_id_by_iri("e:Acme").unwrap();
        let facts = candidate_facts(&kb, acme);
        assert_eq!(facts.len(), 4);
        let tp = kb.type_pred().unwrap();
        assert!(facts.iter().all(|&(p, _)| p != tp));
    }

    #[test]
    fn faces_summary_is_diverse() {
        let kb = kb();
        let acme = kb.node_id_by_iri("e:Acme").unwrap();
        let s = faces_summary(&kb, acme, 3);
        assert_eq!(s.len(), 3);
        let preds: std::collections::HashSet<_> = s.iter().map(|&(p, _)| p).collect();
        assert!(preds.len() >= 2, "diversity requires multiple facets");
    }

    #[test]
    fn faces_handles_k_larger_than_facts() {
        let kb = kb();
        let acme = kb.node_id_by_iri("e:Acme").unwrap();
        let s = faces_summary(&kb, acme, 50);
        assert_eq!(s.len(), 4); // all available facts, no panic
    }

    #[test]
    fn faces_empty_entity() {
        let kb = kb();
        // An entity that only appears as an object has no facts to report.
        let bob = kb.node_id_by_iri("e:Bob").unwrap();
        assert!(faces_summary(&kb, bob, 5).is_empty());
    }

    #[test]
    fn linksum_prefers_backlinked_and_prominent_objects() {
        let kb = kb();
        let pr = pagerank(&kb, PageRankConfig::default());
        let acme = kb.node_id_by_iri("e:Acme").unwrap();
        let s = linksum_summary(&kb, &pr, acme, 4);
        assert_eq!(s.len(), 4);
        let objs: Vec<_> = s.iter().map(|&(_, o)| o).collect();
        let paris = kb.node_id_by_iri("e:Paris").unwrap();
        let alice = kb.node_id_by_iri("e:Alice").unwrap();
        let bob = kb.node_id_by_iri("e:Bob").unwrap();
        // Paris (hub) leads; Alice (backlink bonus) outranks Bob (neither
        // prominent nor backlinked).
        assert_eq!(objs[0], paris);
        let pos = |n| objs.iter().position(|&x| x == n).unwrap();
        assert!(pos(alice) < pos(bob));
    }

    #[test]
    fn linksum_dedups_predicates_first() {
        let mut b = KbBuilder::new();
        b.add_iri("e:e", "p:likes", "e:a");
        b.add_iri("e:e", "p:likes", "e:b");
        b.add_iri("e:e", "p:knows", "e:c");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let e = kb.node_id_by_iri("e:e").unwrap();
        let s = linksum_summary(&kb, &pr, e, 2);
        let preds: std::collections::HashSet<_> = s.iter().map(|&(p, _)| p).collect();
        assert_eq!(preds.len(), 2, "one object per predicate before refill");
        // With k=3 the refill kicks in.
        let s3 = linksum_summary(&kb, &pr, e, 3);
        assert_eq!(s3.len(), 3);
    }

    #[test]
    fn remi_summary_ranks_by_complexity() {
        let kb = kb();
        let model = CostModel::new(&kb, Prominence::Frequency, EntityCodeMode::ExactRank);
        let acme = kb.node_id_by_iri("e:Acme").unwrap();
        let s = remi_summary(&kb, &model, acme, 4);
        assert_eq!(s.len(), 4);
        // Costs must be non-decreasing along the summary.
        let costs: Vec<_> = s
            .iter()
            .map(|&(p, o)| model.subgraph_cost(&SubgraphExpr::Atom { p, o }))
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn overlap_metrics() {
        use quality::*;
        let a = vec![(PredId(0), NodeId(1)), (PredId(1), NodeId(2))];
        let g1 = vec![(PredId(0), NodeId(1)), (PredId(2), NodeId(3))];
        let g2 = vec![(PredId(3), NodeId(2))];
        assert_eq!(overlap_po(&a, &g1), 1);
        assert_eq!(overlap_po(&a, &g2), 0);
        assert_eq!(overlap_o(&a, &g1), 1);
        assert_eq!(overlap_o(&a, &g2), 1); // object 2 matches despite pred
        let q_po = quality(&a, &[g1.clone(), g2.clone()], true);
        assert!((q_po - 0.5).abs() < 1e-12);
        let q_o = quality(&a, &[g1, g2], false);
        assert!((q_o - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = quality::mean_std(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(quality::mean_std(&[]), (0.0, 0.0));
    }
}
