//! Properties the histogram substrate promises the rest of the workspace:
//!
//! 1. Recording is order-independent, and splitting a stream of
//!    observations across shards then merging reaches the same state as
//!    recording serially — the precondition for per-thread or per-class
//!    histograms being folded into one report.
//! 2. Quantile estimates are bounded by the bucket edges of the bucket
//!    that truly contains the quantile: never below its lower edge, never
//!    above its upper edge (and never above the true max).

use proptest::prelude::*;
use remi_obs::{bucket_index, bucket_lower_edge, bucket_upper_edge, Histogram};

fn snapshot_of(values: &[u64]) -> remi_obs::HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation of the same observations yields the same snapshot.
    #[test]
    fn record_is_order_independent(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        rot in 0usize..200,
    ) {
        let mut rotated = values.clone();
        rotated.rotate_left(rot % values.len());
        prop_assert_eq!(snapshot_of(&values), snapshot_of(&rotated));
    }

    /// Sharding a stream across histograms and merging (in either order)
    /// equals recording everything into one histogram.
    #[test]
    fn merge_is_order_independent(
        values in proptest::collection::vec(0u64..1_000_000_000, 2..200),
        split in 1usize..199,
    ) {
        let cut = split.min(values.len() - 1);
        let (left, right) = values.split_at(cut);
        let serial = snapshot_of(&values);

        let a = Histogram::new();
        let b = Histogram::new();
        for &v in left { a.record(v); }
        for &v in right { b.record(v); }

        let ab = Histogram::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        prop_assert_eq!(ab.snapshot(), serial.clone());

        let ba = Histogram::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        prop_assert_eq!(ba.snapshot(), serial);
    }

    /// The quantile estimate lands inside the bucket holding the true
    /// quantile, and never exceeds the true maximum.
    #[test]
    fn quantile_estimates_are_bounded_by_bucket_edges(
        values in proptest::collection::vec(0u64..u64::MAX, 1..300),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&values);
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let bucket = bucket_index(truth);

        let estimate = snap.quantile(q);
        prop_assert!(
            estimate >= bucket_lower_edge(bucket),
            "estimate {estimate} below bucket {bucket} lower edge for true quantile {truth}"
        );
        prop_assert!(
            estimate <= bucket_upper_edge(bucket),
            "estimate {estimate} above bucket {bucket} upper edge for true quantile {truth}"
        );
        prop_assert!(estimate <= *values.last().unwrap());
    }
}
