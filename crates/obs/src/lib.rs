//! Lock-free observability substrate for the REMI workspace.
//!
//! Three small pieces, designed to sit underneath every other crate:
//!
//! * **Instruments** ([`Counter`], [`Gauge`], [`Histogram`]) — plain structs
//!   of relaxed atomics. A [`Histogram`] is a fixed array of 64 log2 buckets
//!   plus exact count/sum and a true max, so recording is a handful of
//!   relaxed RMWs (no locks, no allocation) and two histograms merge by
//!   bucket-wise addition in any order.
//! * **[`Registry`]** — a name → instrument table that renders the
//!   Prometheus text exposition format. Instruments are either created
//!   through the registry or created standalone (e.g. inside `remi-pool`,
//!   which depends on nothing else) and registered later; both end up as
//!   `Arc`s, so the hot path never touches the registry lock.
//! * **[`Span`]** + **[`Clock`]** — a request span reads an injected
//!   monotonic clock ([`MonoClock`] in production, [`FakeClock`] in tests)
//!   and splits elapsed time into named child phases, so a describe request
//!   decomposes into parse / admission / cache / mine / write.
//! * **[`Recorder`]** — the flight recorder: a bounded lock-free ring of
//!   structured events (static names, typed fields, severity, channel)
//!   that subsystems emit into allocation-free; `/v1/debug/events` and
//!   the slow-request/500 log tails read it back.
//!
//! Everything is nanosecond-denominated `u64`. The crate has no
//! dependencies beyond the vendored `parking_lot` shim (registry interior
//! mutability only) and is safe code throughout.

#![forbid(unsafe_code)]

mod clock;
mod events;
mod metrics;
mod registry;
mod span;

pub use clock::{Clock, FakeClock, MonoClock};
pub use events::{
    Channel, EventId, EventRecord, EventSpec, FieldKind, FieldSpec, FieldValue, Recorder, Severity,
    MAX_EVENT_FIELDS,
};
pub use metrics::{
    bucket_index, bucket_lower_edge, bucket_upper_edge, Counter, Gauge, Histogram,
    HistogramSnapshot, BUCKETS,
};
pub use registry::{series, PromText, Registry};
pub use span::{Span, SpanReport};
