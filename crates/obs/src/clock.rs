//! Injectable monotonic clocks.
//!
//! Instrumented code never calls `Instant::now()` directly — it reads an
//! injected [`Clock`], which keeps timing testable ([`FakeClock`]) and keeps
//! the `wallclock-in-mining` lint invariant meaningful: this module is the
//! one blessed home for the raw wall-clock read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. The epoch is the clock's own anchor
/// (construction time for [`MonoClock`]), so readings are only comparable
/// against the same clock instance.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's anchor.
    fn now_ns(&self) -> u64;
}

/// The production clock: `Instant`-backed, anchored at construction, so
/// `now_ns()` doubles as process/server uptime.
#[derive(Debug, Clone, Copy)]
pub struct MonoClock {
    anchor: Instant,
}

impl MonoClock {
    pub fn new() -> Self {
        MonoClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock::new()
    }
}

impl Clock for MonoClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a u64 of nanoseconds covers ~584 years
        // of uptime, so the cast is a formality.
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: starts at an arbitrary reading and only
/// moves when told to. Shared freely across threads.
#[derive(Debug, Default)]
pub struct FakeClock {
    now: AtomicU64,
}

impl FakeClock {
    pub fn new(start_ns: u64) -> Self {
        FakeClock {
            now: AtomicU64::new(start_ns),
        }
    }

    /// Advance the reading by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Advance the reading by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance(ms.saturating_mul(1_000_000));
    }

    /// Jump the reading to an absolute value.
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_clock_is_monotonic() {
        let c = MonoClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_moves_only_when_told() {
        let c = FakeClock::new(5);
        assert_eq!(c.now_ns(), 5);
        assert_eq!(c.now_ns(), 5);
        c.advance(10);
        assert_eq!(c.now_ns(), 15);
        c.advance_ms(2);
        assert_eq!(c.now_ns(), 2_000_015);
        c.set(1);
        assert_eq!(c.now_ns(), 1);
    }
}
