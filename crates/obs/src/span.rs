//! Request spans: one clock read at the start, one per phase boundary, and
//! the whole thing folds into histograms at the end.

use crate::clock::Clock;
use crate::metrics::Histogram;

/// An in-flight timed operation. `phase(name)` closes the segment since the
/// previous boundary under `name`; `finish()` yields the total and the
/// per-phase durations.
///
/// Starting and finishing a span with no phases performs two clock reads
/// and no allocation, so wrapping every HTTP request is in the tens of
/// nanoseconds (see the `obs_overhead` bench).
pub struct Span<'c> {
    clock: &'c dyn Clock,
    start: u64,
    last: u64,
    phases: Vec<(&'static str, u64)>,
}

impl<'c> Span<'c> {
    pub fn start(clock: &'c dyn Clock) -> Self {
        let now = clock.now_ns();
        Span {
            clock,
            start: now,
            last: now,
            phases: Vec::new(),
        }
    }

    /// Close the segment since the last boundary under `name`.
    pub fn phase(&mut self, name: &'static str) {
        let now = self.clock.now_ns();
        self.phases.push((name, now.saturating_sub(self.last)));
        self.last = now;
    }

    /// Total nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start)
    }

    /// Phases closed so far.
    pub fn phases(&self) -> &[(&'static str, u64)] {
        &self.phases
    }

    /// Seal the span.
    pub fn finish(self) -> SpanReport {
        let total_ns = self.clock.now_ns().saturating_sub(self.start);
        SpanReport {
            total_ns,
            phases: self.phases,
        }
    }

    /// Seal the span and record the total into `h`.
    pub fn finish_into(self, h: &Histogram) -> SpanReport {
        let report = self.finish();
        h.record(report.total_ns);
        report
    }
}

/// The sealed result of a [`Span`].
#[derive(Debug, Clone)]
pub struct SpanReport {
    pub total_ns: u64,
    pub phases: Vec<(&'static str, u64)>,
}

impl SpanReport {
    /// Duration of one named phase, if it was recorded.
    pub fn phase_ns(&self, name: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ns)| *ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn span_decomposes_into_phases() {
        let clock = FakeClock::new(1_000);
        let mut span = Span::start(&clock);
        clock.advance(30);
        span.phase("parse");
        clock.advance(200);
        span.phase("mine");
        clock.advance(5);
        let report = span.finish();
        assert_eq!(report.total_ns, 235);
        assert_eq!(report.phase_ns("parse"), Some(30));
        assert_eq!(report.phase_ns("mine"), Some(200));
        assert_eq!(report.phase_ns("write"), None);
        assert_eq!(report.phases.len(), 2);
    }

    #[test]
    fn finish_into_records_the_total() {
        let clock = FakeClock::new(0);
        let h = Histogram::new();
        let span = Span::start(&clock);
        clock.advance(100);
        let report = span.finish_into(&h);
        assert_eq!(report.total_ns, 100);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum(), 100);
    }

    #[test]
    fn elapsed_tracks_without_sealing() {
        let clock = FakeClock::new(0);
        let mut span = Span::start(&clock);
        clock.advance(40);
        assert_eq!(span.elapsed_ns(), 40);
        span.phase("a");
        assert_eq!(span.phases(), &[("a", 40)]);
        clock.advance(2);
        assert_eq!(span.elapsed_ns(), 42);
    }

    #[test]
    fn a_stalled_fake_clock_yields_zero_durations() {
        let clock = FakeClock::new(7);
        let mut span = Span::start(&clock);
        span.phase("noop");
        let report = span.finish();
        assert_eq!(report.total_ns, 0);
        assert_eq!(report.phase_ns("noop"), Some(0));
    }
}
