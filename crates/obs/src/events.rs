//! The flight recorder: a bounded, lock-free ring of structured events.
//!
//! Aggregate instruments ([`crate::Counter`], [`crate::Histogram`]) answer
//! "how much"; the recorder answers "what happened just now" — the last N
//! planner decisions, compactions, pool anomalies, and 500s, each as a
//! structured event with a static name, a channel, a severity, and up to
//! [`MAX_EVENT_FIELDS`] typed fields.
//!
//! The shape is registration + ring:
//!
//! * **Registration** ([`Recorder::define`]) interns an [`EventSpec`] —
//!   static name, channel, severity, field vocabulary — and returns a
//!   dense [`EventId`]. Registration takes the one lock in the module and
//!   happens at boot; the spec table is append-only, so an id stays valid
//!   for the recorder's lifetime and re-defining the same name (a forked
//!   KB re-attaching, a test re-booting a server) returns the same id.
//! * **Recording** ([`Recorder::emit`]) is allocation-free and O(1): one
//!   relaxed `fetch_add` claims a sequence number, and the payload — spec
//!   id, caller-supplied timestamp, field values — lands in the slot's
//!   atomics with a seqlock-style validity protocol. No lock, no branch on
//!   capacity: the ring wraps and old events are simply overwritten.
//! * **Reading** ([`Recorder::events_since`], [`Recorder::tail`]) walks
//!   the slots, double-checking each slot's sequence word around the
//!   payload read and discarding slots that a writer touched in between.
//!   A reader never blocks a writer.
//!
//! Timestamps are caller-supplied nanoseconds from an injected
//! [`crate::Clock`], so `FakeClock` tests reach every path and the module
//! itself never reads a wall clock.
//!
//! ## Torn reads, honestly
//!
//! Every cell is an `AtomicU64`, so a race can at worst garble one
//! diagnostic record, never corrupt memory. The double-check catches any
//! overwrite that happens while a reader is mid-slot; the one theoretical
//! escape is a writer lapping the *entire* ring (capacity-many events)
//! between a reader's two sequence loads, which would require the reader
//! to be descheduled for the length of a full ring rotation. Such a
//! record decodes as a well-formed event with stale fields — acceptable
//! for a flight recorder, and the reason this stays safe code.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Hard cap on the number of typed fields one event may carry.
pub const MAX_EVENT_FIELDS: usize = 4;

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Per-step detail (e.g. one planner pattern's est-vs-actual).
    Debug,
    /// Normal lifecycle (plans, publishes, compactions).
    Info,
    /// Anomalies worth a look (storms, stalls, cancellations).
    Warn,
    /// Request-visible failures (500s).
    Error,
}

impl Severity {
    /// The lowercase wire name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a wire name back to a severity.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// The emitting subsystem. One recorder serves the whole process; the
/// channel is the coarse filter (`/v1/debug/events?channel=…`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// BGP planner / evaluator events.
    Query,
    /// KB lifecycle: epoch publishes, compactions.
    Kb,
    /// Executor anomalies: park/revive storms, help-drain stalls.
    Pool,
    /// Serve-layer events: 500s.
    Http,
}

impl Channel {
    /// The lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Channel::Query => "query",
            Channel::Kb => "kb",
            Channel::Pool => "pool",
            Channel::Http => "http",
        }
    }

    /// Parses a wire name back to a channel.
    pub fn parse(s: &str) -> Option<Channel> {
        match s {
            "query" => Some(Channel::Query),
            "kb" => Some(Channel::Kb),
            "pool" => Some(Channel::Pool),
            "http" => Some(Channel::Http),
            _ => None,
        }
    }
}

/// How one field's raw `u64` decodes.
#[derive(Debug, Clone, Copy)]
pub enum FieldKind {
    /// A plain unsigned integer (count, duration, epoch…).
    U64,
    /// `0` = false, anything else = true.
    Bool,
    /// An index into a static vocabulary — the allocation-free way to put
    /// a string-valued field (`path="merge"`) on the hot path.
    Enum(&'static [&'static str]),
}

/// One typed field of an event spec.
#[derive(Debug, Clone, Copy)]
pub struct FieldSpec {
    /// The field's key — a static literal, like the event name.
    pub key: &'static str,
    /// How the recorded `u64` decodes.
    pub kind: FieldKind,
}

/// The static description of one event kind. Names must be `'static`
/// literals — the `dynamic-event-name` lint rule rejects anything built
/// at runtime, which keeps [`Recorder::emit`] allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct EventSpec {
    /// Static event name (`"query_plan"`, `"kb_compact"`, …).
    pub name: &'static str,
    /// The emitting subsystem.
    pub channel: Channel,
    /// Severity, fixed per event kind.
    pub severity: Severity,
    /// Field vocabulary, at most [`MAX_EVENT_FIELDS`] entries.
    pub fields: &'static [FieldSpec],
}

/// A dense handle returned by [`Recorder::define`]; the only thing the
/// hot path carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(u16);

/// One decoded field value of an [`EventRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldValue {
    /// A plain integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
    /// An enum field decoded through its static vocabulary.
    Str(&'static str),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One event read back out of the ring.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Global sequence number (0-based, dense across the recorder).
    pub seq: u64,
    /// Caller-supplied timestamp, nanoseconds on the emitting clock.
    pub ts_ns: u64,
    /// The spec's static name.
    pub name: &'static str,
    /// The spec's channel.
    pub channel: Channel,
    /// The spec's severity.
    pub severity: Severity,
    /// Decoded `(key, value)` pairs, in spec order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl std::fmt::Display for EventRecord {
    /// The one-line log form used by the slow-request and 500 tail dumps:
    /// `seq=12 ts_us=3450 query/info query_plan patterns=2 path=merge`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seq={} ts_us={} {}/{} {}",
            self.seq,
            self.ts_ns / 1_000,
            self.channel.name(),
            self.severity.name(),
            self.name
        )?;
        for (key, value) in &self.fields {
            write!(f, " {key}={value}")?;
        }
        Ok(())
    }
}

/// One ring slot: a seqlock word plus an all-atomic payload.
///
/// `seq` holds `record_seq + 1` when the slot is valid and `0` while a
/// writer is mid-flight (sequence numbers are claimed from 0 up, so the
/// +1 keeps 0 free as the "empty/being-written" sentinel).
struct Slot {
    seq: AtomicU64,
    spec: AtomicU64,
    ts_ns: AtomicU64,
    vals: [AtomicU64; MAX_EVENT_FIELDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            spec: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The flight recorder. One per server (plus one per test); every
/// subsystem holds the same `Arc` and emits into the same ring.
pub struct Recorder {
    /// Append-only spec table; locked only by `define` and by readers
    /// resolving ids back to specs — never by `emit`.
    specs: Mutex<Vec<EventSpec>>,
    /// Next sequence number to claim (== total events ever emitted).
    head: AtomicU64,
    slots: Box<[Slot]>,
    /// `slots.len() - 1`; the length is a power of two.
    mask: u64,
}

impl Recorder {
    /// A recorder holding the most recent `capacity` events (rounded up
    /// to a power of two, minimum 8).
    pub fn new(capacity: usize) -> Recorder {
        let cap = capacity.max(8).next_power_of_two();
        Recorder {
            specs: Mutex::new(Vec::new()),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
        }
    }

    /// A recorder behind an `Arc`, the shape every subsystem attaches.
    pub fn shared(capacity: usize) -> Arc<Recorder> {
        Arc::new(Recorder::new(capacity))
    }

    /// Interns `spec`, returning its id. Idempotent by name: defining the
    /// same name twice (forked KBs, re-attached subsystems) returns the
    /// first registration's id. Boot-time only — takes the spec lock.
    ///
    /// # Panics
    ///
    /// If the spec carries more than [`MAX_EVENT_FIELDS`] fields or the
    /// table would exceed `u16::MAX` specs — both boot-time programming
    /// errors, not runtime conditions.
    pub fn define(&self, spec: EventSpec) -> EventId {
        assert!(
            spec.fields.len() <= MAX_EVENT_FIELDS,
            "event {:?} declares {} fields (max {MAX_EVENT_FIELDS})",
            spec.name,
            spec.fields.len()
        );
        let mut specs = self.specs.lock();
        if let Some(i) = specs.iter().position(|s| s.name == spec.name) {
            return EventId(i as u16);
        }
        assert!(specs.len() < u16::MAX as usize, "event spec table overflow");
        specs.push(spec);
        EventId((specs.len() - 1) as u16)
    }

    /// Records one event: claims the next sequence number and writes the
    /// payload into its ring slot. Allocation-free, O(1), no locks — one
    /// relaxed `fetch_add` plus a bounded handful of atomic stores.
    /// Unused field cells are zeroed so a reader never decodes a stale
    /// value left by the slot's previous occupant.
    #[inline]
    pub fn emit(&self, id: EventId, ts_ns: u64, vals: &[u64]) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Invalidate, write payload, validate: a reader that overlaps any
        // of this sees either the 0 sentinel or a changed sequence word
        // and discards the slot.
        slot.seq.store(0, Ordering::Release);
        slot.spec.store(id.0 as u64, Ordering::Relaxed);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        for (i, cell) in slot.vals.iter().enumerate() {
            cell.store(vals.get(i).copied().unwrap_or(0), Ordering::Relaxed);
        }
        slot.seq.store(seq + 1, Ordering::Release);
    }

    /// Total events ever emitted (== the next sequence number). Readers
    /// use this as the `since` cursor for incremental polls.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The ring capacity: the maximum number of events any read returns.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Every currently-readable event with `seq >= since`, ascending by
    /// sequence number. At most [`Recorder::capacity`] records — the ring
    /// bound, not the event-count history, is the memory bound.
    pub fn events_since(&self, since: u64) -> Vec<EventRecord> {
        let specs: Vec<EventSpec> = self.specs.lock().clone();
        let mut out = Vec::with_capacity(self.slots.len().min(64));
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 {
                continue; // empty or mid-write
            }
            let spec_idx = slot.spec.load(Ordering::Relaxed);
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            let mut raw = [0u64; MAX_EVENT_FIELDS];
            for (cell, out) in slot.vals.iter().zip(raw.iter_mut()) {
                *out = cell.load(Ordering::Relaxed);
            }
            // Seqlock read fence: the payload loads above must settle
            // before the re-check below observes a concurrent writer.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq1 {
                continue; // a writer overlapped the read; discard
            }
            let seq = seq1 - 1;
            if seq < since {
                continue;
            }
            let Some(spec) = specs.get(spec_idx as usize) else {
                continue; // torn slot from before this spec existed
            };
            let fields = spec
                .fields
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let v = raw[i];
                    let value = match f.kind {
                        FieldKind::U64 => FieldValue::U64(v),
                        FieldKind::Bool => FieldValue::Bool(v != 0),
                        FieldKind::Enum(vocab) => match vocab.get(v as usize) {
                            Some(s) => FieldValue::Str(s),
                            None => FieldValue::U64(v),
                        },
                    };
                    (f.key, value)
                })
                .collect();
            out.push(EventRecord {
                seq,
                ts_ns,
                name: spec.name,
                channel: spec.channel,
                severity: spec.severity,
                fields,
            });
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The most recent `n` events, ascending by sequence number — the
    /// slow-log / 500 tail dump.
    pub fn tail(&self, n: usize) -> Vec<EventRecord> {
        let mut all = self.events_since(0);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, FakeClock};

    const PATH: &[&str] = &["nested", "merge"];

    const PLAN: EventSpec = EventSpec {
        name: "query_plan",
        channel: Channel::Query,
        severity: Severity::Info,
        fields: &[
            FieldSpec {
                key: "patterns",
                kind: FieldKind::U64,
            },
            FieldSpec {
                key: "truncated",
                kind: FieldKind::Bool,
            },
            FieldSpec {
                key: "path",
                kind: FieldKind::Enum(PATH),
            },
        ],
    };

    const STALL: EventSpec = EventSpec {
        name: "pool_help_drain_stall",
        channel: Channel::Pool,
        severity: Severity::Warn,
        fields: &[FieldSpec {
            key: "waited_us",
            kind: FieldKind::U64,
        }],
    };

    #[test]
    fn define_is_idempotent_by_name() {
        let r = Recorder::new(16);
        let a = r.define(PLAN);
        let b = r.define(PLAN);
        assert_eq!(a, b);
        assert_ne!(r.define(STALL), a);
    }

    #[test]
    fn emitted_events_decode_with_typed_fields() {
        let clock = FakeClock::new(1_000);
        let r = Recorder::new(16);
        let plan = r.define(PLAN);
        r.emit(plan, clock.now_ns(), &[2, 0, 1]);
        clock.advance(500);
        r.emit(plan, clock.now_ns(), &[3, 1, 0]);

        let events = r.events_since(0);
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.seq, 0);
        assert_eq!(first.ts_ns, 1_000);
        assert_eq!(first.name, "query_plan");
        assert_eq!(first.channel, Channel::Query);
        assert_eq!(first.severity, Severity::Info);
        assert_eq!(
            first.fields,
            vec![
                ("patterns", FieldValue::U64(2)),
                ("truncated", FieldValue::Bool(false)),
                ("path", FieldValue::Str("merge")),
            ]
        );
        let second = &events[1];
        assert_eq!(second.seq, 1);
        assert_eq!(second.ts_ns, 1_500);
        assert_eq!(second.fields[2].1, FieldValue::Str("nested"));
    }

    #[test]
    fn missing_and_excess_values_are_zero_filled_or_dropped() {
        let r = Recorder::new(8);
        let plan = r.define(PLAN);
        // Fewer values than fields: the rest decode as zero.
        r.emit(plan, 7, &[9]);
        let e = &r.events_since(0)[0];
        assert_eq!(e.fields[0].1, FieldValue::U64(9));
        assert_eq!(e.fields[1].1, FieldValue::Bool(false));
        assert_eq!(e.fields[2].1, FieldValue::Str("nested"));
        // An enum value past the vocabulary decodes as the raw integer
        // rather than panicking.
        r.emit(plan, 8, &[1, 1, 99]);
        let e = r.events_since(0).last().unwrap().clone();
        assert_eq!(e.fields[2].1, FieldValue::U64(99));
    }

    #[test]
    fn ring_wraps_and_bounds_reads_to_capacity() {
        let r = Recorder::new(8);
        let stall = r.define(STALL);
        for i in 0..100u64 {
            r.emit(stall, i, &[i]);
        }
        assert_eq!(r.head(), 100);
        assert_eq!(r.capacity(), 8);
        let events = r.events_since(0);
        assert_eq!(events.len(), 8);
        // Exactly the last `capacity` events, in order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (92..100).collect::<Vec<_>>());
        for e in &events {
            assert_eq!(e.ts_ns, e.seq);
            assert_eq!(e.fields[0].1, FieldValue::U64(e.seq));
        }
    }

    #[test]
    fn since_and_tail_cursors() {
        let r = Recorder::new(16);
        let stall = r.define(STALL);
        for i in 0..10u64 {
            r.emit(stall, i, &[i]);
        }
        assert_eq!(r.events_since(7).len(), 3);
        assert_eq!(r.events_since(10).len(), 0);
        let tail = r.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 8);
        assert_eq!(tail[1].seq, 9);
        assert!(r.tail(0).is_empty());
    }

    #[test]
    fn display_renders_one_log_line() {
        let r = Recorder::new(8);
        let plan = r.define(PLAN);
        r.emit(plan, 2_500, &[2, 1, 1]);
        let e = &r.events_since(0)[0];
        assert_eq!(
            e.to_string(),
            "seq=0 ts_us=2 query/info query_plan patterns=2 truncated=true path=merge"
        );
    }

    #[test]
    fn concurrent_emitters_never_produce_out_of_range_records() {
        let r = Arc::new(Recorder::new(64));
        let stall = r.define(STALL);
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        r.emit(stall, t * 10_000 + i, &[i]);
                    }
                });
            }
            for _ in 0..50 {
                let events = r.events_since(0);
                assert!(events.len() <= r.capacity());
                for w in events.windows(2) {
                    assert!(w[0].seq < w[1].seq);
                }
            }
        });
        assert_eq!(r.head(), 4_000);
        assert_eq!(r.events_since(0).len(), 64);
    }
}
