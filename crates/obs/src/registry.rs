//! The name → instrument table and the Prometheus text renderer.
//!
//! Series names carry their labels inline, exactly as they render:
//! `remi_http_request_duration_ns{route="describe",status="200"}`. The
//! registry lock is only taken at instrument creation/registration and at
//! render time — hot paths hold `Arc`s to the instruments themselves.

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{bucket_upper_edge, Counter, Gauge, Histogram, BUCKETS};

/// Build a series name from a family and label pairs:
/// `series("x_total", &[("route", "stats")])` → `x_total{route="stats"}`.
pub fn series(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    if v.contains(['\\', '"', '\n']) {
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    } else {
        v.to_string()
    }
}

/// `fam{a="b"}` → (`fam`, `a="b"`); `fam` → (`fam`, ``).
fn split_series(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    metric: Metric,
}

/// A process- or server-wide table of named instruments.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if let Metric::Counter(c) = &e.metric {
                if e.name == name {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push(Entry {
            name: name.to_string(),
            metric: Metric::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if let Metric::Gauge(g) = &e.metric {
                if e.name == name {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push(Entry {
            name: name.to_string(),
            metric: Metric::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Get or create the histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if let Metric::Histogram(h) = &e.metric {
                if e.name == name {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_string(),
            metric: Metric::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Attach an instrument that was created elsewhere (pool and kb build
    /// theirs standalone so those crates stay registry-free).
    pub fn register_counter(&self, name: &str, c: Arc<Counter>) {
        self.entries.lock().push(Entry {
            name: name.to_string(),
            metric: Metric::Counter(c),
        });
    }

    pub fn register_gauge(&self, name: &str, g: Arc<Gauge>) {
        self.entries.lock().push(Entry {
            name: name.to_string(),
            metric: Metric::Gauge(g),
        });
    }

    pub fn register_histogram(&self, name: &str, h: Arc<Histogram>) {
        self.entries.lock().push(Entry {
            name: name.to_string(),
            metric: Metric::Histogram(h),
        });
    }

    /// Render every registered instrument in Prometheus text exposition
    /// format, grouped by family with one `# TYPE` line each.
    pub fn render_prometheus(&self) -> String {
        let mut snap: Vec<(String, Metric)> = {
            let entries = self.entries.lock();
            entries
                .iter()
                .map(|e| (e.name.clone(), e.metric.clone()))
                .collect()
        };
        // Stable, family-grouped output regardless of registration order.
        snap.sort_by(|a, b| {
            let (fa, _) = split_series(&a.0);
            let (fb, _) = split_series(&b.0);
            fa.cmp(fb).then_with(|| a.0.cmp(&b.0))
        });
        let mut w = PromText::new();
        for (name, metric) in &snap {
            match metric {
                Metric::Counter(c) => w.counter(name, c.get()),
                Metric::Gauge(g) => w.gauge(name, g.get()),
                Metric::Histogram(h) => w.histogram(name, h),
            }
        }
        w.into_string()
    }
}

/// An incremental Prometheus text writer, also usable for ad-hoc
/// point-in-time series (cache stats, KB epoch) that aren't registry
/// residents. Emits each family's `# TYPE` line exactly once, on first
/// sight.
#[derive(Default)]
pub struct PromText {
    out: String,
    typed: Vec<String>,
}

impl PromText {
    pub fn new() -> Self {
        PromText::default()
    }

    fn type_line(&mut self, family: &str, kind: &str) {
        if self.typed.iter().any(|f| f == family) {
            return;
        }
        self.typed.push(family.to_string());
        let _ = writeln!(self.out, "# TYPE {family} {kind}");
    }

    pub fn counter(&mut self, name: &str, value: u64) {
        let (family, _) = split_series(name);
        self.type_line(family, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    pub fn gauge(&mut self, name: &str, value: u64) {
        let (family, _) = split_series(name);
        self.type_line(family, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Render a histogram as cumulative `_bucket{le=...}` series (buckets
    /// past the last occupied one are elided; `+Inf` always present) plus
    /// `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        let snap = h.snapshot();
        let (family, labels) = split_series(name);
        self.type_line(family, "histogram");
        let highest = snap
            .buckets()
            .iter()
            .rposition(|&n| n != 0)
            .map(|i| (i + 1).min(BUCKETS - 1))
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, n) in snap.buckets().iter().enumerate().take(highest) {
            cumulative = cumulative.saturating_add(*n);
            let le = bucket_upper_edge(i).to_string();
            let _ = writeln!(
                self.out,
                "{}_bucket{{{}}} {cumulative}",
                family,
                join_labels(labels, &le)
            );
        }
        let _ = writeln!(
            self.out,
            "{}_bucket{{{}}} {}",
            family,
            join_labels(labels, "+Inf"),
            snap.count()
        );
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(self.out, "{family}_sum{suffix} {}", snap.sum());
        let _ = writeln!(self.out, "{family}_count{suffix} {}", snap.count());
    }

    pub fn into_string(self) -> String {
        self.out
    }
}

fn join_labels(existing: &str, le: &str) -> String {
    if existing.is_empty() {
        format!("le=\"{le}\"")
    } else {
        format!("{existing},le=\"{le}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_builds_label_sets() {
        assert_eq!(series("x_total", &[]), "x_total");
        assert_eq!(
            series("x_total", &[("route", "stats"), ("status", "200")]),
            "x_total{route=\"stats\",status=\"200\"}"
        );
        assert_eq!(series("x", &[("v", "a\"b")]), "x{v=\"a\\\"b\"}");
    }

    #[test]
    fn get_or_create_dedups_by_name_and_type() {
        let r = Registry::new();
        let a = r.counter("hits_total");
        let b = r.counter("hits_total");
        a.inc();
        assert_eq!(b.get(), 1);
        // A gauge under a different name is a distinct instrument.
        let g = r.gauge("depth");
        g.set(7);
        assert_eq!(r.gauge("depth").get(), 7);
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("remi_requests_total{route=\"stats\"}").add(3);
        r.counter("remi_requests_total{route=\"describe\"}").add(5);
        r.gauge("remi_depth").set(2);
        let h = r.histogram("remi_latency_ns{route=\"describe\"}");
        h.record(100);
        h.record(5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE remi_requests_total counter"));
        // The TYPE line appears once for the family, not per series.
        assert_eq!(text.matches("# TYPE remi_requests_total").count(), 1);
        assert!(text.contains("remi_requests_total{route=\"stats\"} 3"));
        assert!(text.contains("remi_requests_total{route=\"describe\"} 5"));
        assert!(text.contains("# TYPE remi_depth gauge"));
        assert!(text.contains("remi_depth 2"));
        assert!(text.contains("# TYPE remi_latency_ns histogram"));
        assert!(text.contains("remi_latency_ns_bucket{route=\"describe\",le=\"+Inf\"} 2"));
        assert!(text.contains("remi_latency_ns_sum{route=\"describe\"} 105"));
        assert!(text.contains("remi_latency_ns_count{route=\"describe\"} 2"));
        // Cumulative buckets are monotone non-decreasing.
        let mut last = 0u64;
        for line in text.lines() {
            if line.starts_with("remi_latency_ns_bucket") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "bucket series must be cumulative: {line}");
                last = v;
            }
        }
    }

    #[test]
    fn registered_external_instruments_render() {
        let r = Registry::new();
        let c = Arc::new(Counter::new());
        c.add(9);
        r.register_counter("remi_pool_steals_total", Arc::clone(&c));
        assert!(r.render_prometheus().contains("remi_pool_steals_total 9"));
    }
}
