//! The three instrument kinds: monotone counters, saturating gauges, and
//! log2-bucketed histograms.
//!
//! All updates are relaxed atomic RMWs — instruments are safe to bump from
//! any thread with no ordering obligations, and a torn multi-field read
//! (e.g. a count observed without its sum) only skews a report, never
//! corrupts state.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one per power of two of a `u64`, so any
/// nanosecond (or byte, or triple-count) value lands in exactly one.
pub const BUCKETS: usize = 64;

/// The bucket holding `v`: `floor(log2(v))` with 0 mapped to bucket 0.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i` (`2^(i+1) - 1`; the last bucket is
/// unbounded).
#[inline]
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// Inclusive lower edge of bucket `i` (`2^i`; bucket 0 starts at 0).
#[inline]
pub fn bucket_lower_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A level that moves both ways. Decrements saturate at zero: a stray
/// extra `dec()` (the historical `connections_open` underflow hazard on the
/// parked-connection revive path) pins the gauge at 0 instead of wrapping
/// to `u64::MAX`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Increment, returning the new level — the admission-control pattern
    /// (`if gauge.inc() > watermark { shed }`) needs the post-increment
    /// value atomically, not a racy follow-up `get`.
    #[inline]
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Saturating decrement: never wraps below zero.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed distribution: 64 relaxed bucket counters plus exact
/// count, exact sum, and a true max (so quantile estimates can be clamped
/// to an observed value instead of a bucket edge past it).
///
/// `record` and `merge_from` are both plain additions, so any interleaving
/// of records and merges across histograms reaches the same final state —
/// the property the `histogram_prop` suite pins down.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Four relaxed RMWs; no branches beyond the
    /// leading-zeros bucket math.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold another histogram's observations into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy for quantile math and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-integer copy of a [`Histogram`], also constructible from parts
/// (e.g. buckets parsed back out of a `/v1/metrics` scrape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Rebuild a snapshot from per-bucket (non-cumulative) counts. Pass
    /// `u64::MAX` as `max` when the true maximum is unknown — quantiles
    /// then report raw bucket upper edges.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum: u64, max: u64) -> Self {
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }

    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from bucket boundaries.
    ///
    /// Returns the upper edge of the bucket holding the rank-`ceil(q·n)`
    /// observation, clamped to the recorded max — so the estimate is always
    /// ≥ the true value and never past the true value's bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*n);
            if cumulative >= rank {
                return bucket_upper_edge(i).min(self.max);
            }
        }
        // Bucket totals disagreeing with `count` only happens on a torn
        // live read; fall back to the max rather than a phantom edge.
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_u64_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            let (lo, hi) = (bucket_lower_edge(i), bucket_upper_edge(i));
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if i > 0 {
                assert_eq!(bucket_upper_edge(i - 1) + 1, lo);
            }
        }
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::new();
        assert_eq!(g.inc(), 1);
        g.dec();
        assert_eq!(g.get(), 0);
        // The regression case: one decrement too many must pin at 0, not
        // wrap to u64::MAX.
        g.dec();
        assert_eq!(g.get(), 0);
        g.set(2);
        g.dec();
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let h = Histogram::new();
        for v in [3u64, 900, 17, 0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 920);
        assert_eq!(s.max(), 900);
        assert_eq!(s.mean(), 230);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        // 90 fast observations and 10 slow ones: p50 must land in the fast
        // bucket, p99 in the slow one.
        for _ in 0..90 {
            h.record(100); // bucket 6 (64..=127)
        }
        for _ in 0..10 {
            h.record(9000); // bucket 13 (8192..=16383)
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(s.p99(), 9000); // upper edge 16383, clamped to true max
        assert_eq!(s.quantile(1.0), 9000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 512);
        assert_eq!(s.max(), 500);
    }
}
