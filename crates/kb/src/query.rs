//! Triple-pattern queries and a small BGP (basic graph pattern) executor.
//!
//! The storage layer already holds every index a pattern engine needs —
//! SPO/OPS adjacency, the subject→predicates wave, the merged delta
//! views — but until now exposed them only through per-primitive calls
//! (`objects`, `subjects`, `contains`). This module adds the missing
//! query surface:
//!
//! * [`TriplePattern`] — an `(s, p, o)` pattern where each slot is either
//!   a bound id or a variable, covering all 8 bound/unbound combinations.
//! * [`TripleStore::solve`] — the one unified entry point: every backend
//!   (CSR, succinct, layered delta-overlay) resolves any pattern through
//!   the same [`SolutionIter`] state machine, streaming matches over
//!   [`Bindings`] runs with zero materialisation on the common paths.
//! * [`solve_bgp`] — joins 2–3 patterns on shared variables: patterns are
//!   reordered by estimated cardinality, bound variables are substituted
//!   (index nested-loop), and when every remaining pattern constrains the
//!   same single variable through a directly-indexed binding list the
//!   lists are intersected by sorted merge instead of re-enumerating. A
//!   row limit and cooperative [`CancelToken`] checks make it safe to run
//!   behind the server's admission control.
//! * [`parse_patterns`] — the IRI-level front end shared by `remi-serve`
//!   (`POST /query`) and the `remi query` CLI: `?name` slots are
//!   variables, everything else resolves through the dictionaries
//!   (unknown IRIs become provably-empty bound slots, not errors).
//!
//! Because the [`TripleStore`] contract fixes iteration order (all id
//! lists sorted ascending, groups in ascending key order), solutions —
//! and therefore BGP rows — are bit-identical across backends.

use std::sync::Arc;

use crate::backend::{Bindings, BindingsIter, TripleStore};
use crate::ids::{NodeId, PredId, Triple};
use crate::store::KnowledgeBase;
use remi_obs::{Channel, EventId, EventSpec, FieldKind, FieldSpec, Recorder, Severity};
use remi_pool::CancelToken;

/// Upper bound on patterns per BGP query.
pub const MAX_PATTERNS: usize = 3;

/// Upper bound on distinct variables per BGP query (3 patterns × 3 slots).
pub const MAX_VARS: usize = 9;

/// How many enumeration steps pass between cooperative cancel checks.
const CANCEL_STRIDE: u64 = 1024;

/// One slot of a [`TriplePattern`]: a bound id or a variable.
///
/// Bound values live in the [`NodeId`] space for subject/object slots and
/// the [`PredId`] space for the predicate slot. A bound id that does not
/// exist in the store (e.g. the `u32::MAX` sentinel
/// [`parse_patterns`] uses for unknown IRIs) simply matches nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// A bound id (node or predicate space, depending on the slot).
    Bound(u32),
    /// A variable, identified by a small dense id (`< MAX_VARS` for BGP
    /// use). The same id in several slots constrains them to be equal.
    Var(u8),
}

/// An `(s, p, o)` triple pattern — each slot bound or variable, covering
/// all 8 combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject slot (node space).
    pub s: Slot,
    /// Predicate slot (predicate space).
    pub p: Slot,
    /// Object slot (node space).
    pub o: Slot,
}

impl TriplePattern {
    /// Creates a pattern.
    pub fn new(s: Slot, p: Slot, o: Slot) -> TriplePattern {
        TriplePattern { s, p, o }
    }

    /// The variable ids appearing in this pattern (with repeats).
    fn vars(self) -> impl Iterator<Item = u8> {
        [self.s, self.p, self.o]
            .into_iter()
            .filter_map(|slot| match slot {
                Slot::Var(v) => Some(v),
                Slot::Bound(_) => None,
            })
    }
}

/// Per-predicate stream state inside a [`SolutionIter`].
enum Inner<'a> {
    /// Nothing in flight for the current predicate.
    Idle,
    /// `(S, p, ?)`: streaming `objects(p, s)`.
    Objects {
        p: PredId,
        s: NodeId,
        it: BindingsIter<'a>,
    },
    /// `(?, p, O)`: streaming `subjects(p, o)`.
    Subjects {
        p: PredId,
        o: NodeId,
        it: BindingsIter<'a>,
    },
    /// `(?, p, ?)`: walking the predicate's subject groups in order.
    Groups {
        p: PredId,
        i: usize,
        n: usize,
        cur: Option<(NodeId, BindingsIter<'a>)>,
    },
}

/// Streaming iterator over all triples matching one [`TriplePattern`] —
/// the return type of [`TripleStore::solve`]. Yields [`Triple`]s in a
/// deterministic order (ascending predicate, then the store's sorted
/// group/binding order), identical across backends.
pub struct SolutionIter<'a> {
    store: &'a dyn TripleStore,
    /// Bound subject/object, if any.
    s: Option<NodeId>,
    o: Option<NodeId>,
    /// Predicate scan range (`p_next >= p_end` once exhausted). For a
    /// bound predicate this is a one-element range; a bound predicate
    /// outside the store's dense id space yields the empty range.
    p_next: u32,
    p_end: u32,
    /// When the subject is bound but the predicate is not, candidate
    /// predicates come from `preds_of_subject` instead of a full scan.
    preds: Option<BindingsIter<'a>>,
    inner: Inner<'a>,
    /// Repeated-variable equality filters (same variable in two slots).
    eq_sp: bool,
    eq_so: bool,
    eq_po: bool,
}

impl<'a> SolutionIter<'a> {
    /// Starts resolving `pat` against `store`. Out-of-range bound ids are
    /// legal and match nothing.
    pub fn new(store: &'a dyn TripleStore, pat: TriplePattern) -> SolutionIter<'a> {
        let np = store.num_preds() as u32;
        let (p_next, p_end, preds) = match (pat.p, pat.s) {
            (Slot::Bound(p), _) if p < np => (p, p + 1, None),
            (Slot::Bound(_), _) => (0, 0, None), // unknown predicate
            (Slot::Var(_), Slot::Bound(s)) => {
                (0, 0, Some(store.preds_of_subject(NodeId(s)).iter()))
            }
            (Slot::Var(_), Slot::Var(_)) => (0, np, None),
        };
        let eq = |a: Slot, b: Slot| matches!((a, b), (Slot::Var(x), Slot::Var(y)) if x == y);
        SolutionIter {
            store,
            s: match pat.s {
                Slot::Bound(v) => Some(NodeId(v)),
                Slot::Var(_) => None,
            },
            o: match pat.o {
                Slot::Bound(v) => Some(NodeId(v)),
                Slot::Var(_) => None,
            },
            p_next,
            p_end,
            preds,
            inner: Inner::Idle,
            eq_sp: eq(pat.s, pat.p),
            eq_so: eq(pat.s, pat.o),
            eq_po: eq(pat.p, pat.o),
        }
    }

    /// Repeated-variable filter: a candidate survives only if slots
    /// sharing a variable carry equal ids.
    #[inline]
    fn keep(&self, t: Triple) -> bool {
        (!self.eq_sp || t.s.0 == t.p.0)
            && (!self.eq_so || t.s.0 == t.o.0)
            && (!self.eq_po || t.p.0 == t.o.0)
    }

    /// Next candidate from the current per-predicate stream.
    fn step_inner(&mut self) -> Option<Triple> {
        let store = self.store;
        match &mut self.inner {
            Inner::Idle => None,
            Inner::Objects { p, s, it } => it.next().map(|o| Triple::new(*s, *p, NodeId(o))),
            Inner::Subjects { p, o, it } => it.next().map(|s| Triple::new(NodeId(s), *p, *o)),
            Inner::Groups { p, i, n, cur } => loop {
                if let Some((s, it)) = cur {
                    if let Some(o) = it.next() {
                        return Some(Triple::new(*s, *p, NodeId(o)));
                    }
                }
                if *i >= *n {
                    return None;
                }
                let s = store.subject_at(*p, *i);
                let it = store.objects_at(*p, *i).iter();
                *i += 1;
                *cur = Some((s, it));
            },
        }
    }
}

impl Iterator for SolutionIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        loop {
            if let Some(t) = self.step_inner() {
                if self.keep(t) {
                    return Some(t);
                }
                continue;
            }
            // Current predicate exhausted: advance to the next candidate.
            let p = match &mut self.preds {
                Some(it) => PredId(it.next()?),
                None => {
                    if self.p_next >= self.p_end {
                        return None;
                    }
                    let p = PredId(self.p_next);
                    self.p_next += 1;
                    p
                }
            };
            self.inner = match (self.s, self.o) {
                (Some(s), Some(o)) => {
                    if self.store.contains(s, p, o) {
                        let t = Triple::new(s, p, o);
                        if self.keep(t) {
                            return Some(t);
                        }
                    }
                    continue;
                }
                (Some(s), None) => Inner::Objects {
                    p,
                    s,
                    it: self.store.objects(p, s).iter(),
                },
                (None, Some(o)) => Inner::Subjects {
                    p,
                    o,
                    it: self.store.subjects(p, o).iter(),
                },
                (None, None) => Inner::Groups {
                    p,
                    i: 0,
                    n: self.store.num_subjects(p),
                    cur: None,
                },
            };
        }
    }
}

/// Estimated number of solutions of `pat` — the join-ordering statistic.
/// Exact for most shapes; an upper bound for `(S, ?p, O)` (which counts
/// the subject's predicates, not the matches among them) and for repeated
/// variables. Computed from index statistics only (`num_facts`, group lens),
/// never by enumeration. Identical across backends for the same logical
/// content, so query plans — and with them row order under truncation —
/// are backend-independent.
pub fn estimated_cardinality(store: &dyn TripleStore, pat: TriplePattern) -> usize {
    let np = store.num_preds() as u32;
    match (pat.s, pat.p, pat.o) {
        (_, Slot::Bound(p), _) if p >= np => 0,
        (Slot::Bound(s), Slot::Bound(p), Slot::Bound(o)) => {
            usize::from(store.contains(NodeId(s), PredId(p), NodeId(o)))
        }
        (Slot::Bound(s), Slot::Bound(p), Slot::Var(_)) => store.objects(PredId(p), NodeId(s)).len(),
        (Slot::Var(_), Slot::Bound(p), Slot::Bound(o)) => {
            store.subjects(PredId(p), NodeId(o)).len()
        }
        (Slot::Var(_), Slot::Bound(p), Slot::Var(_)) => store.num_facts(PredId(p)),
        (Slot::Bound(s), Slot::Var(_), Slot::Bound(_)) => store.preds_of_subject(NodeId(s)).len(),
        (Slot::Bound(s), Slot::Var(_), Slot::Var(_)) => store
            .preds_of_subject(NodeId(s))
            .iter()
            .map(|p| store.objects(PredId(p), NodeId(s)).len())
            .sum(),
        (Slot::Var(_), Slot::Var(_), Slot::Bound(o)) => (0..np)
            .map(|p| store.subjects(PredId(p), NodeId(o)).len())
            .sum(),
        (Slot::Var(_), Slot::Var(_), Slot::Var(_)) => {
            (0..np).map(|p| store.num_facts(PredId(p))).sum()
        }
    }
}

/// Why a BGP query was rejected or aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The query held no patterns.
    NoPatterns,
    /// More than [`MAX_PATTERNS`] patterns.
    TooManyPatterns,
    /// A variable id at or above [`MAX_VARS`].
    VarOutOfRange(u8),
    /// The [`CancelToken`] fired mid-evaluation.
    Cancelled,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NoPatterns => write!(f, "query must hold at least one pattern"),
            QueryError::TooManyPatterns => {
                write!(f, "query must hold at most {MAX_PATTERNS} patterns")
            }
            QueryError::VarOutOfRange(v) => {
                write!(
                    f,
                    "variable id {v} out of range (max {} variables)",
                    MAX_VARS
                )
            }
            QueryError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The result of a BGP evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpOutcome {
    /// The distinct variable ids, ascending — the header of `rows`.
    pub vars: Vec<u8>,
    /// One row per solution: the bound value of each variable of `vars`,
    /// in the same order.
    pub rows: Vec<Vec<u32>>,
    /// True when enumeration stopped at the row limit (more solutions may
    /// exist).
    pub truncated: bool,
}

/// One executed pattern of a [`PlanTrace`], in plan (execution) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// The pattern's index in the *request* order (the planner reorders).
    pub pattern: usize,
    /// The planner's [`estimated_cardinality`] for the pattern, unbound.
    pub estimated: usize,
    /// Matches this pattern actually produced during evaluation: triples
    /// enumerated at its nested-loop position, or rows it admitted
    /// through the merge intersection. The est-vs-actual pair is the
    /// feedback signal the join-aware-statistics roadmap item needs.
    pub matches: u64,
}

/// How one BGP evaluation ran: the chosen join order with
/// estimated-vs-actual cardinalities, whether the sorted-merge fast path
/// finished the join, and whether the row limit truncated enumeration.
///
/// Like [`BgpOutcome`], a trace is a function of the KB's *logical*
/// content only — both storage backends plan the same order, estimate
/// the same cardinalities, and enumerate the same matches, a property
/// the differential suite pins down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTrace {
    /// One entry per pattern, in execution order.
    pub steps: Vec<PlanStep>,
    /// True when the sorted-merge intersection answered the tail of the
    /// join instead of further nested-loop recursion.
    pub merge_fast_path: bool,
    /// Mirror of [`BgpOutcome::truncated`].
    pub truncated: bool,
}

/// Joins up to [`MAX_PATTERNS`] patterns on their shared variables.
///
/// Patterns are reordered greedily by [`estimated_cardinality`]
/// (connected-to-bound-variables first), evaluated by index nested-loop
/// with bound-variable substitution, and — whenever every remaining
/// pattern constrains the same single free variable through a directly
/// indexed binding list — finished by a sorted-merge intersection of
/// those [`Bindings`] instead of re-enumeration. Enumeration stops after
/// `limit` rows (`truncated` reports whether it did) and checks `cancel`
/// cooperatively every [`CANCEL_STRIDE`] steps, so long scans abort
/// promptly under server shutdown or admission pressure.
pub fn solve_bgp(
    store: &dyn TripleStore,
    patterns: &[TriplePattern],
    limit: usize,
    cancel: Option<&CancelToken>,
) -> Result<BgpOutcome, QueryError> {
    solve_bgp_traced(store, patterns, limit, cancel).map(|(out, _)| out)
}

/// [`solve_bgp`], additionally returning the [`PlanTrace`] of how the
/// join ran — the `?explain=1` and flight-recorder entry point. The
/// outcome is bit-identical to `solve_bgp`'s: tracing only counts work
/// the evaluation does anyway.
pub fn solve_bgp_traced(
    store: &dyn TripleStore,
    patterns: &[TriplePattern],
    limit: usize,
    cancel: Option<&CancelToken>,
) -> Result<(BgpOutcome, PlanTrace), QueryError> {
    if patterns.is_empty() {
        return Err(QueryError::NoPatterns);
    }
    if patterns.len() > MAX_PATTERNS {
        return Err(QueryError::TooManyPatterns);
    }
    let mut seen = [false; MAX_VARS];
    for pat in patterns {
        for v in pat.vars() {
            if (v as usize) >= MAX_VARS {
                return Err(QueryError::VarOutOfRange(v));
            }
            seen[v as usize] = true;
        }
    }
    if let Some(c) = cancel {
        if c.is_cancelled() {
            return Err(QueryError::Cancelled);
        }
    }
    let vars: Vec<u8> = (0..MAX_VARS as u8).filter(|&v| seen[v as usize]).collect();
    let est: Vec<usize> = patterns
        .iter()
        .map(|&p| estimated_cardinality(store, p))
        .collect();
    let order = plan(patterns, &est);
    let mut cx = EvalCx {
        store,
        patterns,
        order: &order,
        vars: &vars,
        limit: limit.max(1),
        cancel,
        env: [None; MAX_VARS],
        rows: Vec::new(),
        steps: 0,
        matches: [0; MAX_PATTERNS],
        merge_used: false,
    };
    let truncated = cx.eval(0)?;
    let trace = PlanTrace {
        steps: order
            .iter()
            .map(|&i| PlanStep {
                pattern: i,
                estimated: est.get(i).copied().unwrap_or(0),
                matches: cx.matches.get(i).copied().unwrap_or(0),
            })
            .collect(),
        merge_fast_path: cx.merge_used,
        truncated,
    };
    let rows = cx.rows;
    Ok((
        BgpOutcome {
            vars,
            rows,
            truncated,
        },
        trace,
    ))
}

/// Greedy join ordering: start from the smallest estimated pattern, then
/// repeatedly take the smallest pattern connected to an already-bound
/// variable (falling back to the smallest disconnected one — a cross
/// product — only when nothing connects). Ties break on the original
/// pattern index, so plans are fully deterministic.
fn plan(patterns: &[TriplePattern], est: &[usize]) -> Vec<usize> {
    let mut order = Vec::with_capacity(patterns.len());
    let mut used = vec![false; patterns.len()];
    let mut bound = [false; MAX_VARS];
    for _ in 0..patterns.len() {
        let mut best: Option<(bool, usize, usize)> = None;
        for (i, &pat) in patterns.iter().enumerate() {
            if used[i] {
                continue;
            }
            let connected =
                order.is_empty() || pat.vars().any(|v| bound.get(v as usize) == Some(&true));
            let key = (!connected, est.get(i).copied().unwrap_or(usize::MAX), i);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, i)) = best else { break };
        used[i] = true;
        order.push(i);
        for v in patterns[i].vars() {
            if let Some(slot) = bound.get_mut(v as usize) {
                *slot = true;
            }
        }
    }
    order
}

/// Substitutes already-bound variables into a pattern.
fn substitute(pat: TriplePattern, env: &[Option<u32>; MAX_VARS]) -> TriplePattern {
    let sub = |slot: Slot| match slot {
        Slot::Var(v) => match env.get(v as usize).copied().flatten() {
            Some(val) => Slot::Bound(val),
            None => Slot::Var(v),
        },
        bound => bound,
    };
    TriplePattern::new(sub(pat.s), sub(pat.p), sub(pat.o))
}

/// A substituted pattern whose single free variable is answered by one
/// directly-indexed binding list — the unit of the sorted-merge fast
/// path.
enum DirectList {
    /// `(S, P, ?v)` → `objects(p, s)`.
    Objects(PredId, NodeId),
    /// `(?v, P, O)` → `subjects(p, o)`.
    Subjects(PredId, NodeId),
}

/// Classifies a substituted pattern for the merge fast path.
fn direct(pat: TriplePattern) -> Option<(u8, DirectList)> {
    match (pat.s, pat.p, pat.o) {
        (Slot::Bound(s), Slot::Bound(p), Slot::Var(v)) => {
            Some((v, DirectList::Objects(PredId(p), NodeId(s))))
        }
        (Slot::Var(v), Slot::Bound(p), Slot::Bound(o)) => {
            Some((v, DirectList::Subjects(PredId(p), NodeId(o))))
        }
        _ => None,
    }
}

/// Shared state of one BGP evaluation.
struct EvalCx<'a, 'b> {
    store: &'a dyn TripleStore,
    patterns: &'b [TriplePattern],
    order: &'b [usize],
    vars: &'b [u8],
    limit: usize,
    cancel: Option<&'b CancelToken>,
    env: [Option<u32>; MAX_VARS],
    rows: Vec<Vec<u32>>,
    steps: u64,
    /// Matches produced per pattern, indexed by *request* pattern index.
    matches: [u64; MAX_PATTERNS],
    /// Whether the sorted-merge fast path answered any join tail.
    merge_used: bool,
}

impl EvalCx<'_, '_> {
    /// One enumeration step; errs when the token cancelled.
    #[inline]
    fn tick(&mut self) -> Result<(), QueryError> {
        self.steps += 1;
        if self.steps.is_multiple_of(CANCEL_STRIDE) {
            if let Some(c) = self.cancel {
                if c.is_cancelled() {
                    return Err(QueryError::Cancelled);
                }
            }
        }
        Ok(())
    }

    /// Emits the current environment as a row. Returns true when the row
    /// limit is reached (callers unwind).
    fn emit(&mut self) -> bool {
        self.rows.push(
            self.vars
                .iter()
                .map(|&v| self.env.get(v as usize).copied().flatten().unwrap_or(0))
                .collect(),
        );
        self.rows.len() >= self.limit
    }

    /// Recursive index-nested-loop over `order[depth..]`. Returns true
    /// when enumeration stopped at the row limit.
    fn eval(&mut self, depth: usize) -> Result<bool, QueryError> {
        if depth == self.order.len() {
            return Ok(self.emit());
        }
        // Sorted-merge fast path: every remaining pattern reduces to a
        // directly-indexed binding list over one shared free variable —
        // intersect the sorted lists instead of nesting further.
        if let Some((v, lists)) = self.merge_candidate(depth) {
            self.merge_used = true;
            return self.merge_join(depth, v, lists);
        }
        let idx = self.order[depth];
        let pat = substitute(self.patterns[idx], &self.env);
        for t in SolutionIter::new(self.store, pat) {
            self.tick()?;
            if let Some(n) = self.matches.get_mut(idx) {
                *n += 1;
            }
            self.bind(pat, t);
            let done = self.eval(depth + 1)?;
            self.unbind(pat);
            if done {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Binds the free variables of `pat` from the matched triple.
    fn bind(&mut self, pat: TriplePattern, t: Triple) {
        for (slot, val) in [(pat.s, t.s.0), (pat.p, t.p.0), (pat.o, t.o.0)] {
            if let Slot::Var(v) = slot {
                if let Some(cell) = self.env.get_mut(v as usize) {
                    *cell = Some(val);
                }
            }
        }
    }

    /// Clears the variables `bind` set for `pat`.
    fn unbind(&mut self, pat: TriplePattern) {
        for v in pat.vars() {
            if let Some(cell) = self.env.get_mut(v as usize) {
                *cell = None;
            }
        }
    }

    /// When all of `order[depth..]` substitute to direct lists over one
    /// shared variable, returns that variable and the lists.
    fn merge_candidate(&self, depth: usize) -> Option<(u8, Vec<DirectList>)> {
        let mut var = None;
        let mut lists = Vec::with_capacity(self.order.len() - depth);
        for &idx in &self.order[depth..] {
            let (v, list) = direct(substitute(self.patterns[idx], &self.env))?;
            if *var.get_or_insert(v) != v {
                return None;
            }
            lists.push(list);
        }
        var.map(|v| (v, lists))
    }

    /// Sorted-merge intersection of the direct lists: the smallest list
    /// drives, membership in the others is checked in sorted order.
    /// Emits rows in ascending order of `v` — exactly the order the
    /// nested-loop continuation would produce. Each emitted value counts
    /// as one match for every pattern the intersection covers
    /// (`order[depth..]`), mirroring what the nested loops would have
    /// attributed.
    fn merge_join(
        &mut self,
        depth: usize,
        v: u8,
        lists: Vec<DirectList>,
    ) -> Result<bool, QueryError> {
        let np = self.store.num_preds() as u32;
        let lists: Vec<Bindings<'_>> = lists
            .iter()
            .map(|l| match *l {
                DirectList::Objects(p, s) if p.0 < np => self.store.objects(p, s),
                DirectList::Subjects(p, o) if p.0 < np => self.store.subjects(p, o),
                _ => Bindings::EMPTY,
            })
            .collect();
        let Some(driver) = (0..lists.len()).min_by_key(|&i| (lists[i].len(), i)) else {
            return Ok(false);
        };
        for val in lists[driver].iter() {
            self.tick()?;
            let hit = lists
                .iter()
                .enumerate()
                .all(|(i, b)| i == driver || b.contains_sorted(val));
            if hit {
                for &idx in self.order.get(depth..).unwrap_or(&[]) {
                    if let Some(n) = self.matches.get_mut(idx) {
                        *n += 1;
                    }
                }
                if let Some(cell) = self.env.get_mut(v as usize) {
                    *cell = Some(val);
                }
                let done = self.emit();
                if let Some(cell) = self.env.get_mut(v as usize) {
                    *cell = None;
                }
                if done {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }
}

// ---------------------------------------------------------------------------
// Flight-recorder vocabulary

/// The join-path vocabulary of the `query_plan` event's `path` field.
const JOIN_PATH: &[&str] = &["nested", "merge"];

/// The planner's flight-recorder vocabulary: pre-defined [`EventId`]s over
/// a shared [`Recorder`], so emitting a whole plan is a handful of
/// allocation-free `emit` calls. The kb crate owns the event shapes;
/// callers (the server) own the recorder, the clock, and when to record.
#[derive(Debug, Clone)]
pub struct QueryEvents {
    recorder: Arc<Recorder>,
    plan: EventId,
    pattern: EventId,
    cancelled: EventId,
}

impl QueryEvents {
    /// Interns the planner event specs on `recorder`.
    pub fn new(recorder: Arc<Recorder>) -> QueryEvents {
        let plan = recorder.define(EventSpec {
            name: "query_plan",
            channel: Channel::Query,
            severity: Severity::Info,
            fields: &[
                FieldSpec {
                    key: "patterns",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "rows",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "truncated",
                    kind: FieldKind::Bool,
                },
                FieldSpec {
                    key: "path",
                    kind: FieldKind::Enum(JOIN_PATH),
                },
            ],
        });
        let pattern = recorder.define(EventSpec {
            name: "query_pattern",
            channel: Channel::Query,
            severity: Severity::Debug,
            fields: &[
                FieldSpec {
                    key: "step",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "pattern",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "estimated",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "matches",
                    kind: FieldKind::U64,
                },
            ],
        });
        let cancelled = recorder.define(EventSpec {
            name: "query_cancelled",
            channel: Channel::Query,
            severity: Severity::Warn,
            fields: &[FieldSpec {
                key: "patterns",
                kind: FieldKind::U64,
            }],
        });
        QueryEvents {
            recorder,
            plan,
            pattern,
            cancelled,
        }
    }

    /// Records one evaluated plan: a `query_pattern` event per step (in
    /// execution order, est-vs-actual cardinalities) and one summarising
    /// `query_plan` event.
    pub fn record(&self, ts_ns: u64, trace: &PlanTrace, rows: usize) {
        for (step, s) in trace.steps.iter().enumerate() {
            self.recorder.emit(
                self.pattern,
                ts_ns,
                &[step as u64, s.pattern as u64, s.estimated as u64, s.matches],
            );
        }
        self.recorder.emit(
            self.plan,
            ts_ns,
            &[
                trace.steps.len() as u64,
                rows as u64,
                trace.truncated as u64,
                trace.merge_fast_path as u64,
            ],
        );
    }

    /// Records a query aborted by its [`CancelToken`].
    pub fn record_cancelled(&self, ts_ns: u64, patterns: usize) {
        self.recorder
            .emit(self.cancelled, ts_ns, &[patterns as u64]);
    }
}

// ---------------------------------------------------------------------------
// IRI-level front end (shared by `remi-serve` and the CLI)

/// A BGP parsed from IRI-level pattern strings: dense-id patterns plus
/// the variable table needed to decode rows back to IRIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedQuery {
    /// The dense-id patterns, ready for [`solve_bgp`].
    pub patterns: Vec<TriplePattern>,
    /// Variable names by variable id (first-appearance order).
    pub var_names: Vec<String>,
    /// Whether the variable binds predicate ids (`true`) or node ids.
    pub pred_var: Vec<bool>,
}

/// Why IRI-level patterns failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A bare `?` with no variable name.
    EmptyVariableName,
    /// The same variable used in both a predicate slot and a node slot
    /// (the id spaces are distinct, so the join is meaningless).
    MixedVariablePosition(String),
    /// More than [`MAX_VARS`] distinct variables.
    TooManyVariables,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::EmptyVariableName => {
                write!(f, "variable name after '?' must not be empty")
            }
            PatternError::MixedVariablePosition(name) => write!(
                f,
                "variable ?{name} used in both predicate and subject/object positions"
            ),
            PatternError::TooManyVariables => {
                write!(f, "query must use at most {MAX_VARS} distinct variables")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// Parses IRI-level patterns: a slot starting with `?` is a variable
/// (named by the rest), anything else is an IRI resolved through the
/// dictionaries. Unknown IRIs resolve to an out-of-range bound id, so
/// they match nothing rather than erroring — a query about an absent
/// entity has zero rows, the same contract as `solve` itself.
pub fn parse_patterns(
    kb: &KnowledgeBase,
    raw: &[[String; 3]],
) -> Result<ResolvedQuery, PatternError> {
    let mut var_names: Vec<String> = Vec::new();
    let mut pred_var: Vec<bool> = Vec::new();
    let mut patterns = Vec::with_capacity(raw.len());
    for t in raw {
        let mut slot = |text: &str, is_pred: bool| -> Result<Slot, PatternError> {
            if let Some(name) = text.strip_prefix('?') {
                if name.is_empty() {
                    return Err(PatternError::EmptyVariableName);
                }
                let id = match var_names.iter().position(|n| n == name) {
                    Some(i) => {
                        if pred_var.get(i).copied() != Some(is_pred) {
                            return Err(PatternError::MixedVariablePosition(name.to_string()));
                        }
                        i
                    }
                    None => {
                        if var_names.len() >= MAX_VARS {
                            return Err(PatternError::TooManyVariables);
                        }
                        var_names.push(name.to_string());
                        pred_var.push(is_pred);
                        var_names.len() - 1
                    }
                };
                Ok(Slot::Var(id as u8))
            } else if is_pred {
                Ok(Slot::Bound(kb.pred_id(text).map_or(u32::MAX, |p| p.0)))
            } else {
                Ok(Slot::Bound(
                    kb.node_id_by_iri(text).map_or(u32::MAX, |n| n.0),
                ))
            }
        };
        let (s, p, o) = (slot(&t[0], false)?, slot(&t[1], true)?, slot(&t[2], false)?);
        patterns.push(TriplePattern::new(s, p, o));
    }
    Ok(ResolvedQuery {
        patterns,
        var_names,
        pred_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::store::KbBuilder;

    /// a —r0→ b, a —r0→ c, b —r0→ c, a —r1→ a, c —r1→ b.
    fn kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        for (s, p, o) in [
            ("e:a", "p:r0", "e:b"),
            ("e:a", "p:r0", "e:c"),
            ("e:b", "p:r0", "e:c"),
            ("e:a", "p:r1", "e:a"),
            ("e:c", "p:r1", "e:b"),
        ] {
            b.add_iri(s, p, o);
        }
        b.build().unwrap()
    }

    fn node(kb: &KnowledgeBase, iri: &str) -> u32 {
        kb.node_id_by_iri(iri).unwrap().0
    }

    fn pred(kb: &KnowledgeBase, iri: &str) -> u32 {
        kb.pred_id(iri).unwrap().0
    }

    /// Filter-scan reference for a single pattern (repeated vars included).
    fn naive(kb: &KnowledgeBase, pat: TriplePattern) -> Vec<Triple> {
        let hit = |slot: Slot, val: u32| match slot {
            Slot::Bound(b) => b == val,
            Slot::Var(_) => true,
        };
        let eq = |a: Slot, b: Slot, x: u32, y: u32| {
            !matches!((a, b), (Slot::Var(u), Slot::Var(v)) if u == v) || x == y
        };
        let mut out: Vec<Triple> = kb
            .iter_triples()
            .filter(|t| hit(pat.s, t.s.0) && hit(pat.p, t.p.0) && hit(pat.o, t.o.0))
            .filter(|t| {
                eq(pat.s, pat.p, t.s.0, t.p.0)
                    && eq(pat.s, pat.o, t.s.0, t.o.0)
                    && eq(pat.p, pat.o, t.p.0, t.o.0)
            })
            .collect();
        out.sort();
        out
    }

    fn solve_sorted(store: &dyn TripleStore, pat: TriplePattern) -> Vec<Triple> {
        let mut out: Vec<Triple> = SolutionIter::new(store, pat).collect();
        out.sort();
        out
    }

    #[test]
    fn all_eight_shapes_match_naive_on_both_backends() {
        let kb = kb();
        let (a, c) = (node(&kb, "e:a"), node(&kb, "e:c"));
        let r0 = pred(&kb, "p:r0");
        let succ = kb.clone().with_backend(Backend::Succinct);
        for s in [Slot::Bound(a), Slot::Var(0)] {
            for p in [Slot::Bound(r0), Slot::Var(1)] {
                for o in [Slot::Bound(c), Slot::Var(2)] {
                    let pat = TriplePattern::new(s, p, o);
                    let want = naive(&kb, pat);
                    assert_eq!(solve_sorted(kb.store(), pat), want, "csr {pat:?}");
                    assert_eq!(solve_sorted(succ.store(), pat), want, "succinct {pat:?}");
                    let est = estimated_cardinality(kb.store(), pat);
                    assert!(
                        est >= want.len(),
                        "estimate {pat:?}: {est} < {}",
                        want.len()
                    );
                    // Exact everywhere except (S, ?p, O), which counts
                    // the subject's predicates.
                    if !matches!((s, p, o), (Slot::Bound(_), Slot::Var(_), Slot::Bound(_))) {
                        assert_eq!(est, want.len(), "estimate {pat:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn repeated_variable_filters_to_self_loops() {
        let kb = kb();
        let pat = TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(0));
        let got = solve_sorted(kb.store(), pat);
        assert_eq!(got, naive(&kb, pat));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].s, got[0].o);
    }

    #[test]
    fn out_of_range_bound_ids_match_nothing() {
        let kb = kb();
        for pat in [
            TriplePattern::new(Slot::Bound(u32::MAX), Slot::Var(0), Slot::Var(1)),
            TriplePattern::new(Slot::Var(0), Slot::Bound(u32::MAX), Slot::Var(1)),
            TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Bound(u32::MAX)),
            TriplePattern::new(Slot::Bound(u32::MAX), Slot::Bound(u32::MAX), Slot::Bound(0)),
        ] {
            assert!(solve_sorted(kb.store(), pat).is_empty(), "{pat:?}");
            assert_eq!(estimated_cardinality(kb.store(), pat), 0, "{pat:?}");
        }
    }

    #[test]
    fn trait_entry_point_solves_on_concrete_stores() {
        let kb = kb();
        let pat = TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        assert_eq!(kb.store().solve(pat).count(), 5);
    }

    #[test]
    fn traced_solve_mirrors_solve_and_is_backend_independent() {
        let kb = kb();
        let succ = kb.clone().with_backend(Backend::Succinct);
        let a = Slot::Bound(node(&kb, "e:a"));
        let b = Slot::Bound(node(&kb, "e:b"));
        let r0 = Slot::Bound(pred(&kb, "p:r0"));
        let r1 = Slot::Bound(pred(&kb, "p:r1"));
        let scan = vec![TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(2))];
        let merge = vec![
            TriplePattern::new(a, r0, Slot::Var(0)),
            TriplePattern::new(Slot::Var(0), r1, b),
        ];
        for patterns in [&scan, &merge] {
            let (out, trace) = solve_bgp_traced(kb.store(), patterns, 100, None).unwrap();
            assert_eq!(out, solve_bgp(kb.store(), patterns, 100, None).unwrap());
            let (sout, strace) = solve_bgp_traced(succ.store(), patterns, 100, None).unwrap();
            assert_eq!(out, sout);
            assert_eq!(trace, strace);
            assert_eq!(trace.steps.len(), patterns.len());
        }
        // The merge case in detail: `a —r0→ {b,c}` intersected with
        // `subjects(r1, b) = {c}` admits one row; each pattern counts it.
        let (out, trace) = solve_bgp_traced(kb.store(), &merge, 100, None).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert!(trace.merge_fast_path);
        assert!(!trace.truncated);
        // The planner starts from the smaller estimate: pattern 1.
        assert_eq!(trace.steps[0].pattern, 1);
        for step in &trace.steps {
            assert_eq!(step.matches, 1);
            assert!(step.estimated >= 1, "{step:?}");
        }
        // The scan case: pure nested loop over all five triples.
        let (_, trace) = solve_bgp_traced(kb.store(), &scan, 100, None).unwrap();
        assert!(!trace.merge_fast_path);
        assert_eq!(trace.steps[0].matches, 5);
        assert_eq!(trace.steps[0].estimated, 5);
    }

    #[test]
    fn query_events_record_plan_pattern_and_cancellation() {
        use remi_obs::{Clock as _, FakeClock, FieldValue, Recorder};
        let kb = kb();
        let clock = FakeClock::new(10);
        let recorder = Recorder::shared(32);
        let events = QueryEvents::new(Arc::clone(&recorder));
        let r0 = Slot::Bound(pred(&kb, "p:r0"));
        let (out, trace) = solve_bgp_traced(
            kb.store(),
            &[TriplePattern::new(Slot::Var(0), r0, Slot::Var(1))],
            2,
            None,
        )
        .unwrap();
        events.record(clock.now_ns(), &trace, out.rows.len());
        clock.advance(5);
        events.record_cancelled(clock.now_ns(), 1);
        let recs = recorder.events_since(0);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].name, "query_pattern");
        assert_eq!(recs[1].name, "query_plan");
        assert_eq!(recs[1].ts_ns, 10);
        assert!(recs[1]
            .fields
            .contains(&("truncated", FieldValue::Bool(true))));
        assert!(recs[1]
            .fields
            .contains(&("path", FieldValue::Str("nested"))));
        assert!(recs[1].fields.contains(&("rows", FieldValue::U64(2))));
        assert_eq!(recs[2].name, "query_cancelled");
        assert_eq!(recs[2].ts_ns, 15);
    }

    #[test]
    fn two_pattern_join_chains_r0() {
        let kb = kb();
        let r0 = Slot::Bound(pred(&kb, "p:r0"));
        // ?0 —r0→ ?1 —r0→ ?2: only a→b→c survives the join.
        let out = solve_bgp(
            kb.store(),
            &[
                TriplePattern::new(Slot::Var(0), r0, Slot::Var(1)),
                TriplePattern::new(Slot::Var(1), r0, Slot::Var(2)),
            ],
            100,
            None,
        )
        .unwrap();
        assert_eq!(out.vars, vec![0, 1, 2]);
        assert!(!out.truncated);
        assert_eq!(
            out.rows,
            vec![vec![node(&kb, "e:a"), node(&kb, "e:b"), node(&kb, "e:c")]]
        );
    }

    #[test]
    fn merge_fast_path_intersects_shared_var() {
        let kb = kb();
        let (a, b) = (node(&kb, "e:a"), node(&kb, "e:b"));
        let r0 = Slot::Bound(pred(&kb, "p:r0"));
        // Objects reachable over r0 from BOTH a and b: exactly c.
        let out = solve_bgp(
            kb.store(),
            &[
                TriplePattern::new(Slot::Bound(a), r0, Slot::Var(0)),
                TriplePattern::new(Slot::Bound(b), r0, Slot::Var(0)),
            ],
            100,
            None,
        )
        .unwrap();
        assert_eq!(out.vars, vec![0]);
        assert_eq!(out.rows, vec![vec![node(&kb, "e:c")]]);
    }

    #[test]
    fn limit_truncates_and_reports_it() {
        let kb = kb();
        let pat = TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        let out = solve_bgp(kb.store(), &[pat], 2, None).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.truncated);
        let full = solve_bgp(kb.store(), &[pat], 100, None).unwrap();
        assert_eq!(full.rows.len(), 5);
        assert!(!full.truncated);
        // Truncation is a prefix of the full enumeration (stable order).
        assert_eq!(out.rows[..], full.rows[..2]);
    }

    #[test]
    fn cancelled_token_aborts() {
        let kb = kb();
        let token = CancelToken::default();
        token.cancel();
        let pat = TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        assert_eq!(
            solve_bgp(kb.store(), &[pat], 100, Some(&token)),
            Err(QueryError::Cancelled)
        );
    }

    #[test]
    fn bgp_input_validation() {
        let kb = kb();
        let pat = TriplePattern::new(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        assert_eq!(
            solve_bgp(kb.store(), &[], 10, None),
            Err(QueryError::NoPatterns)
        );
        assert_eq!(
            solve_bgp(kb.store(), &[pat; 4], 10, None),
            Err(QueryError::TooManyPatterns)
        );
        let bad = TriplePattern::new(Slot::Var(42), Slot::Var(1), Slot::Var(2));
        assert_eq!(
            solve_bgp(kb.store(), &[bad], 10, None),
            Err(QueryError::VarOutOfRange(42))
        );
    }

    #[test]
    fn parse_patterns_resolves_and_validates() {
        let kb = kb();
        let q = parse_patterns(
            &kb,
            &[
                ["?x".into(), "p:r0".into(), "?y".into()],
                ["?y".into(), "?rel".into(), "e:missing".into()],
            ],
        )
        .unwrap();
        assert_eq!(q.var_names, vec!["x", "y", "rel"]);
        assert_eq!(q.pred_var, vec![false, false, true]);
        assert_eq!(q.patterns[0].p, Slot::Bound(pred(&kb, "p:r0")));
        // Unknown IRIs become provably-empty bound slots, not errors.
        assert_eq!(q.patterns[1].o, Slot::Bound(u32::MAX));
        assert_eq!(
            parse_patterns(&kb, &[["?".into(), "p:r0".into(), "e:a".into()]]),
            Err(PatternError::EmptyVariableName)
        );
        assert_eq!(
            parse_patterns(&kb, &[["?x".into(), "?x".into(), "e:a".into()]]),
            Err(PatternError::MixedVariablePosition("x".into()))
        );
    }
}
