//! Dense integer identifiers for dictionary-encoded terms.
//!
//! The store keeps two id namespaces: [`NodeId`] for subjects/objects and
//! [`PredId`] for predicates. Keeping predicates in their own dense space
//! lets per-predicate indexes live in a flat `Vec` and lets prominence
//! rankings over predicates be plain permutations.

use std::fmt;

/// Identifier of a node term (entity, literal, or blank node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a predicate (including materialised inverse predicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PredId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A dictionary-encoded triple `p(s, o)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject node.
    pub s: NodeId,
    /// Predicate.
    pub p: PredId,
    /// Object node.
    pub o: NodeId,
}

impl Triple {
    /// Creates a triple.
    #[inline]
    pub fn new(s: NodeId, p: PredId, o: NodeId) -> Self {
        Triple { s, p, o }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_small_and_ordered() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<PredId>(), 4);
        assert_eq!(std::mem::size_of::<Triple>(), 12);
        assert!(NodeId(1) < NodeId(2));
        assert!(PredId(0) < PredId(9));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(PredId(5).to_string(), "p5");
    }

    #[test]
    fn triple_ordering_is_spo() {
        let a = Triple::new(NodeId(1), PredId(0), NodeId(5));
        let b = Triple::new(NodeId(1), PredId(1), NodeId(0));
        let c = Triple::new(NodeId(2), PredId(0), NodeId(0));
        assert!(a < b && b < c);
    }
}
