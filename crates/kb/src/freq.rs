//! A persistent, segmented `u32` counter vector.
//!
//! [`FreqVec`] backs the per-node fact frequencies of a
//! [`KnowledgeBase`](crate::store::KnowledgeBase). Live ingestion clones
//! the frequency table on every epoch publish, and appends increment
//! counters at *arbitrary* old indexes — so unlike the dictionary (which
//! only grows at the end) it needs copy-on-write at the segment level:
//! the vector is a list of fixed-size `Arc` segments, `clone` is an
//! `Arc`-bump per segment, and an increment that lands on a shared
//! segment copies just that segment (`SEGMENT_LEN * 4` bytes) via
//! [`Arc::make_mut`]. A batch of `k` facts therefore dirties at most
//! `2k` segments per epoch, keeping publish O(batch) instead of O(nodes).

use std::sync::Arc;

/// A growable `u32` vector with O(len / SEGMENT_LEN) clone and
/// copy-on-write increments. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct FreqVec {
    /// Fixed-size segments; each holds exactly `SEGMENT_LEN` slots, with
    /// slots at index ≥ `len` zero (so growth never rewrites a segment).
    segs: Vec<Arc<Vec<u32>>>,
    len: usize,
}

impl FreqVec {
    /// Slots per segment: 4 KB of counters, small enough that a
    /// copy-on-write of one segment is cheap, large enough that the
    /// per-clone `Arc`-bump count stays negligible.
    pub const SEGMENT_LEN: usize = 1024;

    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a flat vector.
    pub fn from_vec(v: Vec<u32>) -> Self {
        let len = v.len();
        let mut segs = Vec::with_capacity(len.div_ceil(Self::SEGMENT_LEN));
        for chunk in v.chunks(Self::SEGMENT_LEN) {
            let mut seg = chunk.to_vec();
            seg.resize(Self::SEGMENT_LEN, 0);
            segs.push(Arc::new(seg));
        }
        FreqVec { segs, len }
    }

    /// Flattens back into a `Vec<u32>`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Number of logical slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The counter at `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "FreqVec index {i} out of range {}", self.len);
        self.segs[i / Self::SEGMENT_LEN][i % Self::SEGMENT_LEN]
    }

    /// Adds `delta` to the counter at `i`, copying the segment first if a
    /// snapshot still shares it. Panics if out of range.
    #[inline]
    pub fn add(&mut self, i: usize, delta: u32) {
        assert!(i < self.len, "FreqVec index {i} out of range {}", self.len);
        let seg = Arc::make_mut(&mut self.segs[i / Self::SEGMENT_LEN]);
        seg[i % Self::SEGMENT_LEN] += delta;
    }

    /// Grows to `new_len` slots, zero-filling; no-op if already that long.
    /// Existing segments are never touched (slots past `len` are already
    /// zero by invariant), so growth does not un-share anything.
    pub fn grow_to(&mut self, new_len: usize) {
        if new_len <= self.len {
            return;
        }
        while self.segs.len() * Self::SEGMENT_LEN < new_len {
            self.segs.push(Arc::new(vec![0u32; Self::SEGMENT_LEN]));
        }
        self.len = new_len;
    }

    /// Iterates the counters in index order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.segs
            .iter()
            .flat_map(|seg| seg.iter().copied())
            .take(self.len)
    }

    /// Addresses of the segments, in index order (sharing diagnostics).
    pub fn segment_ptrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.segs.iter().map(|seg| Arc::as_ptr(seg) as usize)
    }

    /// Heap bytes kept alive by this vector (each segment counted once,
    /// shared or not — same accounting rule as `Dictionary::heap_bytes`).
    pub fn heap_bytes(&self) -> usize {
        // Arc header (strong + weak) per segment.
        const ARC_HEADER: usize = 16;
        self.segs.len() * (Self::SEGMENT_LEN * std::mem::size_of::<u32>() + ARC_HEADER)
            + self.segs.capacity() * std::mem::size_of::<Arc<Vec<u32>>>()
    }
}

impl FromIterator<u32> for FreqVec {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_indexing() {
        let v: Vec<u32> = (0..2500).map(|i| i * 3).collect();
        let f = FreqVec::from_vec(v.clone());
        assert_eq!(f.len(), v.len());
        assert_eq!(f.to_vec(), v);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(f.get(i), x);
        }
    }

    #[test]
    fn grow_and_add() {
        let mut f = FreqVec::new();
        f.grow_to(10);
        assert_eq!(f.len(), 10);
        assert_eq!(f.get(9), 0);
        f.add(9, 7);
        f.add(9, 1);
        assert_eq!(f.get(9), 8);
        f.grow_to(FreqVec::SEGMENT_LEN * 2 + 1);
        assert_eq!(f.get(9), 8);
        assert_eq!(f.get(FreqVec::SEGMENT_LEN * 2), 0);
    }

    #[test]
    fn add_copies_only_the_touched_shared_segment() {
        let mut f = FreqVec::from_vec(vec![1; FreqVec::SEGMENT_LEN * 3]);
        let snap = f.clone();
        let before: Vec<usize> = f.segment_ptrs().collect();
        f.add(FreqVec::SEGMENT_LEN + 5, 1);
        let after: Vec<usize> = f.segment_ptrs().collect();
        // Only the middle segment was copied; the others are still the
        // snapshot's segments.
        assert_eq!(after[0], before[0]);
        assert_ne!(after[1], before[1]);
        assert_eq!(after[2], before[2]);
        assert_eq!(snap.get(FreqVec::SEGMENT_LEN + 5), 1);
        assert_eq!(f.get(FreqVec::SEGMENT_LEN + 5), 2);
        // Unshared now: a second add to the same segment copies nothing.
        f.add(FreqVec::SEGMENT_LEN + 6, 1);
        let again: Vec<usize> = f.segment_ptrs().collect();
        assert_eq!(again, after);
    }

    #[test]
    fn clone_is_exact_in_heap_bytes() {
        let f = FreqVec::from_vec(vec![2; 5000]);
        assert_eq!(f.clone().heap_bytes(), f.heap_bytes());
    }
}
