//! Succinct storage primitives: rank/select bitvectors, fixed-width packed
//! integer sequences, and the HDT-style [`BitmapTriples`] layout built from
//! them.
//!
//! The paper keeps its KBs in HDT — dictionary-compressed *bitmap triples*
//! whose adjacency lists are delimited by rank/select bitmaps instead of
//! offset arrays (§3.5.1). This module is the same construction in the
//! style of the Rust HDT engines: a triple wave is a packed key sequence,
//! a packed value sequence, and a bitmap with one bit per value marking the
//! last value of each key's run. Lookups are a binary search over the packed
//! keys plus two `select1` calls; nothing is ever decompressed wholesale.
//!
//! All word storage goes through [`WordSeq`], which is either owned or a
//! zero-copy view into a shared [`Bytes`] buffer — the `RKB2` loader maps
//! file sections straight into these structures without copying the
//! payload.

use bytes::Bytes;

use crate::ids::{NodeId, PredId};

/// Bits needed to store values in `0..=max` (at least 1).
pub fn bits_for(max: u64) -> u32 {
    (64 - max.leading_zeros()).max(1)
}

/// Broadword (SWAR) select of the `k`-th set bit (0-based) within one
/// word — Vigna's byte-counting construction, safe-Rust only: byte-wise
/// popcount prefix sums via a `0x0101…` multiply, a borrow-free parallel
/// byte comparison to find the byte holding the target bit, then an
/// ≤7-step clear loop inside that byte. Replaces the per-bit clear loop
/// that made `select1` O(ones-in-word).
///
/// `k` must be less than `word.count_ones()`.
#[inline]
fn select_in_word(word: u64, k: u64) -> u32 {
    debug_assert!(k < u64::from(word.count_ones()));
    const ONES: u64 = 0x0101_0101_0101_0101;
    const MSBS: u64 = 0x8080_8080_8080_8080;
    // Byte-wise popcounts, then inclusive per-byte prefix sums.
    let mut s = word - ((word >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    let sums = s.wrapping_mul(ONES);
    // One flag bit per byte whose prefix sum is <= k. Every operand byte
    // is < 128 (sums <= 64, k <= 63), so `(k | 0x80) - sum` keeps its
    // byte's MSB exactly when sum <= k and borrows never cross bytes.
    let flags = ((k.wrapping_mul(ONES) | MSBS) - sums) & MSBS;
    // The target byte's index is the number of flagged bytes; its bit
    // offset is that times 8. k < count_ones keeps place <= 56.
    let place = (flags >> 7).wrapping_mul(ONES) >> 56 << 3;
    // Ones of the target byte already accounted for by earlier bytes
    // (`sums << 8` aligns the *exclusive* prefix sum under `place`).
    let rank_in_byte = k - (((sums << 8) >> place) & 0xff);
    let mut byte = (word >> place) & 0xff;
    for _ in 0..rank_in_byte {
        byte &= byte - 1; // clear lowest set bit; at most 7 iterations
    }
    place as u32 + byte.trailing_zeros()
}

/// A `u64` word array: owned, or a zero-copy little-endian view into a
/// shared byte buffer.
#[derive(Debug, Clone)]
pub enum WordSeq {
    /// Heap-owned words.
    Owned(Vec<u64>),
    /// Little-endian words backed by a shared [`Bytes`] buffer (length must
    /// be a multiple of 8).
    Shared(Bytes),
}

impl WordSeq {
    /// The `i`-th word.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        match self {
            WordSeq::Owned(v) => v[i],
            WordSeq::Shared(b) => {
                let lo = i * 8;
                u64::from_le_bytes(b[lo..lo + 8].try_into().expect("8-byte word"))
            }
        }
    }

    /// Number of words.
    pub fn len_words(&self) -> usize {
        match self {
            WordSeq::Owned(v) => v.len(),
            WordSeq::Shared(b) => b.len() / 8,
        }
    }

    /// Resident bytes of the word payload.
    pub fn size_in_bytes(&self) -> usize {
        self.len_words() * 8
    }

    /// Appends the words as little-endian bytes (the `RKB2` wire form).
    pub fn write_le(&self, out: &mut bytes::BytesMut) {
        use bytes::BufMut;
        for i in 0..self.len_words() {
            out.put_u64_le(self.word(i));
        }
    }
}

/// An immutable sequence of fixed-width unsigned integers packed into
/// 64-bit words.
#[derive(Debug, Clone)]
pub struct PackedSeq {
    words: WordSeq,
    width: u32,
    len: usize,
}

impl PackedSeq {
    /// Packs `values` at `width` bits each. Panics if a value overflows the
    /// width.
    pub fn from_values(width: u32, values: impl IntoIterator<Item = u32>) -> PackedSeq {
        assert!((1..=32).contains(&width), "width {width} out of range");
        let mut words: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for v in values {
            debug_assert!(u64::from(v) < (1u64 << width), "value overflows width");
            let bit = len * width as usize;
            let (w, off) = (bit / 64, (bit % 64) as u32);
            if w == words.len() {
                words.push(0);
            }
            words[w] |= u64::from(v) << off;
            if off + width > 64 {
                words.push(u64::from(v) >> (64 - off));
            }
            len += 1;
        }
        PackedSeq {
            words: WordSeq::Owned(words),
            width,
            len,
        }
    }

    /// Wraps pre-packed words (e.g. a zero-copy file section).
    pub fn from_words(words: WordSeq, width: u32, len: usize) -> PackedSeq {
        assert!((1..=32).contains(&width), "width {width} out of range");
        assert!(
            words.len_words() * 64 >= len * width as usize,
            "word payload too short for {len} x {width}-bit values"
        );
        PackedSeq { words, width, len }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit width per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The backing words.
    pub fn words(&self) -> &WordSeq {
        &self.words
    }

    /// The `i`-th value. O(1); at most two word reads.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        let bit = i * self.width as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        let mut v = self.words.word(w) >> off;
        if off + self.width > 64 {
            v |= self.words.word(w + 1) << (64 - off);
        }
        // width <= 32, so the mask never overflows a u64 shift.
        (v & ((1u64 << self.width) - 1)) as u32
    }

    /// A streaming decoder over the `len` values starting at `start`.
    /// Amortises the per-value word indexing of [`PackedSeq::get`] down
    /// to roughly one word fetch per `64 / width` values — the iterator
    /// form of [`PackedSeq::decode_run`].
    pub fn cursor(&self, start: usize, len: usize) -> PackedCursor<'_> {
        debug_assert!(start + len <= self.len, "cursor range out of bounds");
        let bit = start * self.width as usize;
        let word_i = bit / 64;
        let word = if len > 0 { self.words.word(word_i) } else { 0 };
        PackedCursor {
            seq: self,
            bit,
            word_i,
            word,
            remaining: len,
        }
    }

    /// Appends the `len` values starting at `start` to `out` — the bulk
    /// extraction path for directly-indexed bindings. Values wholly inside
    /// the current word are unpacked in a tight shift/mask loop (one word
    /// fetch per batch of `~64 / width`); only straddling values pay a
    /// second fetch.
    pub fn decode_run(&self, start: usize, len: usize, out: &mut Vec<u32>) {
        debug_assert!(start + len <= self.len, "decode range out of bounds");
        out.reserve(len);
        let width = self.width as usize;
        let mask = (1u64 << self.width) - 1;
        let mut bit = start * width;
        let mut remaining = len;
        while remaining > 0 {
            let (wi, off) = (bit / 64, bit % 64);
            let word = self.words.word(wi);
            if off + width <= 64 {
                // All of `fit` >= 1 values live wholly in this word.
                let fit = ((64 - off) / width).min(remaining);
                let mut cur = word >> off;
                for _ in 0..fit {
                    out.push((cur & mask) as u32);
                    cur >>= width;
                }
                bit += fit * width;
                remaining -= fit;
            } else {
                let v = (word >> off) | (self.words.word(wi + 1) << (64 - off));
                out.push((v & mask) as u32);
                bit += width;
                remaining -= 1;
            }
        }
    }

    /// Binary search for `value` in the sorted range `lo..hi`.
    pub fn binary_search_range(&self, lo: usize, hi: usize, value: u32) -> Result<usize, usize> {
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.get(mid).cmp(&value) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Resident bytes (words + header).
    pub fn size_in_bytes(&self) -> usize {
        self.words.size_in_bytes() + std::mem::size_of::<Self>()
    }
}

/// A streaming decoder over a contiguous [`PackedSeq`] range; see
/// [`PackedSeq::cursor`]. Holds the current word so consecutive values
/// usually decode with a shift and a mask, no re-indexing.
#[derive(Debug, Clone)]
pub struct PackedCursor<'a> {
    seq: &'a PackedSeq,
    /// Absolute bit position of the next value.
    bit: usize,
    /// Index of the cached `word` (always `bit / 64` while values remain).
    word_i: usize,
    word: u64,
    remaining: usize,
}

impl Iterator for PackedCursor<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let width = self.seq.width;
        let off = (self.bit % 64) as u32;
        let mut v = self.word >> off;
        self.bit += width as usize;
        let wi = self.bit / 64;
        if wi != self.word_i {
            self.word_i = wi;
            self.word = if wi < self.seq.words.len_words() {
                self.seq.words.word(wi)
            } else {
                0
            };
            if off + width > 64 {
                // The value straddled into the freshly fetched word.
                v |= self.word << (64 - off);
            }
        }
        Some((v & ((1u64 << width) - 1)) as u32)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PackedCursor<'_> {}

/// How many words one rank superblock covers (512 bits, rank9-style).
const SUPERBLOCK_WORDS: usize = 8;

/// Sampling rate of the select directory: the superblock of every
/// `SELECT_SAMPLE`-th set bit is recorded, so a `select1` never binary
/// searches more than the superblocks spanned by 64 ones.
const SELECT_SAMPLE: usize = 64;

/// A plain append-only bitvector builder for [`RsBitVec`].
#[derive(Debug, Default, Clone)]
pub struct BitVecBuilder {
    words: Vec<u64>,
    len: usize,
}

impl BitVecBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let (w, off) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Number of bits pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freezes into a rank/select bitvector.
    pub fn finish(self) -> RsBitVec {
        RsBitVec::from_words(WordSeq::Owned(self.words), self.len)
    }
}

/// A bitvector with O(1) rank and O(1) select, in the broadword
/// rank9 style: one cumulative counter per 512-bit superblock plus
/// popcounts inside the block, and a sampled select directory that pins
/// every 64th set bit to its superblock so a `select1` probe touches a
/// constant number of counters on the dense delimiter bitmaps the wave
/// indexes use.
///
/// The word payload may be a zero-copy [`WordSeq::Shared`] view; the small
/// rank and select directories are always rebuilt in memory (O(n/64) on
/// load).
#[derive(Debug, Clone)]
pub struct RsBitVec {
    words: WordSeq,
    len_bits: usize,
    /// Ones before each superblock (`len = ceil(words / 8) + 1`; the last
    /// entry is the total count).
    blocks: Vec<u64>,
    /// Superblock index containing the `(i * SELECT_SAMPLE)`-th set bit —
    /// the select directory. Empty iff the vector holds no set bits.
    select_samples: Vec<u32>,
}

impl RsBitVec {
    /// Builds the rank and select directories over `words` (`len_bits` of
    /// which are valid; trailing bits of the last word must be zero).
    pub fn from_words(words: WordSeq, len_bits: usize) -> RsBitVec {
        let n_words = words.len_words();
        assert!(n_words * 64 >= len_bits, "word payload too short");
        let mut blocks = Vec::with_capacity(n_words / SUPERBLOCK_WORDS + 2);
        let mut select_samples = Vec::new();
        let mut total = 0u64;
        for w in 0..n_words {
            if w % SUPERBLOCK_WORDS == 0 {
                blocks.push(total);
            }
            let ones = u64::from(words.word(w).count_ones());
            // Record the superblock of every SELECT_SAMPLE-th one crossed
            // by this word (a single word can cross at most two samples).
            let mut next = select_samples.len() as u64 * SELECT_SAMPLE as u64;
            while next < total + ones {
                select_samples.push((w / SUPERBLOCK_WORDS) as u32);
                next += SELECT_SAMPLE as u64;
            }
            total += ones;
        }
        blocks.push(total);
        RsBitVec {
            words,
            len_bits,
            blocks,
            select_samples,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len_bits
    }

    /// True when the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        *self.blocks.last().expect("blocks never empty") as usize
    }

    /// The backing words.
    pub fn words(&self) -> &WordSeq {
        &self.words
    }

    /// The `i`-th bit.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len_bits);
        self.words.word(i / 64) >> (i % 64) & 1 == 1
    }

    /// Number of set bits in `[0, i)`.
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len_bits);
        let word = i / 64;
        let sb = word / SUPERBLOCK_WORDS;
        let mut count = self.blocks[sb];
        for w in (sb * SUPERBLOCK_WORDS)..word {
            count += u64::from(self.words.word(w).count_ones());
        }
        let rem = i % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            count += u64::from((self.words.word(word) & mask).count_ones());
        }
        count as usize
    }

    /// Position of the first set bit at or after `from`. Panics if no set
    /// bit remains — callers iterate runs whose final bit is always set.
    /// Amortised O(1) over a sequential sweep (word-at-a-time scan).
    pub fn next_one(&self, from: usize) -> usize {
        debug_assert!(from < self.len_bits);
        let mut w = from / 64;
        let mut word = self.words.word(w) & (u64::MAX << (from % 64));
        while word == 0 {
            w += 1;
            word = self.words.word(w);
        }
        w * 64 + word.trailing_zeros() as usize
    }

    /// Position of the `k`-th set bit (0-based). Panics if fewer than
    /// `k + 1` bits are set. O(1): the select directory narrows the
    /// superblock search to the span of one 64-one sample window.
    pub fn select1(&self, k: usize) -> usize {
        assert!(
            (k as u64) < *self.blocks.last().expect("blocks never empty"),
            "select1 out of range"
        );
        // The sample window bounding the k-th one's superblock: it lies at
        // or after the (k / SAMPLE)-th sample and strictly before the next
        // sample's successor.
        let lo = self.select_samples[k / SELECT_SAMPLE] as usize;
        let hi = self
            .select_samples
            .get(k / SELECT_SAMPLE + 1)
            .map(|&s| s as usize + 1)
            .unwrap_or(self.blocks.len() - 1);
        let k = k as u64;
        // Last superblock in [lo, hi] whose prefix count is <= k; the
        // window spans the superblocks of at most 64 ones.
        let window = &self.blocks[lo..=hi];
        let sb = lo + window.partition_point(|&c| c <= k) - 1;
        let mut count = self.blocks[sb];
        let mut w = sb * SUPERBLOCK_WORDS;
        loop {
            let ones = u64::from(self.words.word(w).count_ones());
            if count + ones > k {
                break;
            }
            count += ones;
            w += 1;
        }
        w * 64 + select_in_word(self.words.word(w), k - count) as usize
    }

    /// A streaming cursor over the set bits at or after `from`, in order.
    /// Sequential sweeps fetch each word once across the whole scan,
    /// where repeated [`RsBitVec::next_one`] calls re-fetch and re-mask
    /// their starting word every time.
    pub fn one_scanner(&self, from: usize) -> OneScanner<'_> {
        let word_i = from / 64;
        let word = if word_i < self.words.len_words() {
            self.words.word(word_i) & (u64::MAX << (from % 64))
        } else {
            0
        };
        OneScanner {
            bv: self,
            word_i,
            word,
        }
    }

    /// Resident bytes (words + rank and select directories).
    pub fn size_in_bytes(&self) -> usize {
        self.words.size_in_bytes()
            + self.blocks.len() * 8
            + self.select_samples.len() * 4
            + std::mem::size_of::<Self>()
    }
}

/// A streaming cursor over the set bits of an [`RsBitVec`]; see
/// [`RsBitVec::one_scanner`].
#[derive(Debug, Clone)]
pub struct OneScanner<'a> {
    bv: &'a RsBitVec,
    word_i: usize,
    /// The current word with already-consumed bits cleared.
    word: u64,
}

impl OneScanner<'_> {
    /// Position of the next set bit, consuming it. Panics if no set bit
    /// remains — callers iterate runs whose final bit is always set.
    #[inline]
    pub fn next_one(&mut self) -> usize {
        while self.word == 0 {
            self.word_i += 1;
            self.word = self.bv.words.word(self.word_i);
        }
        let pos = self.word_i * 64 + self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        pos
    }
}

/// One direction of a bitmap-triples index: adjacency lists for every
/// group (predicate), each list keyed by a packed, sorted key sequence and
/// delimited in the packed value stream by a "last value of this key"
/// bitmap — the HDT wave layout.
#[derive(Debug, Clone)]
pub struct WaveIndex {
    /// Key-range bounds per group (`num_groups + 1` entries).
    key_bounds: Vec<u32>,
    /// Value-range bounds per group (`num_groups + 1` entries).
    val_bounds: Vec<u32>,
    /// All keys, grouped by group id, sorted within a group.
    keys: PackedSeq,
    /// One bit per value; set on the last value of each key's run.
    last: RsBitVec,
    /// All values, grouped by key, sorted within a key's run.
    vals: PackedSeq,
}

impl WaveIndex {
    /// Assembles a wave from its parts (the `RKB2` loader and
    /// [`WaveBuilder`] both end here).
    pub fn from_parts(
        key_bounds: Vec<u32>,
        val_bounds: Vec<u32>,
        keys: PackedSeq,
        last: RsBitVec,
        vals: PackedSeq,
    ) -> WaveIndex {
        assert_eq!(key_bounds.len(), val_bounds.len(), "bound tables disagree");
        assert!(!key_bounds.is_empty(), "bound tables must not be empty");
        assert_eq!(
            *key_bounds.last().expect("non-empty") as usize,
            keys.len(),
            "key bounds do not cover the key sequence"
        );
        assert_eq!(
            *val_bounds.last().expect("non-empty") as usize,
            vals.len(),
            "value bounds do not cover the value sequence"
        );
        assert_eq!(last.len(), vals.len(), "bitmap length != value count");
        assert_eq!(
            last.count_ones(),
            keys.len(),
            "bitmap must hold one run per key"
        );
        WaveIndex {
            key_bounds,
            val_bounds,
            keys,
            last,
            vals,
        }
    }

    /// Number of groups (predicates).
    pub fn num_groups(&self) -> usize {
        self.key_bounds.len() - 1
    }

    /// Number of distinct keys in group `g`.
    #[inline]
    pub fn num_keys(&self, g: usize) -> usize {
        (self.key_bounds[g + 1] - self.key_bounds[g]) as usize
    }

    /// Number of values in group `g`.
    #[inline]
    pub fn num_vals(&self, g: usize) -> usize {
        (self.val_bounds[g + 1] - self.val_bounds[g]) as usize
    }

    /// The `i`-th key of group `g`.
    #[inline]
    pub fn key_at(&self, g: usize, i: usize) -> u32 {
        self.keys.get(self.key_bounds[g] as usize + i)
    }

    /// The packed value stream (for [`Bindings`](crate::backend::Bindings)
    /// construction).
    pub fn vals(&self) -> &PackedSeq {
        &self.vals
    }

    /// Locates `key` within group `g`, returning its local index.
    #[inline]
    pub fn find(&self, g: usize, key: u32) -> Option<usize> {
        let lo = self.key_bounds[g] as usize;
        let hi = self.key_bounds[g + 1] as usize;
        self.keys
            .binary_search_range(lo, hi, key)
            .ok()
            .map(|abs| abs - lo)
    }

    /// The global value range `(start, len)` of the `i`-th key of group
    /// `g`: one `select1` probe for the run's start, then a short forward
    /// word scan (run length / 64 words, usually zero extra fetches) for
    /// its end — cheaper than a second full select walk.
    #[inline]
    pub fn run_at(&self, g: usize, i: usize) -> (usize, usize) {
        let k = self.key_bounds[g] as usize + i;
        if k == 0 {
            (0, self.last.select1(0) + 1)
        } else {
            let prev = self.last.select1(k - 1);
            let end = self.last.next_one(prev + 1) + 1;
            (prev + 1, end - prev - 1)
        }
    }

    /// The run length of the `i`-th key of group `g`.
    #[inline]
    pub fn run_len_at(&self, g: usize, i: usize) -> usize {
        self.run_at(g, i).1
    }

    /// Start of group `g`'s value range (the first key's run begins here).
    #[inline]
    pub fn val_start(&self, g: usize) -> usize {
        self.val_bounds[g] as usize
    }

    /// The run beginning at value position `start`, found by scanning the
    /// delimiter bitmap forward — amortised O(1) per run when sweeping a
    /// group sequentially, vs two `select1` probes for random access.
    #[inline]
    pub fn run_from(&self, start: usize) -> (usize, usize) {
        let end = self.last.next_one(start) + 1;
        (start, end - start)
    }

    /// A streaming scanner yielding consecutive runs from value position
    /// `start` — the group-sweep fast path: the delimiter bitmap is
    /// walked word-at-a-time with each word fetched once, where repeated
    /// [`WaveIndex::run_from`] calls re-fetch their starting word per run.
    pub fn run_scanner(&self, start: usize) -> RunScanner<'_> {
        RunScanner {
            ones: self.last.one_scanner(start),
            next_start: start,
        }
    }

    /// Per-component sizes `(keys, bitmap, values, bounds)` in bytes.
    pub fn component_sizes(&self) -> (usize, usize, usize, usize) {
        (
            self.keys.size_in_bytes(),
            self.last.size_in_bytes(),
            self.vals.size_in_bytes(),
            (self.key_bounds.len() + self.val_bounds.len()) * 4,
        )
    }

    /// Total resident bytes.
    pub fn size_in_bytes(&self) -> usize {
        let (k, b, v, bounds) = self.component_sizes();
        k + b + v + bounds
    }

    /// The serialisable parts: `(key_bounds, val_bounds, keys, last, vals)`.
    pub fn parts(&self) -> (&[u32], &[u32], &PackedSeq, &RsBitVec, &PackedSeq) {
        (
            &self.key_bounds,
            &self.val_bounds,
            &self.keys,
            &self.last,
            &self.vals,
        )
    }
}

/// A streaming run scanner over a [`WaveIndex`] group; see
/// [`WaveIndex::run_scanner`].
#[derive(Debug, Clone)]
pub struct RunScanner<'a> {
    ones: OneScanner<'a>,
    next_start: usize,
}

impl RunScanner<'_> {
    /// The next run `(start, len)`, consuming it. Panics past the final
    /// run of the value stream.
    #[inline]
    pub fn next_run(&mut self) -> (usize, usize) {
        let end = self.ones.next_one() + 1;
        let run = (self.next_start, end - self.next_start);
        self.next_start = end;
        run
    }
}

/// Incremental [`WaveIndex`] builder: call [`WaveBuilder::begin_group`] per
/// group, then [`WaveBuilder::push_run`] for each key in ascending order.
#[derive(Debug)]
pub struct WaveBuilder {
    key_width: u32,
    val_width: u32,
    key_bounds: Vec<u32>,
    val_bounds: Vec<u32>,
    keys: Vec<u32>,
    last: BitVecBuilder,
    vals: Vec<u32>,
}

impl WaveBuilder {
    /// Creates a builder for keys/values of the given bit widths.
    pub fn new(key_width: u32, val_width: u32) -> WaveBuilder {
        WaveBuilder {
            key_width,
            val_width,
            key_bounds: vec![0],
            val_bounds: vec![0],
            keys: Vec::new(),
            last: BitVecBuilder::new(),
            vals: Vec::new(),
        }
    }

    /// Starts the next group.
    pub fn begin_group(&mut self) {
        self.key_bounds.push(self.keys.len() as u32);
        self.val_bounds.push(self.vals.len() as u32);
    }

    /// Appends one key and its non-empty, ascending value run.
    pub fn push_run(&mut self, key: u32, run: impl IntoIterator<Item = u32>) {
        self.keys.push(key);
        let before = self.vals.len();
        for v in run {
            self.vals.push(v);
            self.last.push(false);
        }
        assert!(self.vals.len() > before, "empty adjacency run for {key}");
        // Re-mark the final value of the run.
        let fixed = self.last.len() - 1;
        self.last.words[fixed / 64] |= 1u64 << (fixed % 64);
        *self.key_bounds.last_mut().expect("bounds are never empty") = self.keys.len() as u32;
        *self.val_bounds.last_mut().expect("bounds are never empty") = self.vals.len() as u32;
    }

    /// Freezes into an immutable wave.
    pub fn finish(self) -> WaveIndex {
        let WaveBuilder {
            key_width,
            val_width,
            key_bounds,
            val_bounds,
            keys,
            last,
            vals,
        } = self;
        WaveIndex::from_parts(
            key_bounds,
            val_bounds,
            PackedSeq::from_values(key_width, keys),
            last.finish(),
            PackedSeq::from_values(val_width, vals),
        )
    }
}

/// The succinct triple store: an SPO wave (per predicate: subjects →
/// object runs), an OPS wave (per predicate: objects → subject runs), and
/// a subject→predicates wave, all rank/select-delimited packed sequences.
#[derive(Debug, Clone)]
pub struct BitmapTriples {
    /// Per predicate: subject keys, object runs.
    pub(crate) spo: WaveIndex,
    /// Per predicate: object keys, subject runs.
    pub(crate) ops: WaveIndex,
    /// Single-group wave: subject keys, predicate runs.
    pub(crate) sp: WaveIndex,
}

impl BitmapTriples {
    /// Assembles the store from its three waves.
    pub fn from_waves(spo: WaveIndex, ops: WaveIndex, sp: WaveIndex) -> BitmapTriples {
        assert_eq!(
            spo.num_groups(),
            ops.num_groups(),
            "SPO and OPS predicate counts disagree"
        );
        assert_eq!(sp.num_groups(), 1, "subject-preds wave is single-group");
        BitmapTriples { spo, ops, sp }
    }

    /// The SPO wave.
    pub fn spo(&self) -> &WaveIndex {
        &self.spo
    }

    /// The OPS wave.
    pub fn ops(&self) -> &WaveIndex {
        &self.ops
    }

    /// The subject→predicates wave.
    pub fn sp(&self) -> &WaveIndex {
        &self.sp
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.spo.num_groups()
    }

    /// Total facts across predicates.
    pub fn num_facts_total(&self) -> usize {
        self.spo.vals().len()
    }

    /// Fact count of one predicate.
    #[inline]
    pub fn num_facts(&self, p: PredId) -> usize {
        self.spo.num_vals(p.idx())
    }

    /// Distinct subjects of one predicate.
    #[inline]
    pub fn num_subjects(&self, p: PredId) -> usize {
        self.spo.num_keys(p.idx())
    }

    /// Distinct objects of one predicate.
    #[inline]
    pub fn num_objects(&self, p: PredId) -> usize {
        self.ops.num_keys(p.idx())
    }

    /// The value run for `objects(p, s)` as `(start, len)` into
    /// [`WaveIndex::vals`] of the SPO wave.
    #[inline]
    pub fn objects_run(&self, p: PredId, s: NodeId) -> Option<(usize, usize)> {
        let i = self.spo.find(p.idx(), s.0)?;
        Some(self.spo.run_at(p.idx(), i))
    }

    /// The value run for `subjects(p, o)` in the OPS wave.
    #[inline]
    pub fn subjects_run(&self, p: PredId, o: NodeId) -> Option<(usize, usize)> {
        let i = self.ops.find(p.idx(), o.0)?;
        Some(self.ops.run_at(p.idx(), i))
    }

    /// The value run for `preds_of_subject(s)` in the SP wave.
    #[inline]
    pub fn preds_run(&self, s: NodeId) -> Option<(usize, usize)> {
        let i = self.sp.find(0, s.0)?;
        Some(self.sp.run_at(0, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_covers_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX as u64), 32);
    }

    #[test]
    fn packed_seq_roundtrip_all_widths() {
        for width in 1..=32u32 {
            let max = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let values: Vec<u32> = (0..200u32)
                .map(|i| (i.wrapping_mul(2_654_435_761)) % max.saturating_add(1).max(1))
                .chain([0, max])
                .collect();
            let seq = PackedSeq::from_values(width, values.iter().copied());
            assert_eq!(seq.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(seq.get(i), v, "width {width}, index {i}");
            }
        }
    }

    #[test]
    fn packed_seq_binary_search() {
        let seq = PackedSeq::from_values(7, [3u32, 9, 27, 81, 100]);
        assert_eq!(seq.binary_search_range(0, 5, 27), Ok(2));
        assert_eq!(seq.binary_search_range(0, 5, 28), Err(3));
        assert_eq!(seq.binary_search_range(2, 5, 3), Err(2));
        assert_eq!(seq.binary_search_range(0, 0, 3), Err(0));
    }

    #[test]
    fn packed_seq_zero_copy_view_matches_owned() {
        let values: Vec<u32> = (0..500).map(|i| i * 37 % 1024).collect();
        let owned = PackedSeq::from_values(10, values.iter().copied());
        let mut buf = bytes::BytesMut::new();
        owned.words().write_le(&mut buf);
        let shared = PackedSeq::from_words(WordSeq::Shared(buf.freeze()), 10, values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(shared.get(i), v);
        }
    }

    #[test]
    fn rank_select_agree_with_naive() {
        let mut b = BitVecBuilder::new();
        let pattern: Vec<bool> = (0..1500usize)
            .map(|i| (i * i + i / 3) % 7 < 2 || i % 64 == 63)
            .collect();
        for &bit in &pattern {
            b.push(bit);
        }
        let bv = b.finish();
        assert_eq!(bv.len(), pattern.len());
        let mut ones = 0usize;
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(bv.rank1(i), ones, "rank at {i}");
            assert_eq!(bv.get(i), bit);
            if bit {
                assert_eq!(bv.select1(ones), i, "select of one #{ones}");
                ones += 1;
            }
        }
        assert_eq!(bv.count_ones(), ones);
        assert_eq!(bv.rank1(pattern.len()), ones);
    }

    #[test]
    fn select_directory_handles_sparse_and_dense_extremes() {
        // Sparse: one set bit every 997 positions — samples are far apart
        // and most superblocks are empty.
        let mut b = BitVecBuilder::new();
        let mut expected = Vec::new();
        for i in 0..50_000usize {
            let bit = i % 997 == 0;
            if bit {
                expected.push(i);
            }
            b.push(bit);
        }
        let bv = b.finish();
        for (k, &pos) in expected.iter().enumerate() {
            assert_eq!(bv.select1(k), pos, "sparse select of one #{k}");
        }

        // Dense: all ones — every sample lands SELECT_SAMPLE bits apart.
        let mut b = BitVecBuilder::new();
        for _ in 0..(SELECT_SAMPLE * 5 + 3) {
            b.push(true);
        }
        let bv = b.finish();
        for k in 0..bv.count_ones() {
            assert_eq!(bv.select1(k), k, "dense select of one #{k}");
        }

        // Exactly one sample boundary: SELECT_SAMPLE ones then a long tail
        // of zeros then one more one (the 64th one starts a new sample).
        let mut b = BitVecBuilder::new();
        for _ in 0..SELECT_SAMPLE {
            b.push(true);
        }
        for _ in 0..10_000 {
            b.push(false);
        }
        b.push(true);
        let bv = b.finish();
        assert_eq!(bv.select1(SELECT_SAMPLE - 1), SELECT_SAMPLE - 1);
        assert_eq!(bv.select1(SELECT_SAMPLE), SELECT_SAMPLE + 10_000);
    }

    #[test]
    #[should_panic(expected = "select1 out of range")]
    fn select_past_last_one_panics() {
        let mut b = BitVecBuilder::new();
        b.push(true);
        b.push(false);
        b.finish().select1(1);
    }

    #[test]
    fn rank_select_on_zero_copy_words() {
        let mut b = BitVecBuilder::new();
        for i in 0..700usize {
            b.push(i % 5 == 0);
        }
        let owned = b.finish();
        let mut buf = bytes::BytesMut::new();
        owned.words().write_le(&mut buf);
        let shared = RsBitVec::from_words(WordSeq::Shared(buf.freeze()), owned.len());
        assert_eq!(shared.count_ones(), owned.count_ones());
        for k in 0..shared.count_ones() {
            assert_eq!(shared.select1(k), owned.select1(k));
        }
    }

    #[test]
    fn wave_index_runs_and_lookups() {
        // Two groups: group 0 has keys {2: [1, 4], 7: [0]}, group 1 has
        // {2: [9]}.
        let mut w = WaveBuilder::new(4, 5);
        w.begin_group();
        w.push_run(2, [1, 4]);
        w.push_run(7, [0]);
        w.begin_group();
        w.push_run(2, [9]);
        let wave = w.finish();

        assert_eq!(wave.num_groups(), 2);
        assert_eq!(wave.num_keys(0), 2);
        assert_eq!(wave.num_vals(0), 3);
        assert_eq!(wave.num_keys(1), 1);
        assert_eq!(wave.key_at(0, 1), 7);
        assert_eq!(wave.find(0, 2), Some(0));
        assert_eq!(wave.find(0, 3), None);
        assert_eq!(wave.find(1, 2), Some(0));
        assert_eq!(wave.run_at(0, 0), (0, 2));
        assert_eq!(wave.run_at(0, 1), (2, 1));
        assert_eq!(wave.run_at(1, 0), (3, 1));
        assert_eq!(wave.vals().get(3), 9);
    }

    #[test]
    fn empty_groups_are_fine() {
        let mut w = WaveBuilder::new(3, 3);
        w.begin_group(); // empty predicate
        w.begin_group();
        w.push_run(1, [2, 3]);
        w.begin_group(); // empty again
        let wave = w.finish();
        assert_eq!(wave.num_groups(), 3);
        assert_eq!(wave.num_keys(0), 0);
        assert_eq!(wave.num_vals(0), 0);
        assert_eq!(wave.find(0, 1), None);
        assert_eq!(wave.num_keys(1), 1);
        assert_eq!(wave.run_at(1, 0), (0, 2));
    }

    #[test]
    #[should_panic(expected = "empty adjacency run")]
    fn empty_runs_are_rejected() {
        let mut w = WaveBuilder::new(3, 3);
        w.begin_group();
        w.push_run(1, []);
    }

    #[test]
    fn select_in_word_matches_bit_clear_loop() {
        let words = [
            1u64,
            u64::MAX,
            0x8000_0000_0000_0001,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
            1u64 << 63,
            0x00FF_00FF_00FF_00FF,
            0xdead_beef_cafe_f00d,
        ];
        for &w in &words {
            for k in 0..w.count_ones() as u64 {
                let mut naive = w;
                for _ in 0..k {
                    naive &= naive - 1;
                }
                assert_eq!(
                    select_in_word(w, k),
                    naive.trailing_zeros(),
                    "word {w:#x}, k {k}"
                );
            }
        }
    }

    #[test]
    fn cursor_and_decode_run_match_get_all_widths() {
        for width in 1..=32u32 {
            let max = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let values: Vec<u32> = (0..300u32)
                .map(|i| (i.wrapping_mul(2_654_435_761)) % max.saturating_add(1).max(1))
                .collect();
            let seq = PackedSeq::from_values(width, values.iter().copied());
            // Every (start, len) alignment matters: straddles differ.
            for start in [0usize, 1, 7, 63, 64, 65, 130] {
                let len = (values.len() - start).min(71);
                let want = &values[start..start + len];
                let cursed: Vec<u32> = seq.cursor(start, len).collect();
                assert_eq!(cursed, want, "cursor width {width} start {start}");
                let mut bulk = Vec::new();
                seq.decode_run(start, len, &mut bulk);
                assert_eq!(bulk, want, "decode_run width {width} start {start}");
            }
            assert_eq!(seq.cursor(0, 0).next(), None);
        }
    }

    #[test]
    fn one_scanner_and_run_scanner_match_random_access() {
        let mut b = BitVecBuilder::new();
        let pattern: Vec<bool> = (0..3000usize)
            .map(|i| (i * 31 + i / 5) % 11 < 2 || i == 2999)
            .collect();
        for &bit in &pattern {
            b.push(bit);
        }
        let bv = b.finish();
        let mut sc = bv.one_scanner(0);
        for k in 0..bv.count_ones() {
            assert_eq!(sc.next_one(), bv.select1(k), "one #{k}");
        }
        // Starting mid-way, including exactly on a set bit.
        let third = bv.select1(bv.count_ones() / 3);
        let mut sc = bv.one_scanner(third);
        assert_eq!(sc.next_one(), third);

        // Run scanner over a wave replays run_at exactly.
        let mut w = WaveBuilder::new(8, 8);
        w.begin_group();
        for key in 0..40u32 {
            let run: Vec<u32> = (0..(key % 7 + 1)).collect();
            w.push_run(key, run);
        }
        let wave = w.finish();
        let mut runs = wave.run_scanner(wave.val_start(0));
        for i in 0..wave.num_keys(0) {
            assert_eq!(runs.next_run(), wave.run_at(0, i), "run #{i}");
        }
    }
}
