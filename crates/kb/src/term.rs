//! RDF terms: IRIs, literals, and blank nodes.
//!
//! A KB `K` is a set of triples `p(s, o)` with `p ∈ P`, `s ∈ I ∪ B`, and
//! `o ∈ I ∪ L ∪ B` (paper §2.1). Terms are parsed into [`Term`] values and
//! then dictionary-encoded; hot code paths only see integer ids.

use std::fmt;

/// The kind of a node term (subject or object position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TermKind {
    /// An IRI-identified entity (`I` in the paper).
    Iri,
    /// A literal value (`L`): string, number, or typed/tagged literal.
    Literal,
    /// A blank node (`B`): anonymous entity.
    Blank,
}

/// A fully materialised RDF term, used at the parsing / display boundary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// `<http://…>` — stored without the angle brackets.
    Iri(String),
    /// A literal with optional datatype IRI or language tag.
    Literal {
        /// The lexical form, unescaped.
        lexical: String,
        /// Datatype IRI (without brackets), if any. Mutually exclusive with
        /// `lang` in well-formed RDF; we do not enforce that at parse time.
        datatype: Option<String>,
        /// Language tag (`@en`), if any.
        lang: Option<String>,
    },
    /// `_:label` — stored without the `_:` prefix.
    Blank(String),
}

impl Term {
    /// Creates a plain IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Creates a plain string literal (no datatype, no language tag).
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal {
            lexical: s.into(),
            datatype: None,
            lang: None,
        }
    }

    /// Creates a typed literal.
    pub fn typed_literal(s: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: s.into(),
            datatype: Some(datatype.into()),
            lang: None,
        }
    }

    /// Creates a language-tagged literal.
    pub fn lang_literal(s: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal {
            lexical: s.into(),
            datatype: None,
            lang: Some(lang.into()),
        }
    }

    /// Creates a blank node.
    pub fn blank(s: impl Into<String>) -> Self {
        Term::Blank(s.into())
    }

    /// The [`TermKind`] of this term.
    pub fn kind(&self) -> TermKind {
        match self {
            Term::Iri(_) => TermKind::Iri,
            Term::Literal { .. } => TermKind::Literal,
            Term::Blank(_) => TermKind::Blank,
        }
    }

    /// True for IRI terms (entities in `I`).
    pub fn is_iri(&self) -> bool {
        self.kind() == TermKind::Iri
    }

    /// True for literal terms.
    pub fn is_literal(&self) -> bool {
        self.kind() == TermKind::Literal
    }

    /// True for blank nodes.
    pub fn is_blank(&self) -> bool {
        self.kind() == TermKind::Blank
    }

    /// Serialises the term into its canonical dictionary key. The key is a
    /// compact, unambiguous string representation used for interning:
    ///
    /// * IRI       → the IRI itself (IRIs cannot start with `"` or `_:`)
    /// * literal   → N-Triples surface form (`"lex"`, `"lex"@en`, `"lex"^^<dt>`)
    /// * blank     → `_:label`
    pub fn dict_key(&self) -> String {
        match self {
            Term::Iri(s) => s.clone(),
            Term::Literal {
                lexical,
                datatype,
                lang,
            } => {
                let mut out = String::with_capacity(lexical.len() + 16);
                out.push('"');
                crate::ntriples::escape_into(lexical, &mut out);
                out.push('"');
                if let Some(l) = lang {
                    out.push('@');
                    out.push_str(l);
                } else if let Some(dt) = datatype {
                    out.push_str("^^<");
                    out.push_str(dt);
                    out.push('>');
                }
                out
            }
            Term::Blank(s) => format!("_:{s}"),
        }
    }

    /// Parses a dictionary key (produced by [`Term::dict_key`]) back into a
    /// [`Term`]. Panics on malformed keys — keys only ever come from the
    /// dictionary itself, so malformation is a logic error.
    pub fn from_dict_key(key: &str) -> Term {
        if let Some(rest) = key.strip_prefix("_:") {
            return Term::Blank(rest.to_string());
        }
        if key.starts_with('"') {
            return crate::ntriples::parse_literal(key)
                .expect("dictionary literal keys are produced by dict_key and must be valid");
        }
        Term::Iri(key.to_string())
    }

    /// A short human-readable name: the IRI local name (after the last `/`
    /// or `#`), the literal lexical form, or the blank label.
    pub fn short_name(&self) -> &str {
        match self {
            Term::Iri(s) => {
                let cut = s.rfind(['/', '#', ':']).map(|i| i + 1).unwrap_or(0);
                &s[cut..]
            }
            Term::Literal { lexical, .. } => lexical,
            Term::Blank(s) => s,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal { .. } => write!(f, "{}", self.dict_key()),
            Term::Blank(s) => write!(f, "_:{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_predicates() {
        assert!(Term::iri("http://x/a").is_iri());
        assert!(Term::literal("x").is_literal());
        assert!(Term::blank("b0").is_blank());
        assert_eq!(Term::iri("a").kind(), TermKind::Iri);
        assert_eq!(Term::literal("a").kind(), TermKind::Literal);
        assert_eq!(Term::blank("a").kind(), TermKind::Blank);
    }

    #[test]
    fn dict_key_roundtrip_iri() {
        let t = Term::iri("http://dbpedia.org/resource/Paris");
        assert_eq!(Term::from_dict_key(&t.dict_key()), t);
    }

    #[test]
    fn dict_key_roundtrip_blank() {
        let t = Term::blank("node42");
        assert_eq!(t.dict_key(), "_:node42");
        assert_eq!(Term::from_dict_key(&t.dict_key()), t);
    }

    #[test]
    fn dict_key_roundtrip_plain_literal() {
        let t = Term::literal("hello \"world\"\nnext");
        assert_eq!(Term::from_dict_key(&t.dict_key()), t);
    }

    #[test]
    fn dict_key_roundtrip_typed_literal() {
        let t = Term::typed_literal("42", "http://www.w3.org/2001/XMLSchema#integer");
        assert_eq!(Term::from_dict_key(&t.dict_key()), t);
    }

    #[test]
    fn dict_key_roundtrip_lang_literal() {
        let t = Term::lang_literal("Paris", "fr");
        assert_eq!(t.dict_key(), "\"Paris\"@fr");
        assert_eq!(Term::from_dict_key(&t.dict_key()), t);
    }

    #[test]
    fn short_names() {
        assert_eq!(
            Term::iri("http://dbpedia.org/resource/Paris").short_name(),
            "Paris"
        );
        assert_eq!(
            Term::iri("http://xmlns.com/foaf/0.1#name").short_name(),
            "name"
        );
        assert_eq!(Term::iri("no-separator").short_name(), "no-separator");
        assert_eq!(Term::literal("lex").short_name(), "lex");
        assert_eq!(Term::blank("b1").short_name(), "b1");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::blank("b").to_string(), "_:b");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
    }
}
