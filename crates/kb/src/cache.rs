//! A least-recently-used cache.
//!
//! The paper's implementation notes (§3.5.2): *"REMI requires the execution
//! of the same queries multiple times, thus query results are cached in a
//! least-recently-used fashion."* This module provides that cache: a classic
//! hash map + intrusive doubly-linked list over a slab, O(1) for get/put.

use std::hash::Hash;

use crate::fx::FxHashMap;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An LRU cache with a fixed capacity.
///
/// `get` refreshes recency; `put` inserts or updates and evicts the least
/// recently used entry when full. Hit/miss counters support the search
/// statistics reported by the mining harness.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    head: usize,
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.move_to_front(idx);
                Some(&self.slots[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without touching recency or counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slots[idx].value)
    }

    /// Inserts or replaces `key`, evicting the LRU entry when at capacity.
    pub fn put(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.move_to_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let evict = self.tail;
            debug_assert_ne!(evict, NIL);
            self.detach(evict);
            let old_key = self.slots[evict].key.clone();
            self.map.remove(&old_key);
            self.slots[evict].key = key.clone();
            self.slots[evict].value = value;
            self.map.insert(key, evict);
            self.attach_front(evict);
        } else {
            let idx = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, idx);
            self.attach_front(idx);
        }
    }

    /// Fetches `key` or computes, inserts, and returns it.
    pub fn get_or_insert_with(&mut self, key: K, f: impl FnOnce() -> V) -> &V {
        if let Some(&idx) = self.map.get(&key) {
            self.hits += 1;
            self.move_to_front(idx);
            return &self.slots[idx].value;
        }
        self.misses += 1;
        self.put(key.clone(), f());
        let idx = self.map[&key];
        &self.slots[idx].value
    }

    /// Removes everything, keeping counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keeps only the entries `f` approves of, preserving recency order.
    /// Returns how many entries were dropped. O(n); used for targeted
    /// invalidation (e.g. purging stale-generation response entries).
    pub fn retain(&mut self, mut f: impl FnMut(&K, &V) -> bool) -> usize {
        // Record the recency order LRU → MRU, then rebuild by re-putting
        // survivors in that order (put attaches to the front, so the MRU
        // entry ends up at the head again).
        let mut order = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            order.push(idx);
            idx = self.slots[idx].prev;
        }
        let slots = std::mem::take(&mut self.slots);
        self.map.clear();
        self.head = NIL;
        self.tail = NIL;
        let mut payload: Vec<Option<Slot<K, V>>> = slots.into_iter().map(Some).collect();
        let mut dropped = 0usize;
        for i in order {
            let slot = payload[i]
                .take()
                .expect("recency list visits each slot once");
            if f(&slot.key, &slot.value) {
                self.put(slot.key, slot.value);
            } else {
                dropped += 1;
            }
        }
        dropped
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.detach(idx);
        self.attach_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_get_put() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert!(c.get(&1).is_none());
        c.put(1, "one");
        c.put(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&2), Some(&"two"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.get(&1); // 2 becomes LRU
        c.put(3, 30);
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn put_refreshes_existing_key() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // refresh 1; 2 is now LRU
        c.put(3, 30);
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn capacity_one_behaves() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.put(1, 10);
        c.put(2, 20);
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(&20));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let c: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn hit_miss_counters() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.get(&1);
        c.put(1, 1);
        c.get(&1);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn get_or_insert_with_computes_once() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        let mut calls = 0;
        for _ in 0..3 {
            c.get_or_insert_with(7, || {
                calls += 1;
                70
            });
        }
        assert_eq!(calls, 1);
        assert_eq!(c.peek(&7), Some(&70));
    }

    #[test]
    fn retain_preserves_recency_of_survivors() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for k in 0..4 {
            c.put(k, k * 10);
        }
        c.get(&0); // order (LRU→MRU): 1, 2, 3, 0
        let dropped = c.retain(|&k, _| k != 2);
        assert_eq!(dropped, 1);
        assert_eq!(c.len(), 3);
        assert!(c.peek(&2).is_none());
        // Inserting one new entry evicts the LRU survivor (1), not 3 or 0.
        c.put(9, 90);
        c.put(8, 80);
        assert!(c.peek(&1).is_none());
        assert_eq!(c.peek(&3), Some(&30));
        assert_eq!(c.peek(&0), Some(&0));
    }

    #[test]
    fn retain_everything_or_nothing() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for k in 0..3 {
            c.put(k, k);
        }
        assert_eq!(c.retain(|_, _| true), 0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.retain(|_, _| false), 3);
        assert!(c.is_empty());
        assert_eq!(c.retain(|_, _| true), 0); // empty cache is fine
    }

    #[test]
    fn clear_empties_cache() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.put(1, 1);
        c.put(2, 2);
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
        c.put(3, 3);
        assert_eq!(c.get(&3), Some(&3));
    }

    /// Reference model: the cache must behave exactly like a naive
    /// recency-list implementation for any operation sequence.
    #[derive(Debug, Clone)]
    enum Op {
        Get(u8),
        Put(u8, u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>()).prop_map(Op::Get),
            (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
        ]
    }

    proptest! {
        #[test]
        fn prop_matches_reference_model(
            cap in 1usize..8,
            ops in proptest::collection::vec(op_strategy(), 0..200),
        ) {
            let mut cache: LruCache<u8, u16> = LruCache::new(cap);
            // Reference: Vec of (key, value), front = most recent.
            let mut model: Vec<(u8, u16)> = Vec::new();
            for op in ops {
                match op {
                    Op::Get(k) => {
                        let expected = model.iter().position(|&(mk, _)| mk == k).map(|i| {
                            let e = model.remove(i);
                            model.insert(0, e);
                            e.1
                        });
                        prop_assert_eq!(cache.get(&k).copied(), expected);
                    }
                    Op::Put(k, v) => {
                        if let Some(i) = model.iter().position(|&(mk, _)| mk == k) {
                            model.remove(i);
                        } else if model.len() == cap {
                            model.pop();
                        }
                        model.insert(0, (k, v));
                        cache.put(k, v);
                    }
                }
                prop_assert_eq!(cache.len(), model.len());
            }
        }
    }
}
