//! PageRank over the KB's entity link graph.
//!
//! The paper's second prominence metric `pr` is the Wikipedia page rank of
//! an entity (§3.1). Wikipedia's hyperlink structure is external data; the
//! endogenous analogue is the link graph formed by entity-to-entity triples
//! of the KB itself, which exhibits the same power-law prominence shape
//! (DESIGN.md §2). This module runs standard damped power iteration over
//! that graph.

use crate::ids::NodeId;
use crate::store::KnowledgeBase;
use crate::term::TermKind;

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link). Default 0.85.
    pub damping: f64,
    /// Maximum number of iterations. Default 50.
    pub max_iterations: usize,
    /// L1 convergence threshold. Default 1e-9.
    pub tolerance: f64,
    /// Worker tasks for the edge-scatter phase, run on the shared
    /// [`remi_pool::global`] pool. `0` (the default) means "one task per
    /// pool worker". Parallel and sequential runs produce bitwise
    /// identical scores: edges are partitioned on target boundaries, so
    /// every node's additions happen in the same order either way.
    pub threads: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 50,
            tolerance: 1e-9,
            threads: 0,
        }
    }
}

/// The result of a PageRank computation: one score per node id.
#[derive(Debug, Clone)]
pub struct PageRank {
    scores: Vec<f64>,
    iterations: usize,
}

impl PageRank {
    /// The score of a node (0.0 for literals and isolated nodes).
    #[inline]
    pub fn score(&self, n: NodeId) -> f64 {
        self.scores.get(n.idx()).copied().unwrap_or(0.0)
    }

    /// All scores, indexed by node id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Number of iterations performed before convergence.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Node ids sorted by descending score (ties by id).
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.scores.len() as u32).map(NodeId).collect();
        order.sort_by(|&a, &b| {
            self.scores[b.idx()]
                .partial_cmp(&self.scores[a.idx()])
                .expect("pagerank scores are finite")
                .then(a.0.cmp(&b.0))
        });
        order
    }
}

/// Below this edge count the scatter loop runs sequentially: the pool's
/// per-scope coordination would cost more than it saves.
const PARALLEL_EDGE_THRESHOLD: usize = 4096;

/// Splits the target-sorted `edges` into up to `tasks` contiguous runs
/// whose cut points fall on *target boundaries*, so each run scatters
/// into a disjoint node range. Returns the `(node_cut, edge_cut)` fence
/// posts (first `(0, 0)`, last `(n_nodes, edges.len())`).
fn scatter_partitions(n_nodes: usize, edges: &[(u32, u32)], tasks: usize) -> Vec<(usize, usize)> {
    let mut cuts = vec![(0usize, 0usize)];
    for k in 1..tasks {
        let node_cut = edges[k * edges.len() / tasks].0 as usize;
        if node_cut <= cuts.last().expect("non-empty").0 {
            continue; // a hub target swallowed this slice — merge left
        }
        let edge_cut = edges.partition_point(|&(t, _)| (t as usize) < node_cut);
        cuts.push((node_cut, edge_cut));
    }
    cuts.push((n_nodes, edges.len()));
    cuts
}

/// Computes PageRank over the entity-to-entity link graph of `kb`
/// (base triples only; literals excluded; inverse predicates excluded so
/// materialisation does not double edges).
pub fn pagerank(kb: &KnowledgeBase, config: PageRankConfig) -> PageRank {
    let n = kb.num_nodes();
    // Build out-degree and in-edge lists restricted to IRI→IRI links.
    let mut out_degree = vec![0u32; n];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for t in kb.iter_triples() {
        if kb.node_kind(t.s) == TermKind::Literal || kb.node_kind(t.o) == TermKind::Literal {
            continue;
        }
        if t.s == t.o {
            continue; // self-links carry no prominence information
        }
        out_degree[t.s.idx()] += 1;
        edges.push((t.o.0, t.s.0)); // reversed: target receives from source
    }
    edges.sort_unstable();

    let is_node: Vec<bool> = (0..n as u32)
        .map(|i| kb.node_kind(NodeId(i)) != TermKind::Literal)
        .collect();
    let n_active = is_node.iter().filter(|&&b| b).count().max(1);
    let base = (1.0 - config.damping) / n_active as f64;
    let dangling_nodes: Vec<usize> = (0..n)
        .filter(|&i| is_node[i] && out_degree[i] == 0)
        .collect();

    let threads = if config.threads == 0 {
        remi_pool::configured_threads()
    } else {
        config.threads
    };
    let partitions = if threads > 1 && edges.len() >= PARALLEL_EDGE_THRESHOLD {
        scatter_partitions(n, &edges, threads)
    } else {
        Vec::new() // sequential
    };

    let mut rank: Vec<f64> = (0..n)
        .map(|i| {
            if is_node[i] {
                1.0 / n_active as f64
            } else {
                0.0
            }
        })
        .collect();
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let damping = config.damping;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Dangling mass: nodes with no out-links redistribute uniformly.
        let dangling: f64 = dangling_nodes.iter().map(|&i| rank[i]).sum();
        let dangling_share = damping * dangling / n_active as f64;

        if partitions.len() > 2 {
            // Each pool task owns a disjoint node range (and exactly the
            // edges landing in it): no write contention, and per-node
            // accumulation order matches the sequential loop, so results
            // are bitwise identical.
            remi_pool::global().scope(|s| {
                let mut rest: &mut [f64] = &mut next;
                let (rank, out_degree, is_node, edges) = (&rank, &out_degree, &is_node, &edges);
                for w in partitions.windows(2) {
                    let ((node_lo, edge_lo), (node_hi, edge_hi)) = (w[0], w[1]);
                    let (part, tail) = std::mem::take(&mut rest).split_at_mut(node_hi - node_lo);
                    rest = tail;
                    s.spawn(move || {
                        for (i, slot) in part.iter_mut().enumerate() {
                            *slot = if is_node[node_lo + i] {
                                base + dangling_share
                            } else {
                                0.0
                            };
                        }
                        for &(target, source) in &edges[edge_lo..edge_hi] {
                            let share =
                                rank[source as usize] / f64::from(out_degree[source as usize]);
                            part[target as usize - node_lo] += damping * share;
                        }
                    });
                }
            });
        } else {
            for (i, slot) in next.iter_mut().enumerate() {
                *slot = if is_node[i] {
                    base + dangling_share
                } else {
                    0.0
                };
            }
            for &(target, source) in &edges {
                let share = rank[source as usize] / f64::from(out_degree[source as usize]);
                next[target as usize] += damping * share;
            }
        }

        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }

    PageRank {
        scores: rank,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KbBuilder;
    use crate::term::Term;

    #[test]
    fn hub_outranks_leaves() {
        let mut b = KbBuilder::new();
        for i in 0..10 {
            b.add_iri(&format!("e:leaf{i}"), "p:links", "e:hub");
        }
        b.add_iri("e:hub", "p:links", "e:leaf0");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let hub = kb.node_id_by_iri("e:hub").unwrap();
        let leaf5 = kb.node_id_by_iri("e:leaf5").unwrap();
        assert!(pr.score(hub) > pr.score(leaf5));
        assert_eq!(pr.ranking()[0], hub);
    }

    #[test]
    fn scores_sum_to_one() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:b", "p:r", "e:c");
        b.add_iri("e:c", "p:r", "e:a");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:b", "p:r", "e:c");
        b.add_iri("e:c", "p:r", "e:a");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let a = pr.score(kb.node_id_by_iri("e:a").unwrap());
        let b_ = pr.score(kb.node_id_by_iri("e:b").unwrap());
        let c = pr.score(kb.node_id_by_iri("e:c").unwrap());
        assert!((a - b_).abs() < 1e-9 && (b_ - c).abs() < 1e-9);
    }

    #[test]
    fn literals_are_excluded() {
        let mut b = KbBuilder::new();
        b.add(&Term::iri("e:a"), "p:name", &Term::literal("Alice"));
        b.add_iri("e:a", "p:knows", "e:b");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let lit = kb.node_id(&Term::literal("Alice")).unwrap();
        assert_eq!(pr.score(lit), 0.0);
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dangling_nodes_do_not_leak_mass() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:sink"); // sink has no out-links
        b.add_iri("e:b", "p:r", "e:sink");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
        let sink = kb.node_id_by_iri("e:sink").unwrap();
        assert!(pr.score(sink) > pr.score(kb.node_id_by_iri("e:a").unwrap()));
    }

    #[test]
    fn scatter_partitions_align_to_target_boundaries() {
        let edges: Vec<(u32, u32)> = (0..100u32)
            .flat_map(|t| (0..3u32).map(move |s| (t, s)))
            .collect();
        let cuts = scatter_partitions(100, &edges, 4);
        assert_eq!(cuts.first(), Some(&(0, 0)));
        assert_eq!(cuts.last(), Some(&(100, 300)));
        for w in cuts.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
            // Every edge of a run must target the run's node range.
            for &(t, _) in &edges[w[0].1..w[1].1] {
                assert!((w[0].0..w[1].0).contains(&(t as usize)));
            }
        }
    }

    #[test]
    fn scatter_partitions_collapse_on_a_hub_target() {
        let edges: Vec<(u32, u32)> = (0..50u32).map(|s| (7u32, s)).collect();
        let cuts = scatter_partitions(10, &edges, 4);
        assert_eq!(cuts, vec![(0, 0), (7, 0), (10, 50)]);
    }

    /// The pooled scatter must be bitwise identical to the sequential one
    /// (target-aligned partitions preserve per-node accumulation order).
    #[test]
    fn parallel_and_sequential_scores_are_identical() {
        let mut b = KbBuilder::new();
        for i in 0..3000u32 {
            let s = format!("e:n{i}");
            b.add_iri(&s, "p:r", &format!("e:n{}", (i * 7 + 1) % 3000));
            b.add_iri(&s, "p:r", &format!("e:n{}", (i * 13 + 5) % 3000));
        }
        let kb = b.build().unwrap();
        let seq = pagerank(
            &kb,
            PageRankConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let par = pagerank(
            &kb,
            PageRankConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq.iterations(), par.iterations());
        assert!(seq
            .scores()
            .iter()
            .zip(par.scores())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn converges_before_max_iterations_on_small_graphs() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:b", "p:r", "e:a");
        let kb = b.build().unwrap();
        let pr = pagerank(
            &kb,
            PageRankConfig {
                max_iterations: 200,
                ..Default::default()
            },
        );
        assert!(pr.iterations() < 200);
    }
}
