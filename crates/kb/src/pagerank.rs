//! PageRank over the KB's entity link graph.
//!
//! The paper's second prominence metric `pr` is the Wikipedia page rank of
//! an entity (§3.1). Wikipedia's hyperlink structure is external data; the
//! endogenous analogue is the link graph formed by entity-to-entity triples
//! of the KB itself, which exhibits the same power-law prominence shape
//! (DESIGN.md §2). This module runs standard damped power iteration over
//! that graph.

use crate::ids::NodeId;
use crate::store::KnowledgeBase;
use crate::term::TermKind;

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link). Default 0.85.
    pub damping: f64,
    /// Maximum number of iterations. Default 50.
    pub max_iterations: usize,
    /// L1 convergence threshold. Default 1e-9.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }
}

/// The result of a PageRank computation: one score per node id.
#[derive(Debug, Clone)]
pub struct PageRank {
    scores: Vec<f64>,
    iterations: usize,
}

impl PageRank {
    /// The score of a node (0.0 for literals and isolated nodes).
    #[inline]
    pub fn score(&self, n: NodeId) -> f64 {
        self.scores.get(n.idx()).copied().unwrap_or(0.0)
    }

    /// All scores, indexed by node id.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Number of iterations performed before convergence.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Node ids sorted by descending score (ties by id).
    pub fn ranking(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.scores.len() as u32).map(NodeId).collect();
        order.sort_by(|&a, &b| {
            self.scores[b.idx()]
                .partial_cmp(&self.scores[a.idx()])
                .expect("pagerank scores are finite")
                .then(a.0.cmp(&b.0))
        });
        order
    }
}

/// Computes PageRank over the entity-to-entity link graph of `kb`
/// (base triples only; literals excluded; inverse predicates excluded so
/// materialisation does not double edges).
pub fn pagerank(kb: &KnowledgeBase, config: PageRankConfig) -> PageRank {
    let n = kb.num_nodes();
    // Build out-degree and in-edge lists restricted to IRI→IRI links.
    let mut out_degree = vec![0u32; n];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for t in kb.iter_triples() {
        if kb.node_kind(t.s) == TermKind::Literal || kb.node_kind(t.o) == TermKind::Literal {
            continue;
        }
        if t.s == t.o {
            continue; // self-links carry no prominence information
        }
        out_degree[t.s.idx()] += 1;
        edges.push((t.o.0, t.s.0)); // reversed: target receives from source
    }
    edges.sort_unstable();

    let is_node: Vec<bool> = (0..n as u32)
        .map(|i| kb.node_kind(NodeId(i)) != TermKind::Literal)
        .collect();
    let n_active = is_node.iter().filter(|&&b| b).count().max(1);
    let base = (1.0 - config.damping) / n_active as f64;

    let mut rank: Vec<f64> = (0..n)
        .map(|i| {
            if is_node[i] {
                1.0 / n_active as f64
            } else {
                0.0
            }
        })
        .collect();
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Dangling mass: nodes with no out-links redistribute uniformly.
        let dangling: f64 = (0..n)
            .filter(|&i| is_node[i] && out_degree[i] == 0)
            .map(|i| rank[i])
            .sum();
        let dangling_share = config.damping * dangling / n_active as f64;

        for (i, slot) in next.iter_mut().enumerate() {
            *slot = if is_node[i] {
                base + dangling_share
            } else {
                0.0
            };
        }
        for &(target, source) in &edges {
            let share = rank[source as usize] / f64::from(out_degree[source as usize]);
            next[target as usize] += config.damping * share;
        }

        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }

    PageRank {
        scores: rank,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KbBuilder;
    use crate::term::Term;

    #[test]
    fn hub_outranks_leaves() {
        let mut b = KbBuilder::new();
        for i in 0..10 {
            b.add_iri(&format!("e:leaf{i}"), "p:links", "e:hub");
        }
        b.add_iri("e:hub", "p:links", "e:leaf0");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let hub = kb.node_id_by_iri("e:hub").unwrap();
        let leaf5 = kb.node_id_by_iri("e:leaf5").unwrap();
        assert!(pr.score(hub) > pr.score(leaf5));
        assert_eq!(pr.ranking()[0], hub);
    }

    #[test]
    fn scores_sum_to_one() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:b", "p:r", "e:c");
        b.add_iri("e:c", "p:r", "e:a");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:b", "p:r", "e:c");
        b.add_iri("e:c", "p:r", "e:a");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let a = pr.score(kb.node_id_by_iri("e:a").unwrap());
        let b_ = pr.score(kb.node_id_by_iri("e:b").unwrap());
        let c = pr.score(kb.node_id_by_iri("e:c").unwrap());
        assert!((a - b_).abs() < 1e-9 && (b_ - c).abs() < 1e-9);
    }

    #[test]
    fn literals_are_excluded() {
        let mut b = KbBuilder::new();
        b.add(&Term::iri("e:a"), "p:name", &Term::literal("Alice"));
        b.add_iri("e:a", "p:knows", "e:b");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let lit = kb.node_id(&Term::literal("Alice")).unwrap();
        assert_eq!(pr.score(lit), 0.0);
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dangling_nodes_do_not_leak_mass() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:sink"); // sink has no out-links
        b.add_iri("e:b", "p:r", "e:sink");
        let kb = b.build().unwrap();
        let pr = pagerank(&kb, PageRankConfig::default());
        let total: f64 = pr.scores().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total = {total}");
        let sink = kb.node_id_by_iri("e:sink").unwrap();
        assert!(pr.score(sink) > pr.score(kb.node_id_by_iri("e:a").unwrap()));
    }

    #[test]
    fn converges_before_max_iterations_on_small_graphs() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:b");
        b.add_iri("e:b", "p:r", "e:a");
        let kb = b.build().unwrap();
        let pr = pagerank(
            &kb,
            PageRankConfig {
                max_iterations: 200,
                ..Default::default()
            },
        );
        assert!(pr.iterations() < 200);
    }
}
