//! LEB128 variable-length integer codec used by the binary KB format.
//!
//! Sorted id sequences delta-encode to tiny gaps, so varints give the
//! HDT-style compression the paper relies on for its storage layer.

use bytes::{Buf, BufMut};

use crate::error::{KbError, Result};

/// Appends `value` to `out` in unsigned LEB128.
#[inline]
pub fn write_u64(out: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Appends a `u32` as LEB128.
#[inline]
pub fn write_u32(out: &mut impl BufMut, value: u32) {
    write_u64(out, value as u64);
}

/// Reads an unsigned LEB128 value, failing on truncation or overlong input.
#[inline]
pub fn read_u64(buf: &mut impl Buf) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(KbError::Format("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(KbError::Format("varint overflows u64".into()));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(KbError::Format("varint too long".into()));
        }
    }
}

/// Reads a LEB128 value expected to fit a `u32`.
#[inline]
pub fn read_u32(buf: &mut impl Buf) -> Result<u32> {
    let v = read_u64(buf)?;
    u32::try_from(v).map_err(|_| KbError::Format(format!("varint {v} overflows u32")))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str(out: &mut impl BufMut, s: &str) {
    write_u64(out, s.len() as u64);
    out.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn read_str(buf: &mut impl Buf) -> Result<String> {
    let len = read_u64(buf)? as usize;
    if buf.remaining() < len {
        return Err(KbError::Format("truncated string".into()));
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| KbError::Format("invalid UTF-8 in string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, v);
        let mut b = buf.freeze();
        read_u64(&mut b).unwrap()
    }

    #[test]
    fn small_values_are_single_bytes() {
        for v in 0..128u64 {
            let mut buf = BytesMut::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn boundary_values_roundtrip() {
        for v in [0, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, u64::MAX);
        let bytes = buf.freeze();
        let mut cut = bytes.slice(..bytes.len() - 1);
        assert!(read_u64(&mut cut).is_err());
    }

    #[test]
    fn empty_buffer_is_an_error() {
        let mut empty = bytes::Bytes::new();
        assert!(read_u64(&mut empty).is_err());
    }

    #[test]
    fn u32_overflow_detected() {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut b = buf.freeze();
        assert!(read_u32(&mut b).is_err());
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = BytesMut::new();
        write_str(&mut buf, "héllo wörld");
        let mut b = buf.freeze();
        assert_eq!(read_str(&mut b).unwrap(), "héllo wörld");
    }

    #[test]
    fn truncated_string_is_an_error() {
        let mut buf = BytesMut::new();
        write_str(&mut buf, "hello");
        let bytes = buf.freeze();
        let mut cut = bytes.slice(..3);
        assert!(read_str(&mut cut).is_err());
    }

    proptest! {
        #[test]
        fn prop_u64_roundtrip(v in any::<u64>()) {
            prop_assert_eq!(roundtrip(v), v);
        }

        #[test]
        fn prop_string_roundtrip(s in ".{0,200}") {
            let mut buf = BytesMut::new();
            write_str(&mut buf, &s);
            let mut b = buf.freeze();
            prop_assert_eq!(read_str(&mut b).unwrap(), s);
        }

        #[test]
        fn prop_sequences_roundtrip(vs in proptest::collection::vec(any::<u64>(), 0..100)) {
            let mut buf = BytesMut::new();
            for &v in &vs {
                write_u64(&mut buf, v);
            }
            let mut b = buf.freeze();
            for &v in &vs {
                prop_assert_eq!(read_u64(&mut b).unwrap(), v);
            }
            prop_assert!(!b.has_remaining());
        }
    }
}
