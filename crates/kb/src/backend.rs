//! Pluggable storage backends behind the [`TripleStore`] trait.
//!
//! Every layer above `remi-kb` retrieves atom bindings through the same
//! small set of primitives — `objects(p, s)`, `subjects(p, o)`,
//! `contains`, and per-predicate statistics. This module abstracts those
//! primitives over interchangeable physical layouts:
//!
//! * [`CsrStore`](crate::store) — per-predicate compressed sparse rows of
//!   plain `u32` arrays; fastest lookups, largest footprint.
//! * [`BitmapTriples`](crate::succinct) — HDT-style rank/select bitmap
//!   triples over packed integer sequences; ~2–3× smaller, zero-copy
//!   loadable from the `RKB2` binary format.
//!
//! [`KnowledgeBase`](crate::store::KnowledgeBase) holds a [`StoreBackend`]
//! enum rather than a trait object so dispatch is a branch-predictable
//! two-way match instead of a vtable call in every inner loop. Binding
//! lists are returned as [`Bindings`] — a slice view for CSR, a packed
//! run view for the succinct store — with O(1) random access either way.

use crate::ids::{NodeId, PredId};
use crate::store::CsrStore;
use crate::succinct::{bits_for, BitmapTriples, PackedCursor, PackedSeq, WaveBuilder};

/// Which physical layout a [`StoreBackend`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Per-predicate compressed sparse rows (`u32` arrays).
    #[default]
    Csr,
    /// HDT-style succinct bitmap triples (packed sequences + rank/select).
    Succinct,
}

impl Backend {
    /// Parses a backend name (`csr` / `succinct`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "csr" => Some(Backend::Csr),
            "succinct" => Some(Backend::Succinct),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Csr => "csr",
            Backend::Succinct => "succinct",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One side of a merged binding list: the physical shape of a non-merged
/// [`Bindings`] (plain slice or packed run), with O(1) random access.
#[derive(Debug, Clone, Copy)]
pub enum Run<'a> {
    /// A plain sorted slice.
    Slice(&'a [u32]),
    /// `len` values of a [`PackedSeq`] starting at `start`.
    Packed {
        /// The packed value stream.
        seq: &'a PackedSeq,
        /// First value of the run.
        start: usize,
        /// Run length.
        len: usize,
    },
}

impl<'a> Run<'a> {
    /// Number of values in the run.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            Run::Slice(s) => s.len(),
            Run::Packed { len, .. } => len,
        }
    }

    /// True when the run is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th value.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match *self {
            Run::Slice(s) => s[i],
            Run::Packed { seq, start, len } => {
                debug_assert!(i < len);
                seq.get(start + i)
            }
        }
    }

    /// Binary search within the (sorted) run.
    #[inline]
    pub fn binary_search(&self, value: u32) -> Result<usize, usize> {
        match *self {
            Run::Slice(s) => s.binary_search(&value),
            Run::Packed { seq, start, len } => seq
                .binary_search_range(start, start + len, value)
                .map(|abs| abs - start)
                .map_err(|abs| abs - start),
        }
    }
}

/// The `k`-th (0-indexed) element of the sorted merge of two *disjoint*
/// sorted lists: binary search over how many elements the first `k + 1`
/// take from `b` — O(log min(|a|, |b|)), no materialisation.
fn merged_kth(a: Run<'_>, b: &[u32], k: usize) -> u32 {
    let (na, nb) = (a.len(), b.len());
    debug_assert!(k < na + nb, "merged index {k} out of {na}+{nb}");
    let mut lo = (k + 1).saturating_sub(na);
    let mut hi = nb.min(k + 1);
    while lo < hi {
        let j = lo + (hi - lo) / 2;
        // Range bounds guarantee j < nb and k - j < na here. Taking only
        // j elements from b is too few exactly when b[j] still precedes
        // the last element taken from a.
        if b[j] < a.get(k - j) {
            lo = j + 1;
        } else {
            hi = j;
        }
    }
    let j = lo;
    let from_b = if j > 0 { Some(b[j - 1]) } else { None };
    if j <= k {
        let av = a.get(k - j);
        from_b.map_or(av, |bv| bv.max(av))
    } else {
        from_b.expect("k+1 elements all from b")
    }
}

/// A sorted list of bound ids: a borrowed `u32` slice (CSR), a run inside
/// a packed sequence (succinct), or the disjoint sorted merge of a base
/// run and a delta slice (the live delta-overlay view). O(1) length and
/// O(log) worst-case random access in every representation.
#[derive(Debug, Clone, Copy)]
pub enum Bindings<'a> {
    /// A plain sorted slice.
    Slice(&'a [u32]),
    /// `len` values of a [`PackedSeq`] starting at `start`.
    Packed {
        /// The packed value stream.
        seq: &'a PackedSeq,
        /// First value of the run.
        start: usize,
        /// Run length.
        len: usize,
    },
    /// The sorted merge of a base-store run and a disjoint delta slice
    /// (see [`LayeredStore`](crate::delta::LayeredStore)). Neither side
    /// is empty and no id appears on both sides.
    Merged {
        /// The base-store side.
        base: Run<'a>,
        /// The delta side: a sorted slice disjoint from `base`.
        delta: &'a [u32],
    },
}

impl<'a> Bindings<'a> {
    /// The empty binding list.
    pub const EMPTY: Bindings<'static> = Bindings::Slice(&[]);

    /// Merges a base binding list with a disjoint sorted delta slice,
    /// collapsing to the plain representation when either side is empty.
    #[inline]
    pub fn merged(base: Bindings<'a>, delta: &'a [u32]) -> Bindings<'a> {
        if delta.is_empty() {
            return base;
        }
        if base.is_empty() {
            return Bindings::Slice(delta);
        }
        let base = match base {
            Bindings::Slice(s) => Run::Slice(s),
            Bindings::Packed { seq, start, len } => Run::Packed { seq, start, len },
            Bindings::Merged { .. } => {
                unreachable!("layered stores never stack on a layered base")
            }
        };
        Bindings::Merged { base, delta }
    }

    /// Number of bindings.
    #[inline]
    pub fn len(&self) -> usize {
        match *self {
            Bindings::Slice(s) => s.len(),
            Bindings::Packed { len, .. } => len,
            Bindings::Merged { base, delta } => base.len() + delta.len(),
        }
    }

    /// True when no ids are bound.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th binding (ascending order).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match *self {
            Bindings::Slice(s) => s[i],
            Bindings::Packed { seq, start, len } => {
                debug_assert!(i < len);
                seq.get(start + i)
            }
            Bindings::Merged { base, delta } => merged_kth(base, delta, i),
        }
    }

    /// The first binding, if any.
    #[inline]
    pub fn first(&self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(0))
        }
    }

    /// Binary search in the sorted list.
    #[inline]
    pub fn binary_search(&self, value: u32) -> Result<usize, usize> {
        match *self {
            Bindings::Slice(s) => s.binary_search(&value),
            Bindings::Packed { seq, start, len } => seq
                .binary_search_range(start, start + len, value)
                .map(|abs| abs - start)
                .map_err(|abs| abs - start),
            Bindings::Merged { base, delta } => {
                // The merged index of a value is its rank in one side plus
                // its insertion rank in the other (the sides are disjoint).
                match delta.binary_search(&value) {
                    Ok(d) => {
                        let b = base.binary_search(value).unwrap_err();
                        Ok(d + b)
                    }
                    Err(d) => match base.binary_search(value) {
                        Ok(b) => Ok(d + b),
                        Err(b) => Err(d + b),
                    },
                }
            }
        }
    }

    /// Sorted membership test.
    #[inline]
    pub fn contains_sorted(&self, value: u32) -> bool {
        self.binary_search(value).is_ok()
    }

    /// Materialises the list.
    pub fn to_vec(&self) -> Vec<u32> {
        match *self {
            Bindings::Slice(s) => s.to_vec(),
            Bindings::Packed { seq, start, len } => {
                // Unrolled multi-word extraction, not a per-value cursor.
                let mut out = Vec::new();
                seq.decode_run(start, len, &mut out);
                out
            }
            Bindings::Merged { .. } => self.iter().collect(),
        }
    }

    /// Iterates the bindings in ascending order.
    #[inline]
    pub fn iter(&self) -> BindingsIter<'a> {
        match *self {
            Bindings::Slice(s) => BindingsIter::Slice(s.iter()),
            Bindings::Packed { seq, start, len } => BindingsIter::Packed(seq.cursor(start, len)),
            Bindings::Merged { base, delta } => BindingsIter::Merged {
                base,
                bpos: 0,
                delta,
                dpos: 0,
            },
        }
    }
}

impl<'a> From<&'a [u32]> for Bindings<'a> {
    fn from(s: &'a [u32]) -> Self {
        Bindings::Slice(s)
    }
}

impl<'a> From<&'a Vec<u32>> for Bindings<'a> {
    fn from(s: &'a Vec<u32>) -> Self {
        Bindings::Slice(s)
    }
}

impl<'a, const N: usize> From<&'a [u32; N]> for Bindings<'a> {
    fn from(s: &'a [u32; N]) -> Self {
        Bindings::Slice(s)
    }
}

impl<'a> IntoIterator for Bindings<'a> {
    type Item = u32;
    type IntoIter = BindingsIter<'a>;

    fn into_iter(self) -> BindingsIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Bindings<'a> {
    type Item = u32;
    type IntoIter = BindingsIter<'a>;

    fn into_iter(self) -> BindingsIter<'a> {
        self.iter()
    }
}

impl PartialEq for Bindings<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// Iterator over a [`Bindings`] list, yielding `u32` ids.
#[derive(Debug, Clone)]
pub enum BindingsIter<'a> {
    /// Slice cursor.
    Slice(std::slice::Iter<'a, u32>),
    /// Streaming packed-run cursor (one word fetch per `64 / width`
    /// values; see [`PackedSeq::cursor`]).
    Packed(PackedCursor<'a>),
    /// Two-cursor merge over a base run and a disjoint delta slice.
    Merged {
        /// The base-store side.
        base: Run<'a>,
        /// Next base position.
        bpos: usize,
        /// The delta side.
        delta: &'a [u32],
        /// Next delta position.
        dpos: usize,
    },
}

impl Iterator for BindingsIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            BindingsIter::Slice(it) => it.next().copied(),
            BindingsIter::Packed(cur) => cur.next(),
            BindingsIter::Merged {
                base,
                bpos,
                delta,
                dpos,
            } => {
                let b = (*bpos < base.len()).then(|| base.get(*bpos));
                let d = delta.get(*dpos).copied();
                match (b, d) {
                    (Some(bv), Some(dv)) if bv < dv => {
                        *bpos += 1;
                        Some(bv)
                    }
                    (_, Some(dv)) => {
                        *dpos += 1;
                        Some(dv)
                    }
                    (Some(bv), None) => {
                        *bpos += 1;
                        Some(bv)
                    }
                    (None, None) => None,
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            BindingsIter::Slice(it) => it.len(),
            BindingsIter::Packed(cur) => cur.len(),
            BindingsIter::Merged {
                base,
                bpos,
                delta,
                dpos,
            } => (base.len() - bpos) + (delta.len() - dpos),
        };
        (n, Some(n))
    }

    /// O(1): every variant knows its exact remaining length (the merged
    /// base and delta runs are disjoint), so counting never has to
    /// decode values.
    fn count(self) -> usize {
        self.len()
    }
}

impl ExactSizeIterator for BindingsIter<'_> {}

/// A per-component memory breakdown of a backend (resident bytes).
#[derive(Debug, Clone, Default)]
pub struct StoreMemory {
    /// `(component name, bytes)` pairs.
    pub components: Vec<(&'static str, usize)>,
}

impl StoreMemory {
    /// Adds one component.
    pub fn add(&mut self, name: &'static str, bytes: usize) {
        self.components.push((name, bytes));
    }

    /// Total bytes across components.
    pub fn total(&self) -> usize {
        self.components.iter().map(|&(_, b)| b).sum()
    }
}

/// The binding-retrieval primitives every storage backend provides.
///
/// All id lists are sorted ascending; `subject_at`/`object_at` index the
/// distinct keys of a predicate in ascending order, so iteration order is
/// identical across backends — algorithms above this trait produce
/// bit-identical results regardless of the physical layout.
pub trait TripleStore {
    /// Which layout this store uses.
    fn backend(&self) -> Backend;
    /// Number of predicates indexed.
    fn num_preds(&self) -> usize;
    /// Facts with predicate `p`.
    fn num_facts(&self, p: PredId) -> usize;
    /// Distinct subjects of `p`.
    fn num_subjects(&self, p: PredId) -> usize;
    /// Distinct objects of `p`.
    fn num_objects(&self, p: PredId) -> usize;
    /// Objects `o` with `p(s, o)`.
    fn objects(&self, p: PredId, s: NodeId) -> Bindings<'_>;
    /// Subjects `s` with `p(s, o)`.
    fn subjects(&self, p: PredId, o: NodeId) -> Bindings<'_>;
    /// The `i`-th distinct subject of `p`.
    fn subject_at(&self, p: PredId, i: usize) -> NodeId;
    /// Objects of the `i`-th distinct subject of `p`.
    fn objects_at(&self, p: PredId, i: usize) -> Bindings<'_>;
    /// The `i`-th distinct object of `p`.
    fn object_at(&self, p: PredId, i: usize) -> NodeId;
    /// Subjects of the `i`-th distinct object of `p`.
    fn subjects_at(&self, p: PredId, i: usize) -> Bindings<'_>;
    /// How many facts have the `i`-th distinct object of `p` as object.
    fn object_group_len(&self, p: PredId, i: usize) -> usize;
    /// Predicates having `s` as subject.
    fn preds_of_subject(&self, s: NodeId) -> Bindings<'_>;
    /// Membership test for `p(s, o)`.
    fn contains(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        self.objects(p, s).contains_sorted(o.0)
    }
    /// The unified pattern entry point: streams every triple matching
    /// `pat` (any of the 8 bound/unbound shapes) in the deterministic
    /// cross-backend order, with zero materialisation on the common
    /// paths. Unsized (`dyn`) callers use
    /// [`SolutionIter::new`](crate::query::SolutionIter::new) directly.
    fn solve(&self, pat: crate::query::TriplePattern) -> crate::query::SolutionIter<'_>
    where
        Self: Sized,
    {
        crate::query::SolutionIter::new(self, pat)
    }
    /// Per-component resident memory.
    fn memory(&self) -> StoreMemory;
}

/// The enum facade over the concrete backends. A small-variant match at
/// every call keeps dispatch branch-predictable on hot paths (unlike a
/// `dyn TripleStore` vtable).
// One StoreBackend exists per KnowledgeBase — never in collections — so
// the variant size gap costs nothing, while boxing would put a pointer
// chase on every binding lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum StoreBackend {
    /// Compressed sparse rows.
    Csr(CsrStore),
    /// Succinct bitmap triples.
    Succinct(BitmapTriples),
    /// A delta overlay merged over an immutable base store (the live
    /// ingestion view; see [`delta`](crate::delta)).
    Layered(crate::delta::LayeredStore),
}

macro_rules! dispatch {
    ($self:expr, $store:ident => $body:expr) => {
        match $self {
            StoreBackend::Csr($store) => $body,
            StoreBackend::Succinct($store) => $body,
            StoreBackend::Layered($store) => $body,
        }
    };
}

impl TripleStore for StoreBackend {
    #[inline]
    fn backend(&self) -> Backend {
        dispatch!(self, s => s.backend())
    }

    #[inline]
    fn num_preds(&self) -> usize {
        dispatch!(self, s => TripleStore::num_preds(s))
    }

    #[inline]
    fn num_facts(&self, p: PredId) -> usize {
        dispatch!(self, s => TripleStore::num_facts(s, p))
    }

    #[inline]
    fn num_subjects(&self, p: PredId) -> usize {
        dispatch!(self, s => TripleStore::num_subjects(s, p))
    }

    #[inline]
    fn num_objects(&self, p: PredId) -> usize {
        dispatch!(self, s => TripleStore::num_objects(s, p))
    }

    #[inline]
    fn objects(&self, p: PredId, s: NodeId) -> Bindings<'_> {
        dispatch!(self, st => st.objects(p, s))
    }

    #[inline]
    fn subjects(&self, p: PredId, o: NodeId) -> Bindings<'_> {
        dispatch!(self, st => st.subjects(p, o))
    }

    #[inline]
    fn subject_at(&self, p: PredId, i: usize) -> NodeId {
        dispatch!(self, s => s.subject_at(p, i))
    }

    #[inline]
    fn objects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        dispatch!(self, s => s.objects_at(p, i))
    }

    #[inline]
    fn object_at(&self, p: PredId, i: usize) -> NodeId {
        dispatch!(self, s => s.object_at(p, i))
    }

    #[inline]
    fn subjects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        dispatch!(self, s => s.subjects_at(p, i))
    }

    #[inline]
    fn object_group_len(&self, p: PredId, i: usize) -> usize {
        dispatch!(self, s => s.object_group_len(p, i))
    }

    #[inline]
    fn preds_of_subject(&self, s: NodeId) -> Bindings<'_> {
        dispatch!(self, st => st.preds_of_subject(s))
    }

    #[inline]
    fn contains(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        dispatch!(self, st => st.contains(s, p, o))
    }

    fn memory(&self) -> StoreMemory {
        dispatch!(self, s => s.memory())
    }
}

impl StoreBackend {
    /// Rebuilds this store in another layout. `num_nodes` bounds the id
    /// space (needed to size the packed widths). Converting a plain store
    /// to its current layout is a clone; converting a layered store
    /// always materialises the merged view — folding the delta into a
    /// fresh base is exactly what compaction does.
    pub fn to_backend(&self, kind: Backend, num_nodes: usize) -> StoreBackend {
        match (self, kind) {
            (StoreBackend::Csr(_), Backend::Csr)
            | (StoreBackend::Succinct(_), Backend::Succinct) => self.clone(),
            (_, Backend::Succinct) => StoreBackend::Succinct(build_bitmap_triples(self, num_nodes)),
            (_, Backend::Csr) => StoreBackend::Csr(CsrStore::from_store(self, num_nodes)),
        }
    }
}

/// Builds [`BitmapTriples`] from any store by walking its sorted groups.
pub(crate) fn build_bitmap_triples(src: &StoreBackend, num_nodes: usize) -> BitmapTriples {
    let node_width = bits_for(num_nodes.saturating_sub(1) as u64);
    let num_preds = src.num_preds();
    let pred_width = bits_for(num_preds.saturating_sub(1) as u64);

    let mut spo = WaveBuilder::new(node_width, node_width);
    let mut ops = WaveBuilder::new(node_width, node_width);
    for p in (0..num_preds as u32).map(PredId) {
        spo.begin_group();
        for i in 0..src.num_subjects(p) {
            spo.push_run(src.subject_at(p, i).0, src.objects_at(p, i).iter());
        }
        ops.begin_group();
        for i in 0..src.num_objects(p) {
            ops.push_run(src.object_at(p, i).0, src.subjects_at(p, i).iter());
        }
    }

    let mut sp = WaveBuilder::new(node_width, pred_width);
    sp.begin_group();
    for n in (0..num_nodes as u32).map(NodeId) {
        let preds = src.preds_of_subject(n);
        if !preds.is_empty() {
            sp.push_run(n.0, preds.iter());
        }
    }

    BitmapTriples::from_waves(spo.finish(), ops.finish(), sp.finish())
}

impl TripleStore for BitmapTriples {
    fn backend(&self) -> Backend {
        Backend::Succinct
    }

    fn num_preds(&self) -> usize {
        BitmapTriples::num_preds(self)
    }

    #[inline]
    fn num_facts(&self, p: PredId) -> usize {
        BitmapTriples::num_facts(self, p)
    }

    #[inline]
    fn num_subjects(&self, p: PredId) -> usize {
        BitmapTriples::num_subjects(self, p)
    }

    #[inline]
    fn num_objects(&self, p: PredId) -> usize {
        BitmapTriples::num_objects(self, p)
    }

    #[inline]
    fn objects(&self, p: PredId, s: NodeId) -> Bindings<'_> {
        match self.objects_run(p, s) {
            Some((start, len)) => Bindings::Packed {
                seq: self.spo().vals(),
                start,
                len,
            },
            None => Bindings::EMPTY,
        }
    }

    #[inline]
    fn subjects(&self, p: PredId, o: NodeId) -> Bindings<'_> {
        match self.subjects_run(p, o) {
            Some((start, len)) => Bindings::Packed {
                seq: self.ops().vals(),
                start,
                len,
            },
            None => Bindings::EMPTY,
        }
    }

    #[inline]
    fn subject_at(&self, p: PredId, i: usize) -> NodeId {
        NodeId(self.spo().key_at(p.idx(), i))
    }

    #[inline]
    fn objects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        let (start, len) = self.spo().run_at(p.idx(), i);
        Bindings::Packed {
            seq: self.spo().vals(),
            start,
            len,
        }
    }

    #[inline]
    fn object_at(&self, p: PredId, i: usize) -> NodeId {
        NodeId(self.ops().key_at(p.idx(), i))
    }

    #[inline]
    fn subjects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        let (start, len) = self.ops().run_at(p.idx(), i);
        Bindings::Packed {
            seq: self.ops().vals(),
            start,
            len,
        }
    }

    #[inline]
    fn object_group_len(&self, p: PredId, i: usize) -> usize {
        self.ops().run_len_at(p.idx(), i)
    }

    #[inline]
    fn preds_of_subject(&self, s: NodeId) -> Bindings<'_> {
        match self.preds_run(s) {
            Some((start, len)) => Bindings::Packed {
                seq: self.sp().vals(),
                start,
                len,
            },
            None => Bindings::EMPTY,
        }
    }

    fn memory(&self) -> StoreMemory {
        let mut m = StoreMemory::default();
        let (k, b, v, bounds) = self.spo().component_sizes();
        m.add("spo.subjects", k);
        m.add("spo.bitmap", b);
        m.add("spo.objects", v);
        let (k2, b2, v2, bounds2) = self.ops().component_sizes();
        m.add("ops.objects", k2);
        m.add("ops.bitmap", b2);
        m.add("ops.subjects", v2);
        let (k3, b3, v3, bounds3) = self.sp().component_sizes();
        m.add("sp.wave", k3 + b3 + v3 + bounds3);
        m.add("bounds", bounds + bounds2);
        m
    }
}

/// A borrowed, backend-agnostic view of one predicate's index — the
/// replacement for the old `&PredIndex` reference. `Copy`, so it can be
/// passed around freely; every accessor dispatches through the enum.
#[derive(Clone, Copy)]
pub struct PredView<'a> {
    store: &'a StoreBackend,
    p: PredId,
}

impl<'a> PredView<'a> {
    /// Creates a view of predicate `p`.
    pub(crate) fn new(store: &'a StoreBackend, p: PredId) -> Self {
        PredView { store, p }
    }

    /// Objects `o` with `p(s, o)`, sorted ascending.
    #[inline]
    pub fn objects_of(self, s: NodeId) -> Bindings<'a> {
        self.store.objects(self.p, s)
    }

    /// Subjects `s` with `p(s, o)`, sorted ascending.
    #[inline]
    pub fn subjects_of(self, o: NodeId) -> Bindings<'a> {
        self.store.subjects(self.p, o)
    }

    /// Number of facts with this predicate.
    #[inline]
    pub fn num_facts(self) -> usize {
        self.store.num_facts(self.p)
    }

    /// Number of distinct subjects.
    #[inline]
    pub fn num_subjects(self) -> usize {
        self.store.num_subjects(self.p)
    }

    /// Number of distinct objects.
    #[inline]
    pub fn num_objects(self) -> usize {
        self.store.num_objects(self.p)
    }

    /// How many facts have `o` as object (the conditional frequency
    /// `fr(o | p)` of §3.5.3).
    #[inline]
    pub fn object_frequency(self, o: NodeId) -> usize {
        self.subjects_of(o).len()
    }

    /// How many facts have `s` as subject.
    #[inline]
    pub fn subject_frequency(self, s: NodeId) -> usize {
        self.objects_of(s).len()
    }

    /// Tests whether `p(s, o)` holds.
    #[inline]
    pub fn contains(self, s: NodeId, o: NodeId) -> bool {
        self.store.contains(s, self.p, o)
    }

    /// Iterates `(subject, objects)` groups in ascending subject order.
    /// On the succinct backend the run delimiters are scanned
    /// sequentially — amortised O(1) per group instead of two `select1`
    /// probes each.
    pub fn iter_subjects(self) -> GroupIter<'a> {
        GroupIter::new(self.store, self.p, GroupDirection::BySubject)
    }

    /// Iterates distinct objects in ascending order.
    pub fn iter_objects(self) -> impl Iterator<Item = NodeId> + 'a {
        (0..self.num_objects()).map(move |i| self.store.object_at(self.p, i))
    }

    /// Iterates `(object, subjects)` groups in ascending object order
    /// (sequential-scan, like [`PredView::iter_subjects`]).
    pub fn iter_objects_grouped(self) -> GroupIter<'a> {
        GroupIter::new(self.store, self.p, GroupDirection::ByObject)
    }

    /// Iterates `(object, conditional-frequency)` over distinct objects.
    pub fn iter_object_frequencies(self) -> impl Iterator<Item = (NodeId, usize)> + 'a {
        self.iter_objects_grouped().map(|(o, subs)| (o, subs.len()))
    }
}

/// Which adjacency direction a [`GroupIter`] walks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GroupDirection {
    /// `(subject, objects)` groups.
    BySubject,
    /// `(object, subjects)` groups.
    ByObject,
}

/// Sequential iterator over one predicate's `(key, values)` groups.
///
/// For the CSR backend each step is two slice reads; for the succinct
/// backend the run-delimiter bitmap is swept word-at-a-time, making a full
/// predicate scan O(facts/64 + groups) instead of O(groups · log facts).
/// For the layered backend the base scan and the delta's sorted groups
/// advance in lockstep — a streaming merge, never a rebuild.
pub struct GroupIter<'a> {
    i: usize,
    n: usize,
    inner: GroupInner<'a>,
}

enum GroupInner<'a> {
    Csr {
        store: &'a CsrStore,
        p: PredId,
        dir: GroupDirection,
    },
    Succinct {
        wave: &'a crate::succinct::WaveIndex,
        g: usize,
        /// Streaming delimiter scan: each bitmap word is fetched once
        /// across the whole group sweep.
        runs: crate::succinct::RunScanner<'a>,
    },
    Layered {
        /// Group scan over the base store (`None` for predicates the base
        /// has never seen).
        base: Option<Box<GroupIter<'a>>>,
        /// The base side's next group, peeked for the merge.
        base_next: Option<(NodeId, Bindings<'a>)>,
        /// The delta side: sorted per-key groups of this predicate.
        delta: &'a crate::store::Csr,
        /// Next delta group index.
        di: usize,
    },
}

impl<'a> GroupIter<'a> {
    fn new(store: &'a StoreBackend, p: PredId, dir: GroupDirection) -> Self {
        let n = match dir {
            GroupDirection::BySubject => store.num_subjects(p),
            GroupDirection::ByObject => store.num_objects(p),
        };
        let inner = match store {
            StoreBackend::Csr(s) => GroupInner::Csr { store: s, p, dir },
            StoreBackend::Succinct(bt) => {
                let wave = match dir {
                    GroupDirection::BySubject => bt.spo(),
                    GroupDirection::ByObject => bt.ops(),
                };
                GroupInner::Succinct {
                    wave,
                    g: p.idx(),
                    runs: wave.run_scanner(wave.val_start(p.idx())),
                }
            }
            StoreBackend::Layered(l) => {
                let mut base = (p.idx() < l.base_pred_count())
                    .then(|| Box::new(GroupIter::new(l.base_store(), p, dir)));
                let base_next = base.as_mut().and_then(|it| it.next());
                GroupInner::Layered {
                    base,
                    base_next,
                    delta: l.delta_groups(p, dir == GroupDirection::ByObject),
                    di: 0,
                }
            }
        };
        GroupIter { i: 0, n, inner }
    }
}

impl<'a> Iterator for GroupIter<'a> {
    type Item = (NodeId, Bindings<'a>);

    fn next(&mut self) -> Option<(NodeId, Bindings<'a>)> {
        if self.i >= self.n {
            return None;
        }
        let i = self.i;
        self.i += 1;
        match &mut self.inner {
            GroupInner::Csr { store, p, dir } => Some(match dir {
                GroupDirection::BySubject => (store.subject_at(*p, i), store.objects_at(*p, i)),
                GroupDirection::ByObject => (store.object_at(*p, i), store.subjects_at(*p, i)),
            }),
            GroupInner::Succinct { wave, g, runs } => {
                let key = wave.key_at(*g, i);
                let (start, len) = runs.next_run();
                Some((
                    NodeId(key),
                    Bindings::Packed {
                        seq: wave.vals(),
                        start,
                        len,
                    },
                ))
            }
            GroupInner::Layered {
                base,
                base_next,
                delta,
                di,
            } => {
                let d = (*di < delta.num_keys()).then(|| (delta.keys()[*di], delta.group(*di)));
                match (*base_next, d) {
                    (Some((bk, bv)), Some((dk, _))) if bk.0 < dk => {
                        *base_next = base.as_mut().and_then(|it| it.next());
                        Some((bk, bv))
                    }
                    (Some((bk, bv)), Some((dk, dv))) if bk.0 == dk => {
                        *base_next = base.as_mut().and_then(|it| it.next());
                        *di += 1;
                        Some((bk, Bindings::merged(bv, dv)))
                    }
                    (_, Some((dk, dv))) => {
                        *di += 1;
                        Some((NodeId(dk), Bindings::Slice(dv)))
                    }
                    (Some((bk, bv)), None) => {
                        *base_next = base.as_mut().and_then(|it| it.next());
                        Some((bk, bv))
                    }
                    (None, None) => None,
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.n - self.i;
        (n, Some(n))
    }
}

impl ExactSizeIterator for GroupIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_roundtrip() {
        for b in [Backend::Csr, Backend::Succinct] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(Backend::parse("hdt"), None);
    }

    #[test]
    fn slice_bindings_behave_like_slices() {
        let data = vec![2u32, 5, 9, 11];
        let b = Bindings::from(&data);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.first(), Some(2));
        assert_eq!(b.get(2), 9);
        assert!(b.contains_sorted(5));
        assert!(!b.contains_sorted(6));
        assert_eq!(b.to_vec(), data);
        assert_eq!(b.iter().collect::<Vec<_>>(), data);
        let total: u32 = b.into_iter().sum();
        assert_eq!(total, 27);
    }

    #[test]
    fn packed_bindings_match_slice_bindings() {
        let values: Vec<u32> = vec![1, 4, 6, 6, 8, 20, 33];
        let seq = PackedSeq::from_values(6, values.iter().copied());
        let packed = Bindings::Packed {
            seq: &seq,
            start: 2,
            len: 4,
        };
        let slice = Bindings::Slice(&values[2..6]);
        assert_eq!(packed, slice);
        assert_eq!(packed.to_vec(), &values[2..6]);
        assert_eq!(packed.binary_search(8), slice.binary_search(8));
        assert_eq!(packed.binary_search(7), slice.binary_search(7));
        assert_eq!(packed.first(), Some(6));
        let (lo, hi) = packed.iter().size_hint();
        assert_eq!((lo, hi), (4, Some(4)));
    }

    #[test]
    fn empty_bindings() {
        assert!(Bindings::EMPTY.is_empty());
        assert_eq!(Bindings::EMPTY.first(), None);
        assert_eq!(Bindings::EMPTY.iter().next(), None);
    }

    #[test]
    fn merged_bindings_collapse_when_one_side_is_empty() {
        let base = [1u32, 5, 9];
        let b = Bindings::merged(Bindings::Slice(&base), &[]);
        assert!(matches!(b, Bindings::Slice(_)));
        let d = Bindings::merged(Bindings::EMPTY, &base);
        assert_eq!(d.to_vec(), base);
    }

    #[test]
    fn merged_bindings_behave_like_the_merged_vector() {
        let base = [2u32, 6, 9, 40];
        let delta = [1u32, 7, 8, 41, 50];
        let m = Bindings::merged(Bindings::Slice(&base), &delta);
        let expect = vec![1u32, 2, 6, 7, 8, 9, 40, 41, 50];
        assert_eq!(m.len(), expect.len());
        assert_eq!(m.to_vec(), expect);
        assert_eq!(m.first(), Some(1));
        for (i, &v) in expect.iter().enumerate() {
            assert_eq!(m.get(i), v, "get({i})");
            assert_eq!(m.binary_search(v), Ok(i), "binary_search({v})");
        }
        assert_eq!(m.binary_search(0), Err(0));
        assert_eq!(m.binary_search(5), Err(2));
        assert_eq!(m.binary_search(100), Err(9));
        assert!(m.contains_sorted(40));
        assert!(!m.contains_sorted(39));
        let (lo, hi) = m.iter().size_hint();
        assert_eq!((lo, hi), (9, Some(9)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Two disjoint sorted id lists (each value lands on one side only).
    fn arb_disjoint() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
        proptest::collection::vec((0u32..500, any::<bool>()), 0..60).prop_map(|mut items| {
            items.sort_unstable();
            items.dedup_by_key(|&mut (v, _)| v);
            let (mut base, mut delta) = (Vec::new(), Vec::new());
            for (v, into_base) in items {
                if into_base {
                    base.push(v);
                } else {
                    delta.push(v);
                }
            }
            (base, delta)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Merged bindings over slice *and* packed bases agree with the
        /// plainly merged vector on every accessor.
        #[test]
        fn prop_merged_bindings_match_naive_merge(
            sides in arb_disjoint(),
            probe in any::<u32>(),
        ) {
            let (base, delta) = sides;
            let mut expect: Vec<u32> =
                base.iter().chain(delta.iter()).copied().collect();
            expect.sort_unstable();
            let packed = PackedSeq::from_values(
                9,
                base.iter().copied(),
            );
            let variants = [
                Bindings::merged(Bindings::Slice(&base), &delta),
                Bindings::merged(
                    Bindings::Packed { seq: &packed, start: 0, len: base.len() },
                    &delta,
                ),
            ];
            for m in variants {
                prop_assert_eq!(m.len(), expect.len());
                prop_assert_eq!(m.to_vec(), expect.clone());
                for (i, &v) in expect.iter().enumerate() {
                    prop_assert_eq!(m.get(i), v);
                }
                prop_assert_eq!(m.binary_search(probe), expect.binary_search(&probe));
                prop_assert_eq!(m.first(), expect.first().copied());
            }
        }
    }
}
