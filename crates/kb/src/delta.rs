//! Live KB ingestion: a mutable delta overlay with epoch snapshots and
//! compaction.
//!
//! Every physical backend in this crate is immutable by construction —
//! CSR arrays and succinct bitmaps cannot absorb a triple in place. This
//! module turns a frozen [`KnowledgeBase`] into a versioned, appendable
//! one with the classic LSM split:
//!
//! * [`DeltaStore`] — one immutable *generation* of appended triples:
//!   per-predicate sorted runs (reusing the CSR shape) in both
//!   directions, plus the precomputed union metadata (base ranks of
//!   delta-only keys, subject→extra-predicate lists) that makes merged
//!   primitives O(log) instead of O(n).
//! * [`LayeredStore`] — a [`TripleStore`] answering every primitive by
//!   merging base + delta [`Bindings`] (merge-view iterators, binary
//!   search across runs), so miners above the trait see the live view
//!   unchanged. It is the third [`StoreBackend`] variant.
//! * [`LiveKb`] — the writer: appends batches under a lock, publishes a
//!   fresh epoch per batch (readers pin a cheap [`Snapshot`] — an Arc'd
//!   base plus one immutable delta generation — so in-flight miners
//!   never observe a torn KB), rotates the content fingerprint per
//!   publish, and folds a grown delta back into a fresh base
//!   ([`LiveKb::compact`]) without blocking writers for the rebuild.
//!
//! Appends are idempotent (duplicates of base or delta facts are
//! dropped) and inverse-closed *per object*: `p(s, o)` is mirrored into
//! a materialised `p⁻¹` exactly when `o` already has inverse facts (so
//! every materialised adjacency stays COMPLETE — the property miners
//! rely on — and no partial one is ever created), a directly-ingested
//! inverse fact implies its base fact, and an inverse fact for a fresh
//! object backfills mirrors for the object's pre-existing base facts.
//! The §4 top-1% *eligibility* set itself stays frozen at load —
//! ordinary appends never promote new objects into it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};
use std::time::Duration;

use remi_obs::Clock as _;

use crate::backend::{Backend, Bindings, StoreBackend, StoreMemory, TripleStore};
use crate::dict::Dictionary;
use crate::error::{KbError, Result};
use crate::freq::FreqVec;
use crate::fx::FxHashSet;
use crate::ids::{NodeId, PredId, Triple};
use crate::store::{derive_inverse_links, Csr, KnowledgeBase};
use crate::term::{Term, TermKind};

// ---------------------------------------------------------------------------
// Content fingerprint

/// Fingerprint of a KB's logical content: every triple id plus the
/// dictionary sizes, mixed through the workspace Fx hash. Two KBs holding
/// the same triples fingerprint identically regardless of storage layout,
/// so caches keyed by it survive backend conversion *and* compaction —
/// and rotate on every ingested batch.
pub fn content_fingerprint(kb: &KnowledgeBase) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fx::FxHasher::default();
    h.write_u64(kb.num_nodes() as u64);
    h.write_u64(kb.num_preds() as u64);
    h.write_u64(kb.num_triples() as u64);
    for t in kb.iter_triples() {
        h.write_u64(u64::from(t.s.0) << 32 | u64::from(t.o.0));
        h.write_u32(t.p.0);
    }
    h.finish()
}

/// Rotates a fingerprint with one accepted batch. Deterministic in the
/// batch contents; any non-empty batch changes the value.
fn rotate_fingerprint(fp: u64, accepted: &[Triple]) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fx::FxHasher::default();
    h.write_u64(fp);
    h.write_u64(accepted.len() as u64);
    for t in accepted {
        h.write_u64(u64::from(t.s.0) << 32 | u64::from(t.o.0));
        h.write_u32(t.p.0);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// The delta generation

/// Binary search over an indexable sorted key list (the base store's
/// distinct-key directory), returning the rank like `slice::binary_search`.
fn rank_by(n: usize, at: impl Fn(usize) -> u32, key: u32) -> std::result::Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match at(mid).cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// One predicate's slice of a delta generation.
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaPred {
    /// Sorted `(subject, objects)` runs of the appended facts.
    by_subject: Csr,
    /// Sorted `(object, subjects)` runs.
    by_object: Csr,
    facts: u32,
    /// Delta subject keys absent from the base: `(base insertion rank,
    /// delta group index)`, both components ascending. `union index` of
    /// entry `j` is `rank + j`, which [`union_locate`] inverts in O(log).
    sub_only: Vec<(u32, u32)>,
    /// Same for delta object keys.
    obj_only: Vec<(u32, u32)>,
}

/// Locates union position `i` across a base key directory and the
/// delta-only entries: `Ok(delta group)` when the `i`-th distinct key of
/// the union is delta-only, `Err(base index)` otherwise.
fn union_locate(only: &[(u32, u32)], i: usize) -> std::result::Result<u32, usize> {
    let (mut lo, mut hi) = (0usize, only.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if only[mid].0 as usize + mid <= i {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo > 0 && only[lo - 1].0 as usize + (lo - 1) == i {
        Ok(only[lo - 1].1)
    } else {
        Err(i - lo)
    }
}

/// One immutable generation of appended triples, indexed for merging.
#[derive(Debug, Clone)]
pub struct DeltaStore {
    preds: Vec<DeltaPred>,
    /// subject → appended predicates missing from the base's
    /// `preds_of_subject` list (disjoint by construction).
    extra_subject_preds: Csr,
    /// The generation's triples, sorted and deduplicated — the unit the
    /// compactor subtracts when folding a pinned generation into a new
    /// base while later appends keep arriving.
    triples: Vec<Triple>,
}

impl DeltaStore {
    /// Indexes `triples` (sorted, deduplicated, disjoint from `base`)
    /// against `base`. `num_preds` is the total predicate count of the
    /// live dictionary (≥ the base's own).
    pub(crate) fn build(base: &StoreBackend, num_preds: usize, triples: Vec<Triple>) -> DeltaStore {
        debug_assert!(triples.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let base_preds = base.num_preds();
        let num_preds = num_preds.max(base_preds);
        let mut per_pred: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_preds];
        for t in &triples {
            per_pred[t.p.idx()].push((t.s.0, t.o.0));
        }

        let mut preds = Vec::with_capacity(num_preds);
        let mut extra: Vec<(u32, u32)> = Vec::new();
        for (p, mut pairs) in per_pred.into_iter().enumerate() {
            if pairs.is_empty() {
                preds.push(DeltaPred::default());
                continue;
            }
            let pid = PredId(p as u32);
            pairs.sort_unstable();
            let by_subject = Csr::from_sorted_pairs(&pairs);
            let mut flipped: Vec<(u32, u32)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
            flipped.sort_unstable();
            let by_object = Csr::from_sorted_pairs(&flipped);

            let in_base = p < base_preds;
            let rank_subject = |key: u32| {
                if !in_base {
                    return Err(0);
                }
                rank_by(base.num_subjects(pid), |i| base.subject_at(pid, i).0, key)
            };
            let rank_object = |key: u32| {
                if !in_base {
                    return Err(0);
                }
                rank_by(base.num_objects(pid), |i| base.object_at(pid, i).0, key)
            };
            let sub_only: Vec<(u32, u32)> = by_subject
                .keys()
                .iter()
                .enumerate()
                .filter_map(|(j, &k)| rank_subject(k).err().map(|r| (r as u32, j as u32)))
                .collect();
            let obj_only: Vec<(u32, u32)> = by_object
                .keys()
                .iter()
                .enumerate()
                .filter_map(|(j, &k)| rank_object(k).err().map(|r| (r as u32, j as u32)))
                .collect();

            for &s in by_subject.keys() {
                if !base.preds_of_subject(NodeId(s)).contains_sorted(pid.0) {
                    extra.push((s, pid.0));
                }
            }

            preds.push(DeltaPred {
                by_subject,
                by_object,
                facts: pairs.len() as u32,
                sub_only,
                obj_only,
            });
        }
        extra.sort_unstable();
        extra.dedup();
        DeltaStore {
            preds,
            extra_subject_preds: Csr::from_sorted_pairs(&extra),
            triples,
        }
    }

    /// Number of triples in this generation.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the generation holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The generation's sorted triples.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    fn size_in_bytes(&self) -> (usize, usize, usize) {
        let runs: usize = self
            .preds
            .iter()
            .map(|d| d.by_subject.size_in_bytes() + d.by_object.size_in_bytes())
            .sum();
        let meta: usize = self
            .preds
            .iter()
            .map(|d| (d.sub_only.len() + d.obj_only.len()) * 8)
            .sum::<usize>()
            + self.extra_subject_preds.size_in_bytes()
            + self.triples.len() * std::mem::size_of::<Triple>();
        (
            runs,
            meta,
            self.preds.len() * std::mem::size_of::<DeltaPred>(),
        )
    }
}

// ---------------------------------------------------------------------------
// The layered store

/// The live view: a [`DeltaStore`] generation merged over an immutable
/// base store. Every [`TripleStore`] primitive answers the union; cloning
/// is two `Arc` bumps, which is what makes epoch snapshots cheap.
#[derive(Debug, Clone)]
pub struct LayeredStore {
    base: Arc<StoreBackend>,
    delta: Arc<DeltaStore>,
    base_preds: usize,
}

impl LayeredStore {
    /// Layers `delta` over `base`. The base must be a materialised store
    /// — layering over another overlay would stack merge costs; the
    /// compactor exists precisely so generations never nest.
    pub fn new(base: Arc<StoreBackend>, delta: Arc<DeltaStore>) -> LayeredStore {
        assert!(
            !matches!(&*base, StoreBackend::Layered(_)),
            "layered base must be a materialised store"
        );
        LayeredStore {
            base_preds: base.num_preds(),
            base,
            delta,
        }
    }

    /// The shared base store.
    pub fn base(&self) -> &Arc<StoreBackend> {
        &self.base
    }

    /// The delta generation.
    pub fn delta(&self) -> &Arc<DeltaStore> {
        &self.delta
    }

    /// Number of appended triples layered over the base.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    pub(crate) fn base_store(&self) -> &StoreBackend {
        &self.base
    }

    pub(crate) fn base_pred_count(&self) -> usize {
        self.base_preds
    }

    pub(crate) fn delta_groups(&self, p: PredId, by_object: bool) -> &Csr {
        let d = &self.delta.preds[p.idx()];
        if by_object {
            &d.by_object
        } else {
            &d.by_subject
        }
    }

    #[inline]
    fn dp(&self, p: PredId) -> &DeltaPred {
        &self.delta.preds[p.idx()]
    }

    #[inline]
    fn in_base(&self, p: PredId) -> bool {
        p.idx() < self.base_preds
    }
}

impl TripleStore for LayeredStore {
    fn backend(&self) -> Backend {
        // The user-facing layout name is the base's: the overlay is an
        // implementation detail the compactor folds away.
        self.base.backend()
    }

    fn num_preds(&self) -> usize {
        self.delta.preds.len()
    }

    #[inline]
    fn num_facts(&self, p: PredId) -> usize {
        let base = if self.in_base(p) {
            self.base.num_facts(p)
        } else {
            0
        };
        base + self.dp(p).facts as usize
    }

    #[inline]
    fn num_subjects(&self, p: PredId) -> usize {
        let base = if self.in_base(p) {
            self.base.num_subjects(p)
        } else {
            0
        };
        base + self.dp(p).sub_only.len()
    }

    #[inline]
    fn num_objects(&self, p: PredId) -> usize {
        let base = if self.in_base(p) {
            self.base.num_objects(p)
        } else {
            0
        };
        base + self.dp(p).obj_only.len()
    }

    #[inline]
    fn objects(&self, p: PredId, s: NodeId) -> Bindings<'_> {
        let delta = self.dp(p).by_subject.get(s.0);
        let base = if self.in_base(p) {
            self.base.objects(p, s)
        } else {
            Bindings::EMPTY
        };
        Bindings::merged(base, delta)
    }

    #[inline]
    fn subjects(&self, p: PredId, o: NodeId) -> Bindings<'_> {
        let delta = self.dp(p).by_object.get(o.0);
        let base = if self.in_base(p) {
            self.base.subjects(p, o)
        } else {
            Bindings::EMPTY
        };
        Bindings::merged(base, delta)
    }

    #[inline]
    fn subject_at(&self, p: PredId, i: usize) -> NodeId {
        let d = self.dp(p);
        match union_locate(&d.sub_only, i) {
            Ok(g) => NodeId(d.by_subject.keys()[g as usize]),
            Err(b) => self.base.subject_at(p, b),
        }
    }

    #[inline]
    fn objects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        let d = self.dp(p);
        match union_locate(&d.sub_only, i) {
            Ok(g) => Bindings::Slice(d.by_subject.group(g as usize)),
            Err(b) => {
                let key = self.base.subject_at(p, b);
                Bindings::merged(self.base.objects_at(p, b), d.by_subject.get(key.0))
            }
        }
    }

    #[inline]
    fn object_at(&self, p: PredId, i: usize) -> NodeId {
        let d = self.dp(p);
        match union_locate(&d.obj_only, i) {
            Ok(g) => NodeId(d.by_object.keys()[g as usize]),
            Err(b) => self.base.object_at(p, b),
        }
    }

    #[inline]
    fn subjects_at(&self, p: PredId, i: usize) -> Bindings<'_> {
        let d = self.dp(p);
        match union_locate(&d.obj_only, i) {
            Ok(g) => Bindings::Slice(d.by_object.group(g as usize)),
            Err(b) => {
                let key = self.base.object_at(p, b);
                Bindings::merged(self.base.subjects_at(p, b), d.by_object.get(key.0))
            }
        }
    }

    #[inline]
    fn object_group_len(&self, p: PredId, i: usize) -> usize {
        let d = self.dp(p);
        match union_locate(&d.obj_only, i) {
            Ok(g) => d.by_object.group_len(g as usize),
            Err(b) => {
                let key = self.base.object_at(p, b);
                self.base.object_group_len(p, b) + d.by_object.get(key.0).len()
            }
        }
    }

    #[inline]
    fn preds_of_subject(&self, s: NodeId) -> Bindings<'_> {
        Bindings::merged(
            self.base.preds_of_subject(s),
            self.delta.extra_subject_preds.get(s.0),
        )
    }

    #[inline]
    fn contains(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        (self.in_base(p) && self.base.contains(s, p, o))
            || self.dp(p).by_subject.get(s.0).binary_search(&o.0).is_ok()
    }

    fn memory(&self) -> StoreMemory {
        let mut m = self.base.memory();
        let (runs, meta, table) = self.delta.size_in_bytes();
        m.add("delta.runs", runs);
        m.add("delta.meta", meta);
        m.add("delta.table", table);
        m
    }
}

// ---------------------------------------------------------------------------
// The live KB

/// When the background compactor should fold the delta into a new base.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Absolute floor: never compact below this many delta triples.
    pub min_delta: usize,
    /// Relative trigger: compact once the delta exceeds this fraction of
    /// the base's fact count (whichever bound is *larger* wins).
    pub delta_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_delta: 8192,
            delta_fraction: 0.25,
        }
    }
}

/// A pinned epoch: the published KB plus its identity. Cloning is cheap
/// (one `Arc` bump); holders never observe later appends.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The published knowledge base (layered store inside).
    pub kb: Arc<KnowledgeBase>,
    /// Monotonic publish counter (bumped by appends *and* compactions).
    pub epoch: u64,
    /// Content fingerprint (rotated by appends, stable across
    /// compactions — same content, same fingerprint).
    pub fingerprint: u64,
}

/// What one append batch did.
#[derive(Debug, Clone, Default)]
pub struct AppendOutcome {
    /// Triples accepted into the delta (inverse mirrors included).
    pub appended: usize,
    /// Staged triples dropped because base or delta already held them.
    pub duplicates: usize,
    /// Node terms interned by this batch.
    pub new_nodes: usize,
    /// Predicates interned by this batch.
    pub new_preds: usize,
    /// Epoch after the batch (unchanged when everything was a duplicate).
    pub epoch: u64,
    /// Fingerprint after the batch.
    pub fingerprint: u64,
    /// Delta size after the batch.
    pub delta_triples: usize,
}

/// What one compaction did.
#[derive(Debug, Clone, Default)]
pub struct CompactOutcome {
    /// Whether a fold actually ran (`false`: the delta was empty).
    pub performed: bool,
    /// Triples folded into the new base.
    pub folded: usize,
    /// Epoch after the compaction.
    pub epoch: u64,
    /// Wall time of the fold.
    pub duration: Duration,
}

/// Point-in-time counters for `/stats`-style reporting.
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    /// Current epoch.
    pub epoch: u64,
    /// Current fingerprint.
    pub fingerprint: u64,
    /// Triples currently in the delta overlay.
    pub delta_triples: u64,
    /// Facts (inverses included) in the compacted base.
    pub base_facts: u64,
    /// Append batches accepted.
    pub appends: u64,
    /// Triples appended across all batches (mirrors included).
    pub appended_triples: u64,
    /// Staged triples dropped as duplicates.
    pub duplicate_triples: u64,
    /// Completed compactions.
    pub compactions: u64,
    /// Duration of the most recent compaction, in microseconds.
    pub last_compaction_us: u64,
}

/// Ingestion observability: histograms over the costs the compaction
/// policy exists to bound. Instruments are `Arc`s so an embedding layer
/// (the HTTP server) can register the very same cells in a
/// `remi_obs::Registry`; [`LiveKb::fork`] shares its parent's instruments,
/// so what-if forks report into the same series.
#[derive(Debug, Clone, Default)]
pub struct KbInstruments {
    /// Wall time of each epoch publish (delta rebuild + snapshot swap).
    pub publish_ns: Arc<remi_obs::Histogram>,
    /// Accepted triples per publishing append batch.
    pub batch_triples: Arc<remi_obs::Histogram>,
    /// Live delta size observed at each publish.
    pub delta_triples: Arc<remi_obs::Histogram>,
    /// Wall time of each performed compaction.
    pub compact_ns: Arc<remi_obs::Histogram>,
    /// Compactions that folded the delta into a new base.
    pub compactions_performed: Arc<remi_obs::Counter>,
    /// Compaction calls that found an empty delta and did nothing.
    pub compactions_skipped: Arc<remi_obs::Counter>,
    /// The clock every duration above is measured against.
    pub clock: remi_obs::MonoClock,
    /// Flight-recorder attachment for publish/compaction lifecycle
    /// events — `None` until [`LiveKb::attach_events`] wires a recorder
    /// in. Shared across forks like every other instrument, and behind a
    /// lock because attachment happens once at boot while publishes are
    /// already possible.
    pub events: Arc<Mutex<Option<KbEvents>>>,
}

/// The compaction-outcome vocabulary of the `kb_compact` event.
const COMPACT_OUTCOME: &[&str] = &["skipped", "folded"];

/// The KB lifecycle's flight-recorder vocabulary: one `kb_publish` event
/// per published epoch and one `kb_compact` event per compaction call
/// (folded or skipped). Timestamps come from the injected clock, not the
/// instruments' own [`remi_obs::MonoClock`], so a server's events share
/// one time base and `FakeClock` tests reach these paths.
#[derive(Clone)]
pub struct KbEvents {
    recorder: Arc<remi_obs::Recorder>,
    clock: Arc<dyn remi_obs::Clock>,
    publish: remi_obs::EventId,
    compact: remi_obs::EventId,
}

impl std::fmt::Debug for KbEvents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KbEvents").finish_non_exhaustive()
    }
}

impl KbEvents {
    /// Interns the lifecycle event specs on `recorder`.
    pub fn new(recorder: Arc<remi_obs::Recorder>, clock: Arc<dyn remi_obs::Clock>) -> KbEvents {
        use remi_obs::{Channel, EventSpec, FieldKind, FieldSpec, Severity};
        let publish = recorder.define(EventSpec {
            name: "kb_publish",
            channel: Channel::Kb,
            severity: Severity::Info,
            fields: &[
                FieldSpec {
                    key: "epoch",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "batch",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "delta",
                    kind: FieldKind::U64,
                },
            ],
        });
        let compact = recorder.define(EventSpec {
            name: "kb_compact",
            channel: Channel::Kb,
            severity: Severity::Info,
            fields: &[
                FieldSpec {
                    key: "outcome",
                    kind: FieldKind::Enum(COMPACT_OUTCOME),
                },
                FieldSpec {
                    key: "folded",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "duration_us",
                    kind: FieldKind::U64,
                },
                FieldSpec {
                    key: "epoch",
                    kind: FieldKind::U64,
                },
            ],
        });
        KbEvents {
            recorder,
            clock,
            publish,
            compact,
        }
    }

    fn record_publish(&self, epoch: u64, batch: usize, delta: usize) {
        self.recorder.emit(
            self.publish,
            self.clock.now_ns(),
            &[epoch, batch as u64, delta as u64],
        );
    }

    fn record_compact(&self, folded: Option<usize>, duration_us: u64, epoch: u64) {
        self.recorder.emit(
            self.compact,
            self.clock.now_ns(),
            &[
                folded.is_some() as u64,
                folded.unwrap_or(0) as u64,
                duration_us,
                epoch,
            ],
        );
    }
}

struct Writer {
    base: Arc<StoreBackend>,
    nodes: Dictionary,
    preds: Dictionary,
    node_freq: FreqVec,
    n_base_triples: usize,
    /// All live delta triples, sorted and deduplicated.
    delta: Vec<Triple>,
}

/// A [`KnowledgeBase`] that accepts appends. Writers serialise on an
/// internal lock; readers pin [`Snapshot`]s and are never blocked, not
/// even mid-compaction.
pub struct LiveKb {
    writer: Mutex<Writer>,
    current: RwLock<Snapshot>,
    /// Serialises whole compactions (pin → rebuild → swap). Without it,
    /// a fold pinned at an older epoch could acquire the writer lock
    /// *after* a newer fold and overwrite its base — losing every triple
    /// the newer fold had absorbed (they were already pruned from the
    /// writer's delta). Appends never take this lock.
    compact_gate: Mutex<()>,
    policy: CompactionPolicy,
    delta_gauge: AtomicU64,
    base_facts_gauge: AtomicU64,
    appends: AtomicU64,
    appended: AtomicU64,
    duplicates: AtomicU64,
    compactions: AtomicU64,
    last_compaction_us: AtomicU64,
    instruments: KbInstruments,
}

/// Debug-build mirror of the `delta-lock-order` lint rule: the compaction
/// gate must never be acquired by a thread that already holds the writer
/// lock (gate → writer is the blessed order; the inversion would let two
/// folds interleave and silently drop triples).
mod lock_order {
    use std::cell::Cell;

    thread_local! {
        static WRITER_HELD: Cell<bool> = const { Cell::new(false) };
    }

    pub(super) fn note_writer_acquired() {
        WRITER_HELD.with(|held| held.set(true));
    }

    pub(super) fn note_writer_released() {
        WRITER_HELD.with(|held| held.set(false));
    }

    pub(super) fn assert_gate_allowed() {
        WRITER_HELD.with(|held| {
            debug_assert!(
                !held.get(),
                "lock-order inversion: compact_gate acquired while this thread holds the \
                 writer lock (lint rule delta-lock-order)"
            );
        });
    }
}

/// The writer-lock guard, wrapped so debug builds can track which threads
/// hold it (see [`lock_order`]).
struct WriterGuard<'a>(MutexGuard<'a, Writer>);

impl std::ops::Deref for WriterGuard<'_> {
    type Target = Writer;
    fn deref(&self) -> &Writer {
        &self.0
    }
}

impl std::ops::DerefMut for WriterGuard<'_> {
    fn deref_mut(&mut self) -> &mut Writer {
        &mut self.0
    }
}

impl Drop for WriterGuard<'_> {
    fn drop(&mut self) {
        lock_order::note_writer_released();
    }
}

impl LiveKb {
    /// Acquires the writer lock, noting the holder for debug-build
    /// lock-order checks.
    fn lock_writer(&self) -> WriterGuard<'_> {
        let guard = self.writer.lock();
        lock_order::note_writer_acquired();
        WriterGuard(guard)
    }

    /// Acquires the compaction gate, asserting in debug builds that this
    /// thread does not already hold the writer lock.
    fn lock_gate(&self) -> MutexGuard<'_, ()> {
        lock_order::assert_gate_allowed();
        self.compact_gate.lock()
    }

    /// Wraps a KB for live ingestion with the default compaction policy.
    pub fn new(kb: KnowledgeBase) -> LiveKb {
        LiveKb::with_policy(kb, CompactionPolicy::default())
    }

    /// Wraps a KB with an explicit compaction policy.
    pub fn with_policy(kb: KnowledgeBase, policy: CompactionPolicy) -> LiveKb {
        // A layered KB (e.g. a snapshot of another LiveKb) is folded
        // first so generations never nest.
        let kb = match kb.store() {
            StoreBackend::Layered(_) => {
                let kind = kb.backend();
                // `to_backend` always materialises a layered store, even
                // into its own layout.
                kb.with_backend(kind)
            }
            _ => kb,
        };
        let fingerprint = content_fingerprint(&kb);
        let num_preds = kb.num_preds();
        let (nodes, preds, store, node_freq, n_base_triples) = kb.into_parts();
        let base = Arc::new(store);
        let base_facts: usize = (0..num_preds)
            .map(|p| base.num_facts(PredId(p as u32)))
            .sum();
        let delta = DeltaStore::build(&base, num_preds, Vec::new());
        let layered = StoreBackend::Layered(LayeredStore::new(Arc::clone(&base), Arc::new(delta)));
        let kb = KnowledgeBase::from_parts(
            nodes.clone(),
            preds.clone(),
            layered,
            node_freq.clone(),
            n_base_triples,
        );
        LiveKb {
            writer: Mutex::new(Writer {
                base,
                nodes,
                preds,
                node_freq,
                n_base_triples,
                delta: Vec::new(),
            }),
            current: RwLock::new(Snapshot {
                kb: Arc::new(kb),
                epoch: 0,
                fingerprint,
            }),
            compact_gate: Mutex::new(()),
            policy,
            delta_gauge: AtomicU64::new(0),
            base_facts_gauge: AtomicU64::new(base_facts as u64),
            appends: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            last_compaction_us: AtomicU64::new(0),
            instruments: KbInstruments::default(),
        }
    }

    /// Pins the current epoch. O(1); the snapshot stays valid (and
    /// byte-stable) however many appends or compactions follow.
    pub fn snapshot(&self) -> Snapshot {
        self.current.read().clone()
    }

    /// Forks an independent `LiveKb` starting from this one's current
    /// state: same epoch, fingerprint, policy, and content; appends to
    /// either side are invisible to the other.
    ///
    /// O(segments + delta), not O(KB): the base store is shared by `Arc`,
    /// the dictionaries share their sealed segments, and the frequency
    /// table shares its counter segments — only the dictionary tails and
    /// the (usually small) live delta are copied, and the stored
    /// fingerprint is reused instead of being recomputed from scratch the
    /// way [`LiveKb::with_policy`] must. This is what makes speculative
    /// what-if ingestion (and fixed-size ingest benchmarking) cheap.
    pub fn fork(&self) -> LiveKb {
        let w = self.lock_writer();
        // Writer lock held ⇒ no publish can race; `current` is consistent
        // with the writer state (publishes happen under the writer lock).
        let snap = self.snapshot();
        LiveKb {
            writer: Mutex::new(Writer {
                base: Arc::clone(&w.base),
                nodes: w.nodes.clone(),
                preds: w.preds.clone(),
                node_freq: w.node_freq.clone(),
                n_base_triples: w.n_base_triples,
                delta: w.delta.clone(),
            }),
            current: RwLock::new(snap),
            compact_gate: Mutex::new(()),
            policy: self.policy,
            delta_gauge: AtomicU64::new(self.delta_gauge.load(Ordering::Relaxed)),
            base_facts_gauge: AtomicU64::new(self.base_facts_gauge.load(Ordering::Relaxed)),
            appends: AtomicU64::new(self.appends.load(Ordering::Relaxed)),
            appended: AtomicU64::new(self.appended.load(Ordering::Relaxed)),
            duplicates: AtomicU64::new(self.duplicates.load(Ordering::Relaxed)),
            compactions: AtomicU64::new(self.compactions.load(Ordering::Relaxed)),
            last_compaction_us: AtomicU64::new(self.last_compaction_us.load(Ordering::Relaxed)),
            instruments: self.instruments.clone(),
        }
    }

    /// This KB's ingestion instruments (see [`KbInstruments`]).
    pub fn instruments(&self) -> &KbInstruments {
        &self.instruments
    }

    /// Attaches a flight recorder: every subsequent publish and
    /// compaction emits a lifecycle event timestamped on `clock`. Forks
    /// share the attachment (instruments are fork-shared); re-attaching
    /// replaces it.
    pub fn attach_events(
        &self,
        recorder: Arc<remi_obs::Recorder>,
        clock: Arc<dyn remi_obs::Clock>,
    ) {
        *self.instruments.events.lock() = Some(KbEvents::new(recorder, clock));
    }

    /// Appends a batch of triples, publishing one new epoch when at least
    /// one triple was accepted. Duplicates (against base, delta, or
    /// within the batch) are dropped; facts of predicates with a
    /// materialised inverse are mirrored both ways.
    pub fn append<I>(&self, staged: I) -> AppendOutcome
    where
        I: IntoIterator<Item = (Term, String, Term)>,
    {
        let mut w = self.lock_writer();
        let nodes_before = w.nodes.len();
        let preds_before = w.preds.len();

        // Pass 1: intern everything so inverse links cover predicates
        // introduced by this very batch.
        let staged: Vec<Triple> = staged
            .into_iter()
            .map(|(s, p, o)| {
                let s = NodeId(w.nodes.intern(&s));
                let p = PredId(w.preds.intern_key(&p, TermKind::Iri));
                let o = NodeId(w.nodes.intern(&o));
                Triple::new(s, p, o)
            })
            .collect();
        let (inverse_of, base_of) = derive_inverse_links(&w.preds);

        // Pass 2: dedup and keep the inverse closure *per object*. The
        // base build materialises `p⁻¹(o, ·)` only for top-fraction
        // objects, and for those objects the adjacency is COMPLETE —
        // that completeness is what lets miners treat `p⁻¹` like any
        // other predicate. So appends mirror `p(s, o)` into `p⁻¹(o, s)`
        // exactly when `o` already has inverse facts (anything else
        // would create a partial adjacency that contradicts `p`), and a
        // directly-ingested inverse fact for a fresh object backfills
        // the mirrors of every existing `p(·, o)` fact so the new
        // adjacency starts complete.
        let mut accepted: Vec<Triple> = Vec::with_capacity(staged.len());
        let mut seen: FxHashSet<Triple> = FxHashSet::default();
        // `(inverse pred, object)` adjacencies that gained facts in this
        // batch (needed because `w.delta` only absorbs the batch at the
        // end).
        let mut batch_inv: FxHashSet<(u32, u32)> = FxHashSet::default();
        let mut duplicates = 0usize;
        let base_preds = w.base.num_preds();

        /// Accepts `t` unless base, delta, or this batch already holds it.
        fn push(
            w: &mut Writer,
            accepted: &mut Vec<Triple>,
            seen: &mut FxHashSet<Triple>,
            base_of: &[Option<PredId>],
            base_preds: usize,
            t: Triple,
        ) -> bool {
            let in_base = t.p.idx() < base_preds && w.base.contains(t.s, t.p, t.o);
            if in_base || w.delta.binary_search(&t).is_ok() || !seen.insert(t) {
                return false;
            }
            accepted.push(t);
            if base_of[t.p.idx()].is_none() {
                w.node_freq.grow_to(w.nodes.len());
                w.node_freq.add(t.s.idx(), 1);
                w.node_freq.add(t.o.idx(), 1);
                w.n_base_triples += 1;
            }
            true
        }
        /// Does the live view (base + delta) hold any `p(s, ·)` fact?
        fn has_facts(w: &Writer, base_preds: usize, p: PredId, s: NodeId) -> bool {
            if p.idx() < base_preds && !w.base.objects(p, s).is_empty() {
                return true;
            }
            let at = w.delta.partition_point(|d| (d.s, d.p) < (s, p));
            w.delta.get(at).is_some_and(|d| d.s == s && d.p == p)
        }

        for t in staged {
            if !push(&mut w, &mut accepted, &mut seen, &base_of, base_preds, t) {
                duplicates += 1;
                continue;
            }
            if let Some(inv) = inverse_of[t.p.idx()] {
                // Forward mirror, only into already-materialised
                // adjacencies.
                let materialised =
                    batch_inv.contains(&(inv.0, t.o.0)) || has_facts(&w, base_preds, inv, t.o);
                if materialised && w.nodes.kind(t.o.0) != TermKind::Literal {
                    batch_inv.insert((inv.0, t.o.0));
                    push(
                        &mut w,
                        &mut accepted,
                        &mut seen,
                        &base_of,
                        base_preds,
                        Triple::new(t.o, inv, t.s),
                    );
                }
            } else if let Some(bp) = base_of[t.p.idx()] {
                // `t` is an inverse fact `p⁻¹(o, s)` with `o = t.s`. The
                // base fact must exist (the ⟹ invariant)...
                let newly =
                    !batch_inv.contains(&(t.p.0, t.s.0)) && !has_facts(&w, base_preds, t.p, t.s);
                batch_inv.insert((t.p.0, t.s.0));
                push(
                    &mut w,
                    &mut accepted,
                    &mut seen,
                    &base_of,
                    base_preds,
                    Triple::new(t.o, bp, t.s),
                );
                if newly {
                    // ...and a freshly-materialised object backfills the
                    // mirrors of every pre-existing `p(·, o)` fact so the
                    // new adjacency is complete from its first epoch.
                    let mut subs: Vec<u32> = if bp.idx() < base_preds {
                        w.base.subjects(bp, t.s).to_vec()
                    } else {
                        Vec::new()
                    };
                    subs.extend(
                        w.delta
                            .iter()
                            .chain(accepted.iter())
                            .filter(|d| d.p == bp && d.o == t.s)
                            .map(|d| d.s.0),
                    );
                    subs.sort_unstable();
                    subs.dedup();
                    for s2 in subs {
                        push(
                            &mut w,
                            &mut accepted,
                            &mut seen,
                            &base_of,
                            base_preds,
                            Triple::new(t.s, t.p, NodeId(s2)),
                        );
                    }
                }
            }
        }

        self.duplicates
            .fetch_add(duplicates as u64, Ordering::Relaxed);
        let mut out = AppendOutcome {
            appended: accepted.len(),
            duplicates,
            new_nodes: w.nodes.len() - nodes_before,
            new_preds: w.preds.len() - preds_before,
            ..AppendOutcome::default()
        };
        if accepted.is_empty() {
            let snap = self.snapshot();
            out.epoch = snap.epoch;
            out.fingerprint = snap.fingerprint;
            out.delta_triples = w.delta.len();
            return out;
        }
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.appended
            .fetch_add(accepted.len() as u64, Ordering::Relaxed);

        w.delta.extend_from_slice(&accepted);
        w.delta.sort_unstable();
        debug_assert!(w.delta.windows(2).all(|x| x[0] < x[1]));
        self.instruments.batch_triples.record(accepted.len() as u64);
        let (epoch, fingerprint) = self.publish(&w, Some(&accepted));
        out.epoch = epoch;
        out.fingerprint = fingerprint;
        out.delta_triples = w.delta.len();
        out
    }

    /// Parses an N-Triples document and appends it as one atomic batch —
    /// a parse error rejects the whole document, nothing is applied.
    pub fn append_ntriples(&self, text: &str) -> Result<AppendOutcome> {
        let mut staged = Vec::new();
        for (i, line) in text.lines().enumerate() {
            match crate::ntriples::parse_line(line) {
                Ok(Some((s, p, o))) => staged.push((s, p, o)),
                Ok(None) => {}
                Err(message) => {
                    return Err(KbError::Parse {
                        line: i + 1,
                        message,
                    })
                }
            }
        }
        Ok(self.append(staged))
    }

    /// Builds and swaps in a new published epoch from the writer state.
    /// `rotated` carries the accepted batch (appends) or `None`
    /// (compaction: content unchanged, fingerprint kept).
    fn publish(&self, w: &Writer, rotated: Option<&[Triple]>) -> (u64, u64) {
        let t0 = self.instruments.clock.now_ns();
        let delta = DeltaStore::build(&w.base, w.preds.len(), w.delta.clone());
        let store = StoreBackend::Layered(LayeredStore::new(Arc::clone(&w.base), Arc::new(delta)));
        let kb = KnowledgeBase::from_parts(
            w.nodes.clone(),
            w.preds.clone(),
            store,
            w.node_freq.clone(),
            w.n_base_triples,
        );
        self.delta_gauge
            .store(w.delta.len() as u64, Ordering::Relaxed);
        let mut current = self.current.write();
        current.kb = Arc::new(kb);
        current.epoch += 1;
        if let Some(batch) = rotated {
            current.fingerprint = rotate_fingerprint(current.fingerprint, batch);
        }
        let published = (current.epoch, current.fingerprint);
        drop(current);
        self.instruments
            .publish_ns
            .record(self.instruments.clock.now_ns().saturating_sub(t0));
        self.instruments.delta_triples.record(w.delta.len() as u64);
        if let Some(ev) = self.instruments.events.lock().as_ref() {
            ev.record_publish(
                published.0,
                rotated.map_or(0, <[Triple]>::len),
                w.delta.len(),
            );
        }
        published
    }

    /// True when the configured policy says the delta has outgrown the
    /// overlay and should be folded into a fresh base.
    pub fn needs_compaction(&self) -> bool {
        let delta = self.delta_gauge.load(Ordering::Relaxed) as usize;
        let base = self.base_facts_gauge.load(Ordering::Relaxed) as f64;
        let threshold = self
            .policy
            .min_delta
            .max((base * self.policy.delta_fraction) as usize);
        delta > 0 && delta >= threshold
    }

    /// Folds the current delta into a fresh base store (same layout as
    /// the old base) and publishes the result. The expensive rebuild runs
    /// against a pinned snapshot *outside* the writer lock, so appends
    /// arriving mid-compaction only wait for the final swap; readers are
    /// never blocked at all. Content — and therefore the fingerprint — is
    /// unchanged.
    pub fn compact(&self) -> CompactOutcome {
        let t0 = self.instruments.clock.now_ns();
        // One fold at a time, end to end: the snapshot must still be the
        // newest generation when the swap happens (see `compact_gate`).
        let _gate = self.lock_gate();
        let snap = self.snapshot();
        let (folded_triples, new_base) = match snap.kb.store() {
            StoreBackend::Layered(l) if !l.delta().is_empty() => {
                let kind = l.backend();
                let new_base = snap.kb.store().to_backend(kind, snap.kb.num_nodes());
                (Arc::clone(l.delta()), new_base)
            }
            _ => {
                self.instruments.compactions_skipped.inc();
                if let Some(ev) = self.instruments.events.lock().as_ref() {
                    ev.record_compact(None, 0, snap.epoch);
                }
                return CompactOutcome {
                    epoch: snap.epoch,
                    ..CompactOutcome::default()
                };
            }
        };

        let mut w = self.lock_writer();
        // Appends that raced the rebuild stay in the delta; everything the
        // pinned generation held is now part of the new base.
        let folded: &[Triple] = folded_triples.triples();
        w.delta.retain(|t| folded.binary_search(t).is_err());
        w.base = Arc::new(new_base);
        let base_facts: usize = (0..w.base.num_preds())
            .map(|p| w.base.num_facts(PredId(p as u32)))
            .sum();
        self.base_facts_gauge
            .store(base_facts as u64, Ordering::Relaxed);
        let (epoch, _) = self.publish(&w, None);
        drop(w);

        let elapsed_ns = self.instruments.clock.now_ns().saturating_sub(t0);
        self.instruments.compact_ns.record(elapsed_ns);
        self.instruments.compactions_performed.inc();
        let duration = Duration::from_nanos(elapsed_ns);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.last_compaction_us
            .store(duration.as_micros() as u64, Ordering::Relaxed);
        if let Some(ev) = self.instruments.events.lock().as_ref() {
            ev.record_compact(Some(folded.len()), duration.as_micros() as u64, epoch);
        }
        CompactOutcome {
            performed: true,
            folded: folded.len(),
            epoch,
            duration,
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> LiveStats {
        let snap = self.snapshot();
        LiveStats {
            epoch: snap.epoch,
            fingerprint: snap.fingerprint,
            delta_triples: self.delta_gauge.load(Ordering::Relaxed),
            base_facts: self.base_facts_gauge.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            appended_triples: self.appended.load(Ordering::Relaxed),
            duplicate_triples: self.duplicates.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            last_compaction_us: self.last_compaction_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{KbBuilder, INVERSE_SUFFIX};

    fn base_kb() -> KnowledgeBase {
        let mut b = KbBuilder::new();
        b.add_iri("e:Paris", "p:capitalOf", "e:France");
        b.add_iri("e:Paris", "p:cityIn", "e:France");
        b.add_iri("e:Lyon", "p:cityIn", "e:France");
        b.build().unwrap()
    }

    fn iri3(s: &str, p: &str, o: &str) -> (Term, String, Term) {
        (Term::iri(s), p.to_string(), Term::iri(o))
    }

    #[test]
    fn attached_recorder_sees_publish_and_compact_lifecycle() {
        use remi_obs::{FakeClock, FieldValue, Recorder};
        let live = LiveKb::new(base_kb());
        let recorder = Recorder::shared(32);
        let clock = Arc::new(FakeClock::new(100));
        live.attach_events(Arc::clone(&recorder), Arc::clone(&clock) as _);

        live.append([iri3("e:Nice", "p:cityIn", "e:France")]);
        clock.advance(50);
        assert!(live.compact().performed);
        live.compact(); // empty delta: skipped

        let events = recorder.events_since(0);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        // Append publishes once; the fold publishes again, then reports.
        assert_eq!(
            names,
            ["kb_publish", "kb_publish", "kb_compact", "kb_compact"]
        );
        assert_eq!(events[0].ts_ns, 100);
        assert!(events[0].fields.contains(&("epoch", FieldValue::U64(1))));
        assert!(events[0].fields.contains(&("batch", FieldValue::U64(1))));
        assert_eq!(events[2].ts_ns, 150);
        assert!(events[2]
            .fields
            .contains(&("outcome", FieldValue::Str("folded"))));
        assert!(events[2].fields.contains(&("folded", FieldValue::U64(1))));
        assert!(events[3]
            .fields
            .contains(&("outcome", FieldValue::Str("skipped"))));

        // Forks share the attachment: a fork's publish lands in the same
        // ring.
        let fork = live.fork();
        fork.append([iri3("e:Metz", "p:cityIn", "e:France")]);
        assert_eq!(recorder.events_since(0).last().unwrap().name, "kb_publish");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order inversion")]
    fn debug_assert_catches_gate_taken_while_holding_writer() {
        let live = LiveKb::new(base_kb());
        let _w = live.lock_writer();
        // lint:allow(delta-lock-order): this test exists to prove the runtime assert catches the inversion
        let _g = live.lock_gate();
    }

    #[test]
    fn gate_then_writer_is_the_blessed_order() {
        let live = LiveKb::new(base_kb());
        {
            let _g = live.lock_gate();
            let _w = live.lock_writer();
        }
        // The tracking resets on release: a fresh writer acquisition on
        // this thread is fine.
        drop(live.lock_writer());
        // lint:allow(delta-lock-order): the guards above are dropped, not held — the rule's per-function scan cannot see drops
        drop(live.lock_gate());
    }

    #[test]
    fn appended_triples_become_visible_in_the_next_snapshot() {
        let live = LiveKb::new(base_kb());
        let before = live.snapshot();
        let out = live.append(vec![iri3("e:Nice", "p:cityIn", "e:France")]);
        assert_eq!(out.appended, 1);
        assert_eq!(out.epoch, 1);
        let after = live.snapshot();

        // The pinned snapshot is untouched; the new one sees the fact.
        let p = after.kb.pred_id("p:cityIn").unwrap();
        let france = after.kb.node_id_by_iri("e:France").unwrap();
        let nice = after.kb.node_id_by_iri("e:Nice").unwrap();
        assert!(after.kb.contains(nice, p, france));
        assert_eq!(after.kb.subjects(p, france).len(), 3);
        assert!(before.kb.node_id_by_iri("e:Nice").is_none());
        assert_eq!(before.kb.subjects(p, france).len(), 2);
        assert_ne!(before.fingerprint, after.fingerprint);
    }

    #[test]
    fn duplicates_are_dropped_without_an_epoch() {
        let live = LiveKb::new(base_kb());
        let out = live.append(vec![iri3("e:Paris", "p:cityIn", "e:France")]);
        assert_eq!(out.appended, 0);
        assert_eq!(out.duplicates, 1);
        assert_eq!(out.epoch, 0);
        // Same triple staged twice: one accept, one duplicate.
        let out = live.append(vec![
            iri3("e:Nice", "p:cityIn", "e:France"),
            iri3("e:Nice", "p:cityIn", "e:France"),
        ]);
        assert_eq!(out.appended, 1);
        assert_eq!(out.duplicates, 1);
        // Re-appending a delta triple is also a duplicate.
        let out = live.append(vec![iri3("e:Nice", "p:cityIn", "e:France")]);
        assert_eq!(out.appended, 0);
        assert_eq!(out.duplicates, 1);
    }

    #[test]
    fn new_predicates_and_nodes_extend_the_dictionaries() {
        let live = LiveKb::new(base_kb());
        let out = live.append(vec![iri3("e:Seine", "p:flowsThrough", "e:Paris")]);
        assert_eq!(out.new_nodes, 1);
        assert_eq!(out.new_preds, 1);
        let snap = live.snapshot();
        let p = snap.kb.pred_id("p:flowsThrough").unwrap();
        let seine = snap.kb.node_id_by_iri("e:Seine").unwrap();
        let paris = snap.kb.node_id_by_iri("e:Paris").unwrap();
        assert!(snap.kb.contains(seine, p, paris));
        assert_eq!(snap.kb.index(p).num_facts(), 1);
        assert!(snap.kb.preds_of_subject(seine).contains_sorted(p.0));
        // The old subject gained nothing.
        assert_eq!(snap.kb.node_frequency(seine), 1);
    }

    #[test]
    fn appends_mirror_into_materialised_inverses() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:hub");
        b.add_iri("e:b", "p:r", "e:hub");
        b.add_iri("e:c", "p:r", "e:hub");
        let kb = b.build_with_inverses(0.4).unwrap();
        let live = LiveKb::new(kb);
        let out = live.append(vec![iri3("e:d", "p:r", "e:hub")]);
        assert_eq!(out.appended, 2, "base fact + inverse mirror");
        let snap = live.snapshot();
        let base = snap.kb.pred_id("p:r").unwrap();
        let inv = snap.kb.inverse(base).unwrap();
        let hub = snap.kb.node_id_by_iri("e:hub").unwrap();
        let d = snap.kb.node_id_by_iri("e:d").unwrap();
        assert!(snap.kb.contains(d, base, hub));
        assert!(snap.kb.contains(hub, inv, d));
        // Base-triple count excludes the mirror.
        assert_eq!(snap.kb.num_triples(), 4);
        assert_eq!(snap.kb.num_triples_with_inverses(), 8);
    }

    #[test]
    fn mirrors_never_create_partial_inverse_adjacencies() {
        // hub is materialised (top-40%); cold is not, despite having a
        // base p:r fact.
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:hub");
        b.add_iri("e:b", "p:r", "e:hub");
        b.add_iri("e:c", "p:r", "e:hub");
        b.add_iri("e:a", "p:r", "e:cold");
        let kb = b.build_with_inverses(0.2).unwrap();
        let live = LiveKb::new(kb);
        let snap0 = live.snapshot();
        let inv = snap0.kb.inverse(snap0.kb.pred_id("p:r").unwrap()).unwrap();
        let cold = snap0.kb.node_id_by_iri("e:cold").unwrap();
        assert!(
            snap0.kb.objects(inv, cold).is_empty(),
            "cold not in top set"
        );

        // Appending p:r(d, cold) must NOT mirror: a partial p:r⁻¹(cold,·)
        // adjacency would contradict p:r (a's edge has no mirror).
        let out = live.append(vec![iri3("e:d", "p:r", "e:cold")]);
        assert_eq!(out.appended, 1, "no mirror for a non-materialised object");
        let snap = live.snapshot();
        assert!(snap.kb.objects(inv, cold).is_empty());

        // Appending to the materialised hub still mirrors.
        let out = live.append(vec![iri3("e:e", "p:r", "e:hub")]);
        assert_eq!(out.appended, 2, "base fact + mirror for the hub");

        // Every materialised adjacency is complete: p⁻¹(o,·) == p(·,o).
        let snap = live.snapshot();
        let base_p = snap.kb.pred_id("p:r").unwrap();
        for (o, subs) in snap.kb.index(inv).iter_subjects() {
            assert_eq!(
                subs.to_vec(),
                snap.kb.subjects(base_p, o).to_vec(),
                "partial inverse adjacency for {o:?}"
            );
        }
    }

    #[test]
    fn direct_inverse_ingestion_backfills_the_new_adjacency() {
        let mut b = KbBuilder::new();
        b.add_iri("e:a", "p:r", "e:hub");
        b.add_iri("e:b", "p:r", "e:hub");
        b.add_iri("e:c", "p:r", "e:hub");
        b.add_iri("e:a", "p:r", "e:cold");
        b.add_iri("e:b", "p:r", "e:cold");
        let kb = b.build_with_inverses(0.2).unwrap();
        let live = LiveKb::new(kb);
        // Directly ingest an inverse fact for the unmaterialised cold:
        // the base fact p:r(d, cold) is implied, and the pre-existing
        // p:r(a, cold), p:r(b, cold) mirrors are backfilled so the new
        // adjacency starts complete.
        let inv_iri = format!("p:r{INVERSE_SUFFIX}");
        let out = live.append(vec![(
            Term::iri("e:cold"),
            inv_iri.clone(),
            Term::iri("e:d"),
        )]);
        // inverse fact + implied base fact + 2 backfilled mirrors.
        assert_eq!(out.appended, 4, "{out:?}");
        let snap = live.snapshot();
        let inv = snap.kb.pred_id(&inv_iri).unwrap();
        let base_p = snap.kb.pred_id("p:r").unwrap();
        let cold = snap.kb.node_id_by_iri("e:cold").unwrap();
        assert_eq!(
            snap.kb.objects(inv, cold).to_vec(),
            snap.kb.subjects(base_p, cold).to_vec(),
            "backfilled adjacency must be complete"
        );
        assert_eq!(snap.kb.objects(inv, cold).len(), 3);
    }

    #[test]
    fn compaction_preserves_content_and_fingerprint() {
        let live = LiveKb::new(base_kb());
        live.append(vec![
            iri3("e:Nice", "p:cityIn", "e:France"),
            iri3("e:Berlin", "p:cityIn", "e:Germany"),
        ]);
        let before = live.snapshot();
        let out = live.compact();
        assert!(out.performed);
        assert_eq!(out.folded, 2);
        let after = live.snapshot();
        assert_eq!(after.epoch, before.epoch + 1);
        assert_eq!(after.fingerprint, before.fingerprint);
        // Folded: the overlay is empty again, content identical.
        match after.kb.store() {
            StoreBackend::Layered(l) => assert_eq!(l.delta_len(), 0),
            other => panic!("expected layered store, got {:?}", other.backend()),
        }
        let a: Vec<Triple> = before.kb.iter_triples().collect();
        let b: Vec<Triple> = after.kb.iter_triples().collect();
        assert_eq!(a, b);
        // Compacting an empty delta is a no-op.
        let noop = live.compact();
        assert!(!noop.performed);
        assert_eq!(live.snapshot().epoch, after.epoch);
    }

    #[test]
    fn needs_compaction_follows_the_policy() {
        let live = LiveKb::with_policy(
            base_kb(),
            CompactionPolicy {
                min_delta: 2,
                delta_fraction: 0.0,
            },
        );
        assert!(!live.needs_compaction());
        live.append(vec![iri3("e:Nice", "p:cityIn", "e:France")]);
        assert!(!live.needs_compaction());
        live.append(vec![iri3("e:Brest", "p:cityIn", "e:France")]);
        assert!(live.needs_compaction());
        live.compact();
        assert!(!live.needs_compaction());
    }

    #[test]
    fn stats_count_appends_duplicates_and_compactions() {
        let live = LiveKb::new(base_kb());
        live.append(vec![
            iri3("e:Nice", "p:cityIn", "e:France"),
            iri3("e:Paris", "p:cityIn", "e:France"),
        ]);
        live.compact();
        let stats = live.stats();
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.appended_triples, 1);
        assert_eq!(stats.duplicate_triples, 1);
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.delta_triples, 0);
        assert_eq!(stats.epoch, 2);
    }

    #[test]
    fn layered_view_over_a_succinct_base() {
        let live = LiveKb::new(base_kb().with_backend(Backend::Succinct));
        live.append(vec![iri3("e:Nice", "p:cityIn", "e:France")]);
        let snap = live.snapshot();
        assert_eq!(snap.kb.backend(), Backend::Succinct);
        let p = snap.kb.pred_id("p:cityIn").unwrap();
        let france = snap.kb.node_id_by_iri("e:France").unwrap();
        let subs = snap.kb.subjects(p, france).to_vec();
        assert_eq!(subs.len(), 3);
        assert!(subs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_locate_inverts_union_positions() {
        // Base keys 10,20,30; delta-only keys 5 (rank 0, group 0) and
        // 25 (rank 2, group 1) → union 5,10,20,25,30.
        let only = vec![(0u32, 0u32), (2, 1)];
        assert_eq!(union_locate(&only, 0), Ok(0));
        assert_eq!(union_locate(&only, 1), Err(0));
        assert_eq!(union_locate(&only, 2), Err(1));
        assert_eq!(union_locate(&only, 3), Ok(1));
        assert_eq!(union_locate(&only, 4), Err(2));
        assert_eq!(union_locate(&[], 7), Err(7));
    }
}
