//! Error types for the knowledge-base substrate.

use std::fmt;

/// Errors produced while parsing, loading, or serializing a knowledge base.
#[derive(Debug)]
pub enum KbError {
    /// An N-Triples line could not be parsed.
    Parse {
        /// 1-based line number in the input document.
        line: usize,
        /// Human-readable reason.
        message: String,
    },
    /// The binary file is malformed (bad magic, truncated section,
    /// checksum mismatch, …).
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A dictionary id was out of range for this KB.
    UnknownId(u32),
    /// The builder was asked to produce an empty knowledge base.
    Empty,
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Parse { line, message } => {
                write!(f, "N-Triples parse error at line {line}: {message}")
            }
            KbError::Format(msg) => write!(f, "malformed KB file: {msg}"),
            KbError::Io(e) => write!(f, "I/O error: {e}"),
            KbError::UnknownId(id) => write!(f, "unknown dictionary id {id}"),
            KbError::Empty => write!(f, "knowledge base contains no triples"),
        }
    }
}

impl std::error::Error for KbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KbError {
    fn from(e: std::io::Error) -> Self {
        KbError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, KbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = KbError::Parse {
            line: 12,
            message: "missing final dot".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 12"));
        assert!(s.contains("missing final dot"));

        assert!(KbError::Format("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(KbError::UnknownId(7).to_string().contains('7'));
        assert!(KbError::Empty.to_string().contains("no triples"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = KbError::from(io);
        assert!(e.source().is_some());
    }
}
