//! A fast, non-cryptographic hasher in the style of `rustc-hash`'s FxHash.
//!
//! The REMI workload hashes millions of small integer keys (dictionary ids,
//! subgraph-expression fingerprints). SipHash's HashDoS protection is
//! unnecessary here — all keys are internally generated — so we trade it for
//! speed, following the standard advice for database-style Rust code.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx mixing step (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher that mixes input words with a single multiply-rotate step.
///
/// Identical in spirit to `rustc_hash::FxHasher`; implemented locally because
/// the dependency policy for this repository restricts external crates.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Length tag prevents trivial extension collisions.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn different_inputs_rarely_collide() {
        // Not a statistical test — just a smoke check that the mixing step
        // actually differentiates nearby keys.
        let hashes: Vec<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn byte_streams_with_different_lengths_differ() {
        let a = {
            let mut h = FxHasher::default();
            h.write(b"abc");
            h.finish()
        };
        let b = {
            let mut h = FxHasher::default();
            h.write(b"abc\0");
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
