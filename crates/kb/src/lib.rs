//! `remi-kb` — the RDF knowledge-base substrate for the REMI reproduction.
//!
//! The REMI paper (Galárraga et al., EDBT 2020) mines referring expressions
//! over large RDF KBs stored in HDT and queried through Jena. This crate is
//! the pure-Rust equivalent of that storage/access layer:
//!
//! * [`term`] / [`dict`] / [`ids`] — RDF terms and dictionary encoding.
//! * [`store`] — the immutable in-memory KB: dictionaries, statistics,
//!   inverse-predicate materialisation, and the default CSR backend.
//! * [`backend`] — the [`TripleStore`] abstraction: pluggable storage
//!   backends behind a branch-predictable enum facade, with [`Bindings`]
//!   as the universal sorted-id-list view.
//! * [`succinct`] — HDT-style bitmap triples: rank/select bitvectors and
//!   packed sequences, zero-copy loadable.
//! * [`ntriples`] — N-Triples parsing and serialisation.
//! * [`binfmt`] — the `RKB1` (row-oriented) and `RKB2` (succinct,
//!   section-table) binary file formats.
//! * [`pagerank`] — endogenous PageRank, the `pr` prominence metric.
//! * [`cache`] — the LRU query cache of §3.5.2.
//! * [`fx`] — a fast non-cryptographic hasher used throughout.
//!
//! # Quick example
//!
//! ```
//! use remi_kb::store::KbBuilder;
//!
//! let mut b = KbBuilder::new();
//! b.add_iri("e:Paris", "p:capitalOf", "e:France");
//! b.add_iri("e:Lyon", "p:cityIn", "e:France");
//! let kb = b.build().unwrap();
//!
//! let capital_of = kb.pred_id("p:capitalOf").unwrap();
//! let france = kb.node_id_by_iri("e:France").unwrap();
//! assert_eq!(kb.subjects(capital_of, france).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod binfmt;
pub mod cache;
pub mod dict;
pub mod error;
pub mod fx;
pub mod ids;
pub mod ntriples;
pub mod pagerank;
pub mod store;
pub mod succinct;
pub mod term;
pub mod varint;

pub use backend::{Backend, Bindings, PredView, StoreMemory, TripleStore};
pub use error::{KbError, Result};
pub use ids::{NodeId, PredId, Triple};
pub use store::{KbBuilder, KnowledgeBase};
pub use term::{Term, TermKind};
