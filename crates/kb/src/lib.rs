//! `remi-kb` — the RDF knowledge-base substrate for the REMI reproduction.
//!
//! The REMI paper (Galárraga et al., EDBT 2020) mines referring expressions
//! over large RDF KBs stored in HDT and queried through Jena. This crate is
//! the pure-Rust equivalent of that storage/access layer:
//!
//! * [`term`] / [`dict`] / [`ids`] — RDF terms and dictionary encoding.
//! * [`store`] — the immutable in-memory KB: dictionaries, statistics,
//!   inverse-predicate materialisation, and the default CSR backend.
//! * [`backend`] — the [`TripleStore`] abstraction: pluggable storage
//!   backends behind a branch-predictable enum facade, with [`Bindings`]
//!   as the universal sorted-id-list view.
//! * [`succinct`] — HDT-style bitmap triples: rank/select bitvectors and
//!   packed sequences, zero-copy loadable.
//! * [`delta`] — live ingestion: a mutable delta overlay (`LiveKb`) with
//!   epoch snapshots and compaction, layered over any backend.
//! * [`ntriples`] — N-Triples parsing and serialisation.
//! * [`binfmt`] — the `RKB1` (row-oriented) and `RKB2` (succinct,
//!   section-table) binary file formats.
//! * [`pagerank`] — endogenous PageRank, the `pr` prominence metric.
//! * [`query`] — triple-pattern resolution ([`TripleStore::solve`]) and
//!   the small BGP executor behind `POST /query` / `remi query`.
//! * [`cache`] — the LRU query cache of §3.5.2.
//! * [`fx`] — a fast non-cryptographic hasher used throughout.
//!
//! # Quick example
//!
//! ```
//! use remi_kb::store::KbBuilder;
//!
//! let mut b = KbBuilder::new();
//! b.add_iri("e:Paris", "p:capitalOf", "e:France");
//! b.add_iri("e:Lyon", "p:cityIn", "e:France");
//! let kb = b.build().unwrap();
//!
//! let capital_of = kb.pred_id("p:capitalOf").unwrap();
//! let france = kb.node_id_by_iri("e:France").unwrap();
//! assert_eq!(kb.subjects(capital_of, france).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod binfmt;
pub mod cache;
pub mod delta;
pub mod dict;
pub mod error;
pub mod freq;
pub mod fx;
pub mod ids;
pub mod ntriples;
pub mod pagerank;
pub mod query;
pub mod store;
pub mod succinct;
pub mod term;
pub mod varint;

pub use backend::{Backend, Bindings, PredView, StoreMemory, TripleStore};
pub use delta::{content_fingerprint, CompactionPolicy, KbEvents, KbInstruments, LiveKb, Snapshot};
pub use error::{KbError, Result};
pub use ids::{NodeId, PredId, Triple};
pub use query::{
    estimated_cardinality, parse_patterns, solve_bgp, solve_bgp_traced, BgpOutcome, PatternError,
    PlanStep, PlanTrace, QueryError, QueryEvents, ResolvedQuery, Slot, SolutionIter, TriplePattern,
};
pub use store::{KbBuilder, KnowledgeBase};
pub use term::{Term, TermKind};

// Re-exported so downstream crates (and the umbrella test suite) can pass
// cancellation tokens to `solve_bgp` without depending on `remi-pool`.
pub use remi_pool::CancelToken;

/// Loads a KB from a path, dispatching on the extension: `.nt` /
/// `.ntriples` → N-Triples, anything else → a binary format (the magic
/// decides between `RKB1` and `RKB2`). Inverse predicates are rebuilt for
/// the top `inverse_fraction` of predicates where the format allows.
///
/// This is the one shared loading dispatch — the `remi` CLI and the
/// serve load generator both route through it.
pub fn load_path(path: &std::path::Path, inverse_fraction: f64) -> Result<KnowledgeBase> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    if ext == "nt" || ext == "ntriples" {
        let text = std::fs::read_to_string(path).map_err(KbError::Io)?;
        ntriples::parse_document(&text)?.build_with_inverses(inverse_fraction)
    } else {
        binfmt::load(path, inverse_fraction)
    }
}
